//! Acceptance suite for the incremental subsystem at the verification level:
//! lazy transitivity refinement and shared-solver decomposition must produce
//! verdicts identical to the eager / one-shot paths across the DLX, VLIW and
//! OOO model catalog.

use velv::prelude::*;
use velv_sat::cdcl::CdclConfig;
use velv_sat::IncrementalSolver;

fn eager() -> Verifier {
    Verifier::new(TranslationOptions::default())
}

fn lazy() -> Verifier {
    Verifier::new(TranslationOptions::default().with_lazy_transitivity())
}

#[test]
fn lazy_transitivity_matches_eager_on_the_dlx_catalog() {
    let config = DlxConfig::single_issue();
    let spec = DlxSpecification::new(config);
    let mut designs: Vec<(String, Dlx, bool)> =
        vec![("correct".to_owned(), Dlx::correct(config), false)];
    for bug in dlx_bug_catalog(config) {
        designs.push((format!("{bug:?}"), Dlx::buggy(config, bug), true));
    }
    for (name, implementation, expect_buggy) in &designs {
        let mut solver = CdclSolver::chaff();
        let verdict = lazy().verify(implementation, &spec, &mut solver);
        assert_eq!(verdict.is_buggy(), *expect_buggy, "{name}: {verdict:?}");
        if *expect_buggy {
            assert!(
                verdict.counterexample().is_some(),
                "{name}: refined SAT answers carry counterexamples"
            );
        } else {
            assert!(verdict.is_correct(), "{name}: {verdict:?}");
        }
    }
}

#[test]
fn lazy_incremental_check_matches_eager_on_vliw() {
    let config = VliwConfig::base();
    let spec = VliwSpecification::new(config);
    let mut designs: Vec<(String, Vliw, bool)> =
        vec![("correct".to_owned(), Vliw::correct(config), false)];
    for bug in vliw_bug_catalog(config).into_iter().take(3) {
        designs.push((format!("{bug:?}"), Vliw::buggy(config, bug), true));
    }
    for (name, implementation, expect_buggy) in &designs {
        let translation = lazy().translate(implementation, &spec);
        let (verdict, stats) =
            lazy().check_incremental(&translation, CdclConfig::chaff(), Budget::unlimited());
        assert_eq!(verdict.is_buggy(), *expect_buggy, "{name}: {verdict:?}");
        assert!(stats.iterations >= 1, "{name}");
    }
}

#[test]
fn lazy_transitivity_matches_eager_on_ooo() {
    // The out-of-order designs are the transitivity-heavy workload: they are
    // only correct *because* equality is transitive, so the lazy path must
    // actually refine (UNSAT may come before any constraint is needed, but
    // the verdict must match the eager one either way).
    for width in [2usize, 3] {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        let eager_translation = eager().translate(&implementation, &spec);
        assert!(
            eager_translation.stats.transitivity_triangles > 0,
            "OOO-{width} constrains transitivity eagerly"
        );
        let lazy_translation = lazy().translate(&implementation, &spec);
        assert_eq!(
            lazy_translation.stats.transitivity_triangles, 0,
            "OOO-{width} lazy encoding emits no triangles"
        );
        assert!(
            !lazy_translation.eij_pairs.is_empty(),
            "OOO-{width} has eij pairs to refine over"
        );
        let mut solver = CdclSolver::chaff();
        let eager_verdict = eager().check(&eager_translation, &mut solver, Budget::unlimited());
        let (lazy_verdict, _) =
            lazy().check_incremental(&lazy_translation, CdclConfig::chaff(), Budget::unlimited());
        assert!(eager_verdict.is_correct(), "OOO-{width}: {eager_verdict:?}");
        assert!(lazy_verdict.is_correct(), "OOO-{width}: {lazy_verdict:?}");
    }
}

#[test]
fn shared_decomposition_matches_per_obligation_on_the_dlx_catalog() {
    let config = DlxConfig::single_issue();
    let spec = DlxSpecification::new(config);
    let verifier = eager();
    let mut designs: Vec<(String, Dlx, bool)> =
        vec![("correct".to_owned(), Dlx::correct(config), false)];
    for bug in dlx_bug_catalog(config).into_iter().take(6) {
        designs.push((format!("{bug:?}"), Dlx::buggy(config, bug), true));
    }
    for (name, implementation, expect_buggy) in &designs {
        let (reference, reference_parts) = verifier.verify_decomposed(
            implementation,
            &spec,
            8,
            || Box::new(CdclSolver::chaff()),
            Budget::unlimited(),
        );
        let (shared, shared_parts) = verifier.verify_decomposed_shared(
            implementation,
            &spec,
            8,
            CdclConfig::chaff(),
            Budget::unlimited(),
        );
        assert_eq!(
            reference.is_buggy(),
            shared.is_buggy(),
            "{name}: per-obligation {reference:?} vs shared {shared:?}"
        );
        assert_eq!(shared.is_buggy(), *expect_buggy, "{name}: {shared:?}");
        assert_eq!(
            reference_parts.len(),
            shared_parts.len(),
            "{name}: same obligation count"
        );
        // Obligation-level verdicts agree pairwise (same decomposition).
        for ((ref_name, ref_verdict), (shared_name, shared_verdict)) in
            reference_parts.iter().zip(&shared_parts)
        {
            assert_eq!(ref_name, shared_name, "{name}");
            assert_eq!(
                ref_verdict.is_buggy(),
                shared_verdict.is_buggy(),
                "{name} / {ref_name}"
            );
        }
    }
}

#[test]
fn shared_decomposition_reuses_one_solver_across_obligations() {
    // The whole point of the shared translation: one persistent solver
    // instance checks every obligation.  Verify the plumbing end to end on
    // the dual-issue DLX (the decomposition-heavy design) and let the solver
    // show its statistics accumulate across the obligations.
    let config = DlxConfig::dual_issue();
    let spec = DlxSpecification::new(config);
    let verifier = eager();
    let problem = verifier.build_problem(&Dlx::correct(config), &spec);
    let shared = verifier.translate_obligations_shared(&problem, 8);
    assert!(shared.obligations.len() >= 3);
    let mut solver = IncrementalSolver::with_formula(CdclConfig::chaff(), &shared.cnf);
    let (overall, parts, _) = verifier.check_shared_with(&shared, &mut solver, Budget::unlimited());
    assert!(overall.is_correct(), "{overall:?}");
    assert_eq!(parts.len(), shared.obligations.len());
    assert!(
        solver.stats().decisions > 0,
        "the shared solver did all the work"
    );
}

#[test]
fn lazy_shared_decomposition_on_vliw_matches_eager_shared() {
    let config = VliwConfig::base();
    let spec = VliwSpecification::new(config);
    let implementation = Vliw::correct(config);
    for verifier in [eager(), lazy()] {
        let (overall, parts) = verifier.verify_decomposed_shared(
            &implementation,
            &spec,
            6,
            CdclConfig::chaff(),
            Budget::unlimited(),
        );
        assert!(overall.is_correct(), "{overall:?}");
        assert!(parts.iter().all(|(_, v)| v.is_correct()));
    }
}
