//! End-to-end integration tests: every benchmark design is translated and
//! checked with the SAT back end — correct versions must verify, buggy
//! versions must produce counterexamples, and the key optimisation claims of
//! the paper (positive equality, eij vs small-domain) must hold structurally.

use velv::prelude::*;

#[test]
fn dlx1_correct_design_verifies() {
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Dlx::correct(DlxConfig::single_issue());
    let spec = DlxSpecification::new(DlxConfig::single_issue());
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&implementation, &spec, &mut solver);
    assert!(verdict.is_correct(), "1xDLX-C must verify: {verdict:?}");
}

#[test]
fn dlx1_buggy_designs_are_detected() {
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    for bug in velv_models::dlx::bug_catalog(config).into_iter().take(6) {
        let implementation = Dlx::buggy(config, bug);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &spec, &mut solver);
        assert!(verdict.is_buggy(), "bug {bug:?} must be detected, got {verdict:?}");
    }
}

#[test]
fn dlx2_full_correct_design_verifies() {
    let config = DlxConfig::dual_issue_full();
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Dlx::correct(config);
    let spec = DlxSpecification::new(config);
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&implementation, &spec, &mut solver);
    assert!(verdict.is_correct(), "2xDLX-CC-MC-EX-BP must verify: {verdict:?}");
}

#[test]
fn dlx2_full_buggy_designs_are_detected() {
    let config = DlxConfig::dual_issue_full();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    for bug in velv_models::dlx::bug_catalog(config).into_iter().take(4) {
        let implementation = Dlx::buggy(config, bug);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &spec, &mut solver);
        assert!(verdict.is_buggy(), "bug {bug:?} must be detected, got {verdict:?}");
    }
}

#[test]
fn vliw_correct_design_verifies() {
    let config = VliwConfig::base();
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Vliw::correct(config);
    let spec = VliwSpecification::new(config);
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&implementation, &spec, &mut solver);
    assert!(verdict.is_correct(), "9VLIW-MC-BP must verify: {verdict:?}");
}

#[test]
fn vliw_buggy_designs_are_detected() {
    let config = VliwConfig::base();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = VliwSpecification::new(config);
    for bug in velv_models::vliw::bug_catalog(config).into_iter().take(4) {
        let implementation = Vliw::buggy(config, bug);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &spec, &mut solver);
        assert!(verdict.is_buggy(), "bug {bug:?} must be detected, got {verdict:?}");
    }
}

#[test]
fn ooo_requires_and_gets_transitivity() {
    // The out-of-order designs need transitivity of equality: they must verify
    // under both encodings (the eij encoding adds explicit constraints, the
    // small-domain encoding enforces transitivity by construction).
    for width in [2, 3] {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        for options in [TranslationOptions::default(), TranslationOptions::default().with_small_domain()] {
            let verifier = Verifier::new(options);
            let mut solver = CdclSolver::chaff();
            let verdict = verifier.verify(&implementation, &spec, &mut solver);
            assert!(verdict.is_correct(), "OOO-{width} must verify: {verdict:?}");
        }
    }
}

#[test]
fn dlx1_verifies_with_berkmin_and_decomposition() {
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Dlx::correct(config);
    let spec = DlxSpecification::new(config);
    let mut solver = CdclSolver::berkmin();
    assert!(verifier.verify(&implementation, &spec, &mut solver).is_correct());
    let (overall, obligations) = verifier.verify_decomposed(
        &implementation,
        &spec,
        8,
        || Box::new(CdclSolver::chaff()),
        Budget::unlimited(),
    );
    assert!(overall.is_correct(), "decomposed verification: {overall:?}");
    assert!(!obligations.is_empty());
}
