//! End-to-end integration tests: every benchmark design is translated and
//! checked with the SAT back end — correct versions must verify, buggy
//! versions must produce counterexamples, and the key optimisation claims of
//! the paper (positive equality, eij vs small-domain) must hold structurally.

use velv::prelude::*;

#[test]
fn dlx1_correct_design_verifies() {
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Dlx::correct(DlxConfig::single_issue());
    let spec = DlxSpecification::new(DlxConfig::single_issue());
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&implementation, &spec, &mut solver);
    assert!(verdict.is_correct(), "1xDLX-C must verify: {verdict:?}");
}

#[test]
fn dlx1_buggy_designs_are_detected() {
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    for bug in velv_models::dlx::bug_catalog(config).into_iter().take(6) {
        let implementation = Dlx::buggy(config, bug);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &spec, &mut solver);
        assert!(
            verdict.is_buggy(),
            "bug {bug:?} must be detected, got {verdict:?}"
        );
    }
}

#[test]
fn dlx2_full_correct_design_verifies() {
    let config = DlxConfig::dual_issue_full();
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Dlx::correct(config);
    let spec = DlxSpecification::new(config);
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&implementation, &spec, &mut solver);
    assert!(
        verdict.is_correct(),
        "2xDLX-CC-MC-EX-BP must verify: {verdict:?}"
    );
}

#[test]
fn dlx2_full_buggy_designs_are_detected() {
    let config = DlxConfig::dual_issue_full();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    for bug in velv_models::dlx::bug_catalog(config).into_iter().take(4) {
        let implementation = Dlx::buggy(config, bug);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &spec, &mut solver);
        assert!(
            verdict.is_buggy(),
            "bug {bug:?} must be detected, got {verdict:?}"
        );
    }
}

#[test]
fn vliw_correct_design_verifies() {
    let config = VliwConfig::base();
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Vliw::correct(config);
    let spec = VliwSpecification::new(config);
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&implementation, &spec, &mut solver);
    assert!(verdict.is_correct(), "9VLIW-MC-BP must verify: {verdict:?}");
}

#[test]
fn vliw_buggy_designs_are_detected() {
    let config = VliwConfig::base();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = VliwSpecification::new(config);
    for bug in velv_models::vliw::bug_catalog(config).into_iter().take(4) {
        let implementation = Vliw::buggy(config, bug);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &spec, &mut solver);
        assert!(
            verdict.is_buggy(),
            "bug {bug:?} must be detected, got {verdict:?}"
        );
    }
}

#[test]
fn ooo_requires_and_gets_transitivity() {
    // The out-of-order designs need transitivity of equality: they must verify
    // under both encodings (the eij encoding adds explicit constraints, the
    // small-domain encoding enforces transitivity by construction).
    for width in [2, 3] {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_small_domain(),
        ] {
            let verifier = Verifier::new(options);
            let mut solver = CdclSolver::chaff();
            let verdict = verifier.verify(&implementation, &spec, &mut solver);
            assert!(verdict.is_correct(), "OOO-{width} must verify: {verdict:?}");
        }
    }
}

#[test]
fn dlx1_verifies_with_berkmin_and_decomposition() {
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let implementation = Dlx::correct(config);
    let spec = DlxSpecification::new(config);
    let mut solver = CdclSolver::berkmin();
    assert!(verifier
        .verify(&implementation, &spec, &mut solver)
        .is_correct());
    let (overall, obligations) = verifier.verify_decomposed(
        &implementation,
        &spec,
        8,
        || Box::new(CdclSolver::chaff()),
        Budget::unlimited(),
    );
    assert!(overall.is_correct(), "decomposed verification: {overall:?}");
    assert!(!obligations.is_empty());
}

#[test]
fn portfolio_matches_sequential_backend_on_the_full_dlx_bug_catalog() {
    // The acceptance bar for the racing back end: on every entry of the DLX
    // bug catalog (and on the correct design), the portfolio — CDCL presets
    // racing the BDD build — must reach exactly the verdict the sequential
    // SAT back end reaches, and must name a winner.
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    let members = [
        Backend::Sat(SolverKind::Chaff),
        Backend::Sat(SolverKind::BerkMin),
        Backend::Bdd {
            node_limit: 400_000,
        },
    ];

    let mut designs: Vec<(String, Dlx)> = vec![("correct".to_owned(), Dlx::correct(config))];
    for bug in velv_models::dlx::bug_catalog(config) {
        designs.push((format!("{bug:?}"), Dlx::buggy(config, bug)));
    }

    for (name, implementation) in &designs {
        // Translate once so the race and the sequential check see the same CNF.
        let translation = verifier.translate(implementation, &spec);
        let mut sequential = CdclSolver::chaff();
        let expected = verifier.check(&translation, &mut sequential, Budget::unlimited());
        let outcome = verifier.check_portfolio(&translation, &members, Budget::unlimited());
        assert_eq!(
            expected.is_correct(),
            outcome.verdict.is_correct(),
            "{name}: sequential {expected:?} vs portfolio {:?}",
            outcome.verdict
        );
        assert_eq!(
            expected.is_buggy(),
            outcome.verdict.is_buggy(),
            "{name}: sequential {expected:?} vs portfolio {:?}",
            outcome.verdict
        );
        let winner = outcome
            .winner
            .as_deref()
            .unwrap_or_else(|| panic!("{name}: a complete engine must decide the obligation"));
        assert!(
            outcome.runs.iter().any(|r| r.winner && r.name == winner),
            "{name}: winner {winner} must appear in the runs"
        );
    }
}

#[test]
fn verify_with_backend_covers_all_backend_shapes() {
    // On 1xDLX-C the SAT back end proves correctness, the stand-alone BDD
    // back end memory-outs under its node limit (the paper's Table-1 result
    // for the decision diagrams), and the portfolio still wins because a
    // CDCL member decides while the BDD build is cancelled or limited.
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    let implementation = Dlx::correct(config);
    let translation = verifier.translate(&implementation, &spec);

    let sat = verifier.check_with_backend(
        &translation,
        &Backend::Sat(SolverKind::Chaff),
        Budget::unlimited(),
    );
    assert!(sat.is_correct(), "{sat:?}");

    let bdd = verifier.check_with_backend(
        &translation,
        &Backend::Bdd {
            node_limit: 200_000,
        },
        Budget::unlimited(),
    );
    assert!(
        matches!(bdd, Verdict::Unknown(_)),
        "the depth-first-ordered BDD must exceed 200k nodes on DLX1: {bdd:?}"
    );

    let portfolio = verifier.check_with_backend(
        &translation,
        &Backend::default_portfolio(),
        Budget::unlimited(),
    );
    assert!(portfolio.is_correct(), "{portfolio:?}");
}
