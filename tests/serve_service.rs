//! Tier-1 smoke of the serving layer through the umbrella crate: cached
//! verdicts equal fresh ones, identical re-submissions never re-translate or
//! re-solve, and batch scheduling agrees with single submissions.

use velv::prelude::*;
use velv::velv_serve::ServiceConfig;

#[test]
fn serving_layer_end_to_end() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(2));

    // Fresh solve, then a cache hit with identical evidence.
    let fresh = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    assert!(fresh.verdict.is_buggy());
    let cached = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    assert!(cached.from_cache);
    assert_eq!(
        fresh.verdict.counterexample(),
        cached.verdict.counterexample()
    );
    let stats = service.stats();
    assert_eq!(stats.translations, 1, "the cache hit translated nothing");
    assert_eq!(stats.fresh_solves, 1, "the cache hit solved nothing");

    // A batch over the catalog: one shared session, verdicts as expected.
    let tickets = service
        .submit_batch(vec![
            JobSpec::new(ModelRef::dlx1_correct()),
            JobSpec::new(ModelRef::dlx1_bug(1)),
            JobSpec::new(ModelRef::dlx1_bug(0)), // cached from above
        ])
        .expect("accepted");
    let results: Vec<JobResult> = tickets.iter().map(|t| t.wait()).collect();
    assert!(results[0].verdict.is_correct());
    assert!(results[1].verdict.is_buggy());
    assert!(results[2].verdict.is_buggy());
    assert!(results[2].from_cache, "the batch reused the cached verdict");

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 2);
    assert!(stats.cache.entries >= 3);
    service.shutdown();
}
