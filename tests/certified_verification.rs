//! Acceptance suite for certified verdicts at the verification level: every
//! verdict across the DLX/VLIW/OOO catalog must be certifiable end to end —
//! UNSAT answers replay through `velv_proof`'s independent checker (eager and
//! lazy transitivity, shared and per-obligation decomposition), SAT answers
//! survive counterexample validation against the encoded EUFM formula, and a
//! corrupted proof is rejected.

use velv::prelude::*;
use velv_sat::cdcl::CdclConfig;

fn certify_design(
    options: TranslationOptions,
    implementation: &dyn velv_hdl::Processor,
    spec: &dyn velv_hdl::Processor,
    label: &str,
    expect_buggy: bool,
) {
    let verifier = Verifier::new(options);
    let translation = verifier.translate(implementation, spec);
    let (outcome, _) = verifier
        .check_certified(
            &translation,
            CdclConfig::chaff(),
            &CertifyOptions::default(),
            Budget::unlimited(),
        )
        .unwrap_or_else(|e| panic!("{label}: certification failed: {e}"));
    assert_eq!(
        outcome.verdict.is_buggy(),
        expect_buggy,
        "{label}: {:?}",
        outcome.verdict
    );
    match (&outcome.certificate, expect_buggy) {
        (Certificate::Unsat(proof), false) => {
            assert!(proof.proof_steps > 0, "{label}: refutations carry steps");
            assert!(proof.checked_clauses > 0, "{label}");
        }
        (Certificate::Sat(model), true) => {
            assert!(model.primary_assignments > 0, "{label}");
        }
        (certificate, _) => panic!("{label}: unexpected certificate {certificate:?}"),
    }
}

#[test]
fn dlx_catalog_certifies_eager_and_lazy() {
    let config = DlxConfig::single_issue();
    let spec = DlxSpecification::new(config);
    for (mode, options) in [
        ("eager", TranslationOptions::default()),
        (
            "lazy",
            TranslationOptions::default().with_lazy_transitivity(),
        ),
    ] {
        certify_design(
            options.clone(),
            &Dlx::correct(config),
            &spec,
            &format!("dlx-correct-{mode}"),
            false,
        );
        for bug in dlx_bug_catalog(config) {
            certify_design(
                options.clone(),
                &Dlx::buggy(config, bug),
                &spec,
                &format!("dlx-{bug:?}-{mode}"),
                true,
            );
        }
    }
}

#[test]
fn vliw_catalog_certifies() {
    let config = VliwConfig::base();
    let spec = VliwSpecification::new(config);
    certify_design(
        TranslationOptions::default(),
        &Vliw::correct(config),
        &spec,
        "vliw-correct-eager",
        false,
    );
    certify_design(
        TranslationOptions::default().with_lazy_transitivity(),
        &Vliw::correct(config),
        &spec,
        "vliw-correct-lazy",
        false,
    );
    for bug in vliw_bug_catalog(config).into_iter().take(2) {
        certify_design(
            TranslationOptions::default(),
            &Vliw::buggy(config, bug),
            &spec,
            &format!("vliw-{bug:?}"),
            true,
        );
    }
}

#[test]
fn ooo_certifies_with_lazy_refinement_clauses_in_the_checked_cnf() {
    // The out-of-order cores are the transitivity-heavy workload: their lazy
    // proofs are only checkable because the refinement clauses asserted into
    // the live engine are captured as axioms of the check.
    for width in [2usize, 3] {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        certify_design(
            TranslationOptions::default(),
            &implementation,
            &spec,
            &format!("ooo-{width}-eager"),
            false,
        );
        let verifier = Verifier::new(TranslationOptions::default().with_lazy_transitivity());
        let translation = verifier.translate(&implementation, &spec);
        let (outcome, stats) = verifier
            .check_certified(
                &translation,
                CdclConfig::chaff(),
                &CertifyOptions::default(),
                Budget::unlimited(),
            )
            .unwrap_or_else(|e| panic!("ooo-{width}-lazy: {e}"));
        assert!(
            outcome.verdict.is_correct(),
            "ooo-{width}: {:?}",
            outcome.verdict
        );
        assert!(stats.iterations >= 1);
        match outcome.certificate {
            Certificate::Unsat(proof) => {
                assert!(
                    proof.checked_clauses >= translation.cnf.num_clauses(),
                    "ooo-{width}: refinement clauses join the checked CNF \
                     ({} refinement clauses)",
                    proof.refinement_clauses
                );
            }
            other => panic!("ooo-{width}: expected a proof certificate, got {other:?}"),
        }
    }
}

#[test]
fn shared_decomposition_certifies_across_the_dlx_catalog() {
    let config = DlxConfig::single_issue();
    let spec = DlxSpecification::new(config);
    let mut designs: Vec<(String, Dlx, bool)> =
        vec![("correct".to_owned(), Dlx::correct(config), false)];
    for bug in dlx_bug_catalog(config).into_iter().take(4) {
        designs.push((format!("{bug:?}"), Dlx::buggy(config, bug), true));
    }
    for (mode, options) in [
        ("eager", TranslationOptions::default()),
        (
            "lazy",
            TranslationOptions::default().with_lazy_transitivity(),
        ),
    ] {
        let verifier = Verifier::new(options);
        for (name, implementation, expect_buggy) in &designs {
            let problem = verifier.build_problem(implementation, &spec);
            let shared = verifier.translate_obligations_shared(&problem, 8);
            let outcome = verifier
                .check_shared_certified(
                    &shared,
                    CdclConfig::chaff(),
                    &CertifyOptions::default(),
                    Budget::unlimited(),
                )
                .unwrap_or_else(|e| panic!("{name}-{mode}: {e}"));
            assert_eq!(
                outcome.overall.is_buggy(),
                *expect_buggy,
                "{name}-{mode}: {:?}",
                outcome.overall
            );
            assert_eq!(outcome.obligations.len(), shared.obligations.len());
            for obligation in &outcome.obligations {
                match (
                    &obligation.certified.certificate,
                    &obligation.certified.verdict,
                ) {
                    (Certificate::Unsat(_), Verdict::Correct) => {}
                    (Certificate::Sat(_), Verdict::Buggy(_)) => {}
                    (certificate, verdict) => panic!(
                        "{name}-{mode}/{}: verdict {verdict:?} with certificate {certificate:?}",
                        obligation.name
                    ),
                }
            }
        }
    }
}

#[test]
fn corrupting_the_recorded_proof_is_detected() {
    // The end-to-end mutation check at the verification level: a DLX
    // refutation's proof with one flipped learnt clause must be rejected by
    // the checker when replayed against the translation CNF.
    use velv_proof::{check_proof, CheckOptions, ProofStep};
    let config = DlxConfig::single_issue();
    let spec = DlxSpecification::new(config);
    let verifier = Verifier::new(TranslationOptions::default());
    let translation = verifier.translate(&Dlx::correct(config), &spec);
    let mut solver = velv_sat::cdcl::CdclSolver::chaff();
    let (result, proof) = solver.solve_recording_proof(&translation.cnf, &[], Budget::unlimited());
    assert!(result.is_unsat());
    let clauses = velv_sat::dimacs::cnf_to_dimacs_i32(&translation.cnf);
    check_proof(&clauses, &proof, &CheckOptions::default()).expect("the honest refutation checks");
    // Flip one learnt clause: a flipped literal usually breaks the RUP
    // replay, but an individual flip can happen to stay derivable, so scan
    // the candidates until the corruption is caught.
    let candidates: Vec<usize> = proof
        .steps()
        .iter()
        .enumerate()
        .filter_map(|(i, s)| (s.is_addition() && s.lits().len() >= 2).then_some(i))
        .collect();
    assert!(!candidates.is_empty(), "a DLX refutation learns clauses");
    let flip_detected = candidates.iter().take(25).any(|&target| {
        let mut mutated = proof.clone();
        if let Some(ProofStep::Add(lits)) = mutated.step_mut(target) {
            lits[0] = -lits[0];
        }
        check_proof(&clauses, &mutated, &CheckOptions::default()).is_err()
    });
    assert!(
        flip_detected,
        "flipping learnt clauses must not replay silently"
    );
    // And the guaranteed-invalid corruption: a unit over a fresh variable is
    // never RUP, so the checker must reject at exactly that step.
    let mut foreign = proof.clone();
    let target = candidates[0];
    let fresh = translation.cnf.num_vars() as i32 + 7;
    if let Some(ProofStep::Add(lits)) = foreign.step_mut(target) {
        *lits = vec![fresh];
    }
    match check_proof(&clauses, &foreign, &CheckOptions::default()) {
        Err(velv_proof::CheckError::StepNotRup { step, .. }) => assert_eq!(step, target),
        other => panic!("expected StepNotRup at {target}, got {other:?}"),
    }
}
