//! Differential check of the CDCL presets on the paper's actual workload:
//! the DLX correctness formulas.  All four presets must report the same
//! verdict as each other on every translated obligation — buggy designs are
//! detected (with counterexamples derived from verified models), the correct
//! design is proven.

use velv_core::{TranslationOptions, Verifier};
use velv_models::dlx::{bug_catalog, Dlx, DlxConfig, DlxSpecification};
use velv_sat::presets::SolverKind;
use velv_sat::solver::verify_model;
use velv_sat::{Budget, SatResult};

const CDCL_PRESETS: [SolverKind; 4] = [
    SolverKind::Chaff,
    SolverKind::BerkMin,
    SolverKind::Grasp,
    SolverKind::Sato,
];

#[test]
fn all_presets_agree_on_the_dlx_bug_catalog() {
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);

    let mut obligations = vec![(
        "correct".to_owned(),
        verifier.translate(&Dlx::correct(config), &spec),
        false,
    )];
    for bug in bug_catalog(config).into_iter().take(8) {
        let translation = verifier.translate(&Dlx::buggy(config, bug), &spec);
        obligations.push((format!("{bug:?}"), translation, true));
    }

    for (name, translation, expect_sat) in &obligations {
        for kind in CDCL_PRESETS {
            let mut solver = kind.build();
            match solver.solve_with_budget(&translation.cnf, Budget::unlimited()) {
                SatResult::Sat(model) => {
                    assert!(
                        *expect_sat,
                        "{name}: {} claims the design is buggy",
                        solver.name()
                    );
                    assert!(
                        verify_model(&translation.cnf, &model),
                        "{name}: {} produced an unverifiable model",
                        solver.name()
                    );
                }
                SatResult::Unsat => {
                    assert!(!*expect_sat, "{name}: {} missed the bug", solver.name());
                }
                SatResult::Unknown(reason) => {
                    panic!("{name}: {} gave up: {reason:?}", solver.name());
                }
            }
        }
    }
}
