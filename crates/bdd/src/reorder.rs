//! Variable-order improvement by rebuilding under candidate orders.
//!
//! CUDD's dynamic sifting moves one variable at a time through the order while
//! the diagrams stay live.  This package instead *transfers* a root BDD into a
//! fresh manager with a candidate order and keeps the order with the smallest
//! node count — a window/permutation style reordering that captures the same
//! experimental role (BDD-based runs get the benefit of order search) at a
//! fraction of the implementation complexity.  The substitution is recorded in
//! `DESIGN.md`.

use crate::manager::{Bdd, BddHalt, BddManager};
use std::collections::HashMap;

/// A set of candidate variable orders to try.
#[derive(Clone, Debug, Default)]
pub struct OrderCandidates {
    orders: Vec<Vec<u32>>,
}

impl OrderCandidates {
    /// Creates an empty candidate set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an explicit order.
    pub fn push(&mut self, order: Vec<u32>) -> &mut Self {
        self.orders.push(order);
        self
    }

    /// Adds the natural order `0..n`, its reverse, and a few rotations —
    /// a cheap default analogous to trying several static heuristics.
    pub fn with_defaults(num_vars: usize) -> Self {
        let n = num_vars as u32;
        let natural: Vec<u32> = (0..n).collect();
        let reversed: Vec<u32> = (0..n).rev().collect();
        let mut interleaved: Vec<u32> = Vec::with_capacity(num_vars);
        let half = num_vars / 2;
        for i in 0..half {
            interleaved.push(i as u32);
            interleaved.push((i + half) as u32);
        }
        if num_vars % 2 == 1 {
            interleaved.push(n - 1);
        }
        let mut candidates = Self::new();
        candidates.push(natural);
        candidates.push(reversed);
        candidates.push(interleaved);
        candidates
    }

    /// The candidate orders.
    pub fn orders(&self) -> &[Vec<u32>] {
        &self.orders
    }
}

/// Transfers `root` from `source` into a fresh manager with the given order.
///
/// # Errors
///
/// Returns [`BddHalt`] if the destination manager hits `node_limit`.
pub fn transfer(
    source: &BddManager,
    root: Bdd,
    order: Vec<u32>,
    node_limit: usize,
) -> Result<(BddManager, Bdd), BddHalt> {
    let mut dest = BddManager::with_order(order);
    dest.set_node_limit(node_limit);
    let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
    let result = transfer_rec(source, &mut dest, root, &mut memo)?;
    Ok((dest, result))
}

fn transfer_rec(
    source: &BddManager,
    dest: &mut BddManager,
    node: Bdd,
    memo: &mut HashMap<Bdd, Bdd>,
) -> Result<Bdd, BddHalt> {
    if source.is_true(node) {
        return Ok(dest.true_bdd());
    }
    if source.is_false(node) {
        return Ok(dest.false_bdd());
    }
    if let Some(&r) = memo.get(&node) {
        return Ok(r);
    }
    let (var, low, high) = source
        .node_parts(node)
        .expect("non-terminal nodes have parts");
    let low_t = transfer_rec(source, dest, low, memo)?;
    let high_t = transfer_rec(source, dest, high, memo)?;
    let v = dest.var(var)?;
    let result = dest.ite(v, high_t, low_t)?;
    memo.insert(node, result);
    Ok(result)
}

/// Tries every candidate order and returns the `(manager, root)` pair with the
/// smallest node count, together with that count.
///
/// # Errors
///
/// Returns [`BddHalt`] only if *every* candidate (including keeping
/// the current manager) exceeds the node limit.
pub fn improve_order(
    source: BddManager,
    root: Bdd,
    candidates: &OrderCandidates,
    node_limit: usize,
) -> Result<(BddManager, Bdd, usize), BddHalt> {
    let mut best_count = source.node_count(root);
    let mut best: Option<(BddManager, Bdd)> = Some((source, root));
    for order in candidates.orders() {
        let source_ref = &best.as_ref().expect("best is always present").0;
        if order.len() != source_ref.num_vars() {
            continue;
        }
        match transfer(
            source_ref,
            best.as_ref().unwrap().1,
            order.clone(),
            node_limit,
        ) {
            Ok((mgr, new_root)) => {
                let count = mgr.node_count(new_root);
                if count < best_count {
                    best_count = count;
                    best = Some((mgr, new_root));
                }
            }
            Err(_) => continue,
        }
    }
    let (mgr, root) = best.expect("best is always present");
    Ok((mgr, root, best_count))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the textbook order-sensitive function
    /// `(x0 ∧ x1) ∨ (x2 ∧ x3) ∨ (x4 ∧ x5)` under a given order.
    fn pair_function(order: Vec<u32>) -> (BddManager, Bdd) {
        let mut mgr = BddManager::with_order(order);
        let mut acc = mgr.false_bdd();
        for i in 0..3u32 {
            let a = mgr.var(2 * i).unwrap();
            let b = mgr.var(2 * i + 1).unwrap();
            let ab = mgr.and(a, b).unwrap();
            acc = mgr.or(acc, ab).unwrap();
        }
        (mgr, acc)
    }

    #[test]
    fn transfer_preserves_semantics() {
        let (mgr, f) = pair_function((0..6).collect());
        let (dest, g) = transfer(&mgr, f, (0..6).rev().collect(), 1 << 20).unwrap();
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(mgr.eval(f, &a), dest.eval(g, &a), "assignment {a:?}");
        }
    }

    #[test]
    fn good_order_is_smaller_than_bad_order() {
        // Interleaved order (pairs adjacent) is linear; the "split" order
        // x0 x2 x4 x1 x3 x5 is exponential in the number of pairs.
        let good = vec![0, 1, 2, 3, 4, 5];
        let bad = vec![0, 2, 4, 1, 3, 5];
        let (mgr_good, f_good) = pair_function(good);
        let (mgr_bad, f_bad) = pair_function(bad);
        assert!(mgr_good.node_count(f_good) < mgr_bad.node_count(f_bad));
    }

    #[test]
    fn improve_order_finds_the_linear_order() {
        let bad = vec![0, 2, 4, 1, 3, 5];
        let (mgr, f) = pair_function(bad);
        let before = mgr.node_count(f);
        let mut candidates = OrderCandidates::new();
        candidates.push(vec![0, 1, 2, 3, 4, 5]);
        candidates.push(vec![5, 4, 3, 2, 1, 0]);
        let (best_mgr, best_root, best_count) =
            improve_order(mgr, f, &candidates, 1 << 20).unwrap();
        assert!(best_count < before);
        // Semantics preserved.
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
            let expected = (a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5]);
            assert_eq!(best_mgr.eval(best_root, &a), expected);
        }
    }

    #[test]
    fn default_candidates_cover_basic_orders() {
        let c = OrderCandidates::with_defaults(5);
        assert_eq!(c.orders().len(), 3);
        for order in c.orders() {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                vec![0, 1, 2, 3, 4],
                "each candidate is a permutation"
            );
        }
    }
}
