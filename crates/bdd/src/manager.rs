//! The shared ROBDD node store and its Boolean operations.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Handle to a BDD node owned by a [`BddManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// Raw node index (0 = false terminal, 1 = true terminal).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a BDD operation stopped before producing a result.
///
/// The node limit plays the role of the memory-outs the paper reports for the
/// BDD runs on the larger designs; `Cancelled` is raised when the shared
/// cancel flag (see [`BddManager::set_cancel_flag`]) is observed in the
/// node-allocation path — the way a racing SAT engine stops a losing BDD
/// build in the portfolio back end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddHalt {
    /// The configured node limit would be exceeded.
    NodeLimit {
        /// The configured limit that was exceeded.
        node_limit: usize,
    },
    /// The shared cancel flag was raised.
    Cancelled,
}

impl fmt::Display for BddHalt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddHalt::NodeLimit { node_limit } => {
                write!(f, "bdd node limit of {node_limit} nodes exceeded")
            }
            BddHalt::Cancelled => write!(f, "bdd build cancelled"),
        }
    }
}

impl std::error::Error for BddHalt {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Node {
    /// Variable index (not level).  Terminals use `u32::MAX`.
    var: u32,
    low: u32,
    high: u32,
}

const FALSE_NODE: u32 = 0;
const TRUE_NODE: u32 = 1;
const TERMINAL_VAR: u32 = u32::MAX;

/// A shared ROBDD store: unique table, computed cache and variable order.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    /// Maps variable index to its level in the order (smaller level = closer to root).
    var_to_level: Vec<u32>,
    node_limit: usize,
    /// Cooperative cancellation flag, polled in the node-allocation path.
    cancel: Option<Arc<AtomicBool>>,
}

impl BddManager {
    /// Default node limit (acts as the "4 GB of physical memory" bound of the
    /// paper's experimental machine, scaled to this reproduction).
    pub const DEFAULT_NODE_LIMIT: usize = 4_000_000;

    /// Creates a manager for `num_vars` variables in natural order.
    pub fn new(num_vars: usize) -> Self {
        Self::with_order((0..num_vars as u32).collect())
    }

    /// Creates a manager with an explicit variable order (a permutation of the
    /// variable indices; earlier entries are closer to the root).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_order(order: Vec<u32>) -> Self {
        let num_vars = order.len();
        let mut var_to_level = vec![u32::MAX; num_vars];
        for (level, &var) in order.iter().enumerate() {
            assert!(
                (var as usize) < num_vars && var_to_level[var as usize] == u32::MAX,
                "variable order must be a permutation"
            );
            var_to_level[var as usize] = level as u32;
        }
        let mut mgr = BddManager {
            nodes: Vec::with_capacity(1024),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            var_to_level,
            node_limit: Self::DEFAULT_NODE_LIMIT,
            cancel: None,
        };
        mgr.nodes.push(Node {
            var: TERMINAL_VAR,
            low: FALSE_NODE,
            high: FALSE_NODE,
        });
        mgr.nodes.push(Node {
            var: TERMINAL_VAR,
            low: TRUE_NODE,
            high: TRUE_NODE,
        });
        mgr
    }

    /// Sets the node limit.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Installs a shared cancellation flag.
    ///
    /// When the flag is raised (e.g. by a SAT engine that has already decided
    /// the formula in a portfolio race), the next node allocation fails with
    /// [`BddHalt::Cancelled`], unwinding the whole build promptly.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> usize {
        self.var_to_level.len()
    }

    /// Total number of nodes currently allocated (including the terminals).
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant `true`.
    pub fn true_bdd(&self) -> Bdd {
        Bdd(TRUE_NODE)
    }

    /// The constant `false`.
    pub fn false_bdd(&self) -> Bdd {
        Bdd(FALSE_NODE)
    }

    /// Whether `f` is the constant `true`.
    pub fn is_true(&self, f: Bdd) -> bool {
        f.0 == TRUE_NODE
    }

    /// Whether `f` is the constant `false`.
    pub fn is_false(&self, f: Bdd) -> bool {
        f.0 == FALSE_NODE
    }

    fn level(&self, node: u32) -> u32 {
        let var = self.nodes[node as usize].var;
        if var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var_to_level[var as usize]
        }
    }

    fn mk(&mut self, var: u32, low: u32, high: u32) -> Result<u32, BddHalt> {
        if low == high {
            return Ok(low);
        }
        if let Some(&n) = self.unique.get(&(var, low, high)) {
            return Ok(n);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddHalt::NodeLimit {
                node_limit: self.node_limit,
            });
        }
        // One relaxed load per fresh allocation: negligible next to the two
        // hash-table insertions below, and it makes a losing portfolio build
        // stop within a handful of node allocations of the cancel signal.
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(BddHalt::Cancelled);
            }
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low, high), n);
        Ok(n)
    }

    /// The BDD for variable `var`.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: u32) -> Result<Bdd, BddHalt> {
        assert!((var as usize) < self.num_vars(), "variable out of range");
        self.mk(var, FALSE_NODE, TRUE_NODE).map(Bdd)
    }

    /// The BDD for the negation of variable `var`.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn nvar(&mut self, var: u32) -> Result<Bdd, BddHalt> {
        assert!((var as usize) < self.num_vars(), "variable out of range");
        self.mk(var, TRUE_NODE, FALSE_NODE).map(Bdd)
    }

    fn cofactors(&self, f: u32, var: u32) -> (u32, u32) {
        let node = self.nodes[f as usize];
        if node.var == var {
            (node.low, node.high)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddHalt> {
        self.ite_rec(f.0, g.0, h.0).map(Bdd)
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddHalt> {
        // Terminal cases.
        if f == TRUE_NODE {
            return Ok(g);
        }
        if f == FALSE_NODE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == TRUE_NODE && h == FALSE_NODE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        // Recover the variable at this level: one of the three roots has it.
        let var = [f, g, h]
            .iter()
            .map(|&n| self.nodes[n as usize].var)
            .find(|&v| v != TERMINAL_VAR && self.var_to_level[v as usize] == top)
            .expect("at least one operand is non-terminal");
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let (h0, h1) = self.cofactors(h, var);
        let low = self.ite_rec(f0, g0, h0)?;
        let high = self.ite_rec(f1, g1, h1)?;
        let result = self.mk(var, low, high)?;
        self.ite_cache.insert((f, g, h), result);
        Ok(result)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd, BddHalt> {
        self.ite(f, self.false_bdd(), self.true_bdd())
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddHalt> {
        self.ite(f, g, self.false_bdd())
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddHalt> {
        self.ite(f, self.true_bdd(), g)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddHalt> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Implication `f ⇒ g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddHalt> {
        self.ite(f, g, self.true_bdd())
    }

    /// Biconditional `f ⇔ g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`] if the node limit is reached.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddHalt> {
        let ng = self.not(g)?;
        self.ite(f, g, ng)
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut node = f.0;
        loop {
            if node == TRUE_NODE {
                return true;
            }
            if node == FALSE_NODE {
                return false;
            }
            let n = self.nodes[node as usize];
            node = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
    }

    /// Returns one satisfying assignment of `f` (values only for the variables
    /// tested along the chosen path), or `None` if `f` is the constant false.
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<Option<bool>>> {
        if self.is_false(f) {
            return None;
        }
        let mut assignment = vec![None; self.num_vars()];
        let mut node = f.0;
        while node != TRUE_NODE {
            let n = self.nodes[node as usize];
            if n.high != FALSE_NODE {
                assignment[n.var as usize] = Some(true);
                node = n.high;
            } else {
                assignment[n.var as usize] = Some(false);
                node = n.low;
            }
        }
        Some(assignment)
    }

    /// Number of satisfying assignments of `f` over all manager variables.
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        let total_levels = self.num_vars() as i32;
        let fraction = self.count_rec(f.0, &mut memo);
        fraction * 2f64.powi(total_levels)
    }

    /// Fraction of assignments (over variables below the node's level) that satisfy the node.
    fn count_rec(&self, node: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if node == TRUE_NODE {
            return 1.0;
        }
        if node == FALSE_NODE {
            return 0.0;
        }
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        let n = self.nodes[node as usize];
        let low = self.count_rec(n.low, memo);
        let high = self.count_rec(n.high, memo);
        let value = 0.5 * (low + high);
        memo.insert(node, value);
        value
    }

    /// Number of distinct nodes reachable from `f` (excluding terminals).
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n == TRUE_NODE || n == FALSE_NODE || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.len()
    }

    /// The variable order currently in effect (level → variable).
    pub fn order(&self) -> Vec<u32> {
        let mut order = vec![0u32; self.num_vars()];
        for (var, &level) in self.var_to_level.iter().enumerate() {
            order[level as usize] = var as u32;
        }
        order
    }

    /// Variable and cofactors of a non-terminal node (used by [`crate::reorder`]).
    pub(crate) fn node_parts(&self, f: Bdd) -> Option<(u32, Bdd, Bdd)> {
        if f.0 == TRUE_NODE || f.0 == FALSE_NODE {
            return None;
        }
        let n = self.nodes[f.index()];
        Some((n.var, Bdd(n.low), Bdd(n.high)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_variables() {
        let mut mgr = BddManager::new(2);
        let t = mgr.true_bdd();
        let f = mgr.false_bdd();
        assert!(mgr.is_true(t));
        assert!(mgr.is_false(f));
        let x = mgr.var(0).unwrap();
        let x2 = mgr.var(0).unwrap();
        assert_eq!(x, x2, "unique table shares nodes");
        assert!(!mgr.is_true(x) && !mgr.is_false(x));
    }

    #[test]
    fn basic_identities() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let t = mgr.true_bdd();
        let f = mgr.false_bdd();
        assert_eq!(mgr.and(x, t).unwrap(), x);
        assert_eq!(mgr.and(x, f).unwrap(), f);
        assert_eq!(mgr.or(x, f).unwrap(), x);
        assert_eq!(mgr.or(x, t).unwrap(), t);
        let nx = mgr.not(x).unwrap();
        let nnx = mgr.not(nx).unwrap();
        assert_eq!(nnx, x);
        let x_or_nx = mgr.or(x, nx).unwrap();
        assert!(mgr.is_true(x_or_nx));
        let x_and_nx = mgr.and(x, nx).unwrap();
        assert!(mgr.is_false(x_and_nx));
        let xy = mgr.and(x, y).unwrap();
        let yx = mgr.and(y, x).unwrap();
        assert_eq!(xy, yx, "canonicity makes conjunction commutative");
    }

    #[test]
    fn eval_matches_semantics() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let z = mgr.var(2).unwrap();
        let xy = mgr.and(x, y).unwrap();
        let formula = mgr.or(xy, z).unwrap();
        for bits in 0..8u32 {
            let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = (a[0] && a[1]) || a[2];
            assert_eq!(mgr.eval(formula, &a), expected, "assignment {a:?}");
        }
    }

    #[test]
    fn sat_one_and_count() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let xy = mgr.and(x, y).unwrap();
        let model = mgr.sat_one(xy).unwrap();
        assert_eq!(model[0], Some(true));
        assert_eq!(model[1], Some(true));
        assert!(mgr.sat_one(mgr.false_bdd()).is_none());
        // x ∧ y has 2 models over 3 variables (z free).
        assert!((mgr.sat_count(xy) - 2.0).abs() < 1e-9);
        assert!((mgr.sat_count(mgr.true_bdd()) - 8.0).abs() < 1e-9);
        assert_eq!(mgr.sat_count(mgr.false_bdd()), 0.0);
    }

    #[test]
    fn xor_iff_implies() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let xor = mgr.xor(x, y).unwrap();
        let iff = mgr.iff(x, y).unwrap();
        let nxor = mgr.not(xor).unwrap();
        assert_eq!(iff, nxor);
        let imp = mgr.implies(x, x).unwrap();
        assert!(mgr.is_true(imp));
    }

    #[test]
    fn respects_variable_order() {
        // Order [1, 0]: variable 1 is at the root.
        let mut mgr = BddManager::with_order(vec![1, 0]);
        let x0 = mgr.var(0).unwrap();
        let x1 = mgr.var(1).unwrap();
        let f = mgr.and(x0, x1).unwrap();
        let (root_var, _, _) = mgr.node_parts(f).unwrap();
        assert_eq!(root_var, 1);
        assert_eq!(mgr.order(), vec![1, 0]);
    }

    #[test]
    fn cancel_flag_halts_node_allocation() {
        let mut mgr = BddManager::new(8);
        let flag = Arc::new(AtomicBool::new(false));
        mgr.set_cancel_flag(Arc::clone(&flag));
        // Fresh allocations succeed while the flag is down...
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        assert!(mgr.and(x, y).is_ok());
        flag.store(true, Ordering::Relaxed);
        // ...cached nodes still resolve, but any new allocation reports the
        // cancellation instead of finishing the build.
        assert_eq!(mgr.var(0), Ok(x));
        assert_eq!(mgr.xor(x, y), Err(BddHalt::Cancelled));
    }

    #[test]
    fn node_limit_is_enforced() {
        let mut mgr = BddManager::new(32);
        mgr.set_node_limit(8);
        let mut result = Ok(mgr.true_bdd());
        for i in 0..32 {
            let v = match mgr.var(i) {
                Ok(v) => v,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            result = result.and_then(|acc| mgr.xor(acc, v));
            if result.is_err() {
                break;
            }
        }
        assert!(result.is_err(), "the limit of 8 nodes must be hit");
    }

    #[test]
    fn node_count_counts_distinct_nodes() {
        let mut mgr = BddManager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| mgr.var(i).unwrap()).collect();
        let mut acc = mgr.true_bdd();
        for v in &vars {
            acc = mgr.and(acc, *v).unwrap();
        }
        assert_eq!(mgr.node_count(acc), 4);
    }
}
