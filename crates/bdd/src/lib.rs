//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! This is the decision-diagram back end of the verification flow — the role
//! CUDD played in the paper's BDD-based experiments (Table 1, Fig. 7, and the
//! historical results quoted for the correct designs).  The package provides:
//!
//! * a shared node store with a unique table (hash consing) and an ITE
//!   computed cache ([`manager::BddManager`]),
//! * the Boolean operations `not`, `and`, `or`, `xor`, `ite`, `implies`, `iff`,
//! * model extraction ([`manager::BddManager::sat_one`]) and model counting,
//! * a configurable variable order plus order-improvement by re-building under
//!   candidate orders ([`reorder`]), standing in for CUDD's sifting
//!   (documented as a substitution in `DESIGN.md`),
//! * a node limit so that blow-ups surface as a clean
//!   [`BddHalt`] error instead of an out-of-memory condition — the
//!   paper's BDD runs are reported as time-outs / memory-outs on the larger
//!   designs, and the harness maps this error to exactly that outcome.
//!
//! # Example
//!
//! ```
//! use velv_bdd::BddManager;
//!
//! let mut mgr = BddManager::new(3);
//! let x = mgr.var(0).unwrap();
//! let y = mgr.var(1).unwrap();
//! let xy = mgr.and(x, y).unwrap();
//! let either = mgr.or(x, y).unwrap();
//! let implies = mgr.implies(xy, either).unwrap();
//! assert!(mgr.is_true(implies));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manager;
pub mod reorder;

pub use manager::{Bdd, BddHalt, BddManager};
pub use reorder::{improve_order, OrderCandidates};
