//! The EVC analog: translation of EUFM microprocessor-correctness formulas to
//! propositional logic, and the end-to-end verification flow.
//!
//! The pipeline mirrors the tool flow of the paper:
//!
//! 1. [`burch_dill`] constructs the Burch–Dill correctness criterion by
//!    *flushing*: one implementation step followed by a flush must match 0..k
//!    specification steps on every architectural state element.
//! 2. [`memory_elim`] removes the interpreted `read`/`write` memory functions
//!    (precisely, using the forwarding property, or conservatively as plain
//!    uninterpreted functions — the "automatic memory abstraction" of the paper).
//! 3. [`uf_elim`] removes uninterpreted functions and predicates with the
//!    nested-ITE scheme (or Ackermann constraints for predicates), with the
//!    optional *early reduction of p-equations*.
//! 4. [`positive_equality`] classifies term variables into p-terms and
//!    g-terms; p-terms get a maximally diverse interpretation.
//! 5. [`encode`] turns the remaining term-level equations into propositional
//!    formulas using either the *e*ij encoding (with the sparse transitivity
//!    constraints of [`encode::transitivity`]) or the small-domain encoding.
//! 6. [`cnf`] translates the propositional formula into CNF (one auxiliary
//!    variable per ∧/∨/ITE node, negations absorbed into literal polarity).
//! 7. [`flow`] drives the whole pipeline and the back ends; [`decompose`]
//!    provides the weak-criteria decomposition used by the parallel-run
//!    experiments, and [`backend`] the unified [`Backend`] abstraction whose
//!    portfolio variant races CDCL presets against the BDD build with
//!    cooperative cancellation.
//!
//! # Example
//!
//! ```
//! use velv_core::{Verifier, TranslationOptions};
//! use velv_models::dlx::{Dlx, DlxConfig, DlxSpecification};
//! use velv_sat::cdcl::CdclSolver;
//!
//! let config = DlxConfig::single_issue();
//! let implementation = Dlx::correct(config);
//! let spec = DlxSpecification::new(config);
//! let verifier = Verifier::new(TranslationOptions::default());
//! let mut solver = CdclSolver::chaff();
//! let verdict = verifier.verify(&implementation, &spec, &mut solver);
//! assert!(verdict.is_correct());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod burch_dill;
pub mod certify;
pub mod cnf;
pub mod counterexample;
pub mod decompose;
pub mod encode;
pub mod fingerprint;
pub mod flow;
pub mod memory_elim;
pub mod options;
pub mod positive_equality;
pub mod refine;
pub mod stats;
#[cfg(test)]
pub(crate) mod test_models;
pub mod uf_elim;

pub use backend::{Backend, BackendRun, BddOutcome, PortfolioOutcome};
pub use burch_dill::VerificationProblem;
pub use certify::{
    Certificate, CertifiedObligation, CertifiedVerdict, CertifyError, ModelCertificate,
    ProofCertificate, SharedCertifiedOutcome,
};
pub use counterexample::Counterexample;
pub use fingerprint::problem_fingerprint;
pub use flow::{SharedObligation, SharedTranslation, Translation, Verdict, Verifier};
pub use options::{CertifyOptions, GEncoding, TransitivityMode, TranslationOptions, UpElimination};
pub use stats::{RefinementStats, TranslationStats};
