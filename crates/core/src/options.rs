//! Configuration of the EUFM → propositional translation.

/// How g-equations (equations between general terms) are encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GEncoding {
    /// One fresh Boolean variable per g-equation plus sparse transitivity
    /// constraints (Goel et al. 1998; Bryant & Velev 2002).
    Eij,
    /// Small-domain instantiation: each g-term ranges over a sufficient set of
    /// constants selected by indexing variables (Pnueli et al. 1999).
    SmallDomain,
}

/// How transitivity of the *e*ij equality variables is enforced (only
/// meaningful for [`GEncoding::Eij`]; the small-domain encoding is
/// transitive by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransitivityMode {
    /// Triangulate the equality-comparison graph up front and assume the
    /// three transitivity clauses of every triangle as side constraints
    /// (Bryant & Velev's sparse method, Section 6 of the paper).  One solver
    /// call decides the obligation.
    Eager,
    /// Encode without any transitivity constraints and refine lazily: solve,
    /// look for violated transitivity in the returned model (an equality
    /// path between the endpoints of a false *e*ij edge), assert the violated
    /// constraint, re-solve — the refinement loop of Bryant & Velev's
    /// "Boolean Satisfiability with Transitivity Constraints", a natural fit
    /// for the incremental solver which keeps learned clauses across the
    /// iterations.  UNSAT answers need no refinement at all (fewer variables,
    /// no chord edges); SAT answers are validated before being reported.
    Lazy,
}

/// How uninterpreted predicates are eliminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpElimination {
    /// Nested-ITE scheme (same as for uninterpreted functions).
    NestedIte,
    /// Ackermann constraints.  The paper notes this is acceptable for
    /// predicates (the negated consistency equations are over Boolean values)
    /// but must not be used for functions whose results are p-terms.
    Ackermann,
}

/// All the translation toggles exercised by the paper's experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct TranslationOptions {
    /// Exploit positive equality (Section 8).  When disabled, every term
    /// variable is treated as a g-term, as in the original Goel et al. scheme.
    pub positive_equality: bool,
    /// Encoding of g-equations (Section 6).
    pub encoding: GEncoding,
    /// Transitivity enforcement for the *e*ij encoding: eager triangulated
    /// side constraints (the default) or lazy model-driven refinement.
    /// Lazy translations are checked by the refinement loop in
    /// [`crate::refine`]; [`crate::Verifier::check`] routes there
    /// automatically.
    pub transitivity: TransitivityMode,
    /// Elimination scheme for uninterpreted predicates (Section 5, "AC").
    pub up_elimination: UpElimination,
    /// Early reduction of p-equations during UF elimination (Section 5, "ER").
    pub early_reduction: bool,
    /// Conservative approximation: abstract these memories (by state-element
    /// name) with general uninterpreted functions that do not satisfy the
    /// forwarding property (Section 8).
    pub abstract_memories: Vec<String>,
    /// Conservative approximation: wrap these architectural state elements in
    /// dummy unary "translation box" UFs on both sides of the commutative
    /// diagram (Section 8).
    pub translation_boxes: Vec<String>,
}

impl Default for TranslationOptions {
    fn default() -> Self {
        TranslationOptions {
            positive_equality: true,
            encoding: GEncoding::Eij,
            transitivity: TransitivityMode::Eager,
            up_elimination: UpElimination::NestedIte,
            early_reduction: false,
            abstract_memories: Vec::new(),
            translation_boxes: Vec::new(),
        }
    }
}

impl TranslationOptions {
    /// The base configuration used throughout the experiments: positive
    /// equality, eij encoding, nested-ITE elimination, no structural
    /// variations, no conservative approximations.
    pub fn base() -> Self {
        Self::default()
    }

    /// Structural variation "ER": early reduction of p-equations.
    pub fn with_early_reduction(mut self) -> Self {
        self.early_reduction = true;
        self
    }

    /// Structural variation "AC": Ackermann constraints for predicates.
    pub fn with_ackermann_ups(mut self) -> Self {
        self.up_elimination = UpElimination::Ackermann;
        self
    }

    /// Switches to the small-domain encoding of g-equations.
    pub fn with_small_domain(mut self) -> Self {
        self.encoding = GEncoding::SmallDomain;
        self
    }

    /// Switches transitivity enforcement to lazy model-driven refinement
    /// (see [`TransitivityMode::Lazy`]).
    pub fn with_lazy_transitivity(mut self) -> Self {
        self.transitivity = TransitivityMode::Lazy;
        self
    }

    /// Disables positive equality (the "no positive equality" rows of Table 9).
    pub fn without_positive_equality(mut self) -> Self {
        self.positive_equality = false;
        self
    }

    /// A canonical, stable serialization of every translation toggle.
    ///
    /// Two option values produce the same token iff they are equal (list
    /// fields are sorted and deduplicated first, since their order does not
    /// affect the translation).  The token feeds the job
    /// [`fingerprint`](crate::fingerprint), so it must never depend on
    /// process state — only on the option values themselves.
    pub fn canonical_token(&self) -> String {
        let list = |items: &[String]| {
            let mut sorted: Vec<&str> = items.iter().map(String::as_str).collect();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.join(",")
        };
        format!(
            "pe={};enc={};trans={};up={};er={};am=[{}];tb=[{}]",
            u8::from(self.positive_equality),
            match self.encoding {
                GEncoding::Eij => "eij",
                GEncoding::SmallDomain => "sd",
            },
            match self.transitivity {
                TransitivityMode::Eager => "eager",
                TransitivityMode::Lazy => "lazy",
            },
            match self.up_elimination {
                UpElimination::NestedIte => "ite",
                UpElimination::Ackermann => "ack",
            },
            u8::from(self.early_reduction),
            list(&self.abstract_memories),
            list(&self.translation_boxes),
        )
    }

    /// The four structural variations of Table 2: base, ER, AC, ER + AC.
    pub fn structural_variations() -> Vec<(String, TranslationOptions)> {
        vec![
            ("base".to_owned(), Self::base()),
            ("ER".to_owned(), Self::base().with_early_reduction()),
            ("AC".to_owned(), Self::base().with_ackermann_ups()),
            (
                "ER+AC".to_owned(),
                Self::base().with_early_reduction().with_ackermann_ups(),
            ),
        ]
    }
}

/// Configuration of *certified* checking
/// ([`crate::Verifier::check_certified`] and
/// [`crate::Verifier::check_shared_certified`]).
///
/// A certified run turns both poles of a verdict into checkable artifacts
/// instead of articles of faith in the solver:
///
/// * **UNSAT** — the CDCL engine logs a DRAT proof (every learned clause,
///   every deletion, and the terminal clause: the empty clause, or the clause
///   over the negated assumptions for assumption-selected obligations).  The
///   proof is replayed by the *independent* forward RUP checker in
///   `velv_proof` against the exact CNF that was solved — the translation's
///   clauses plus every clause asserted during lazy transitivity refinement.
/// * **SAT** — the model is lifted through
///   [`crate::Counterexample::from_model`] into a `velv_eufm`
///   [`velv_eufm::Interpretation`] and the encoded correctness formula is
///   re-evaluated with `velv_eufm::eval`: it must come out *false* under
///   *true* side constraints, the *e*ij assignment must be
///   transitivity-consistent (so it lifts to a genuine equality
///   interpretation), and the model must satisfy every clause handed to the
///   solver.  Spurious models are rejected instead of reported as bugs.
///
/// The trusted base of a certified verdict is therefore reduced to: the
/// EUFM translation pipeline (model → CNF), the tiny RUP checker, and the
/// EUFM evaluator — the CDCL search, its heuristics, clause management and
/// the incremental session machinery are all *outside* it.  See the
/// "Certified verification" section of the README for the full threat model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertifyOptions {
    /// Log DRAT proofs during solving and replay every UNSAT answer through
    /// the independent checker.  Disabling this removes the (small) logging
    /// overhead and leaves UNSAT verdicts uncertified.
    pub check_unsat_proofs: bool,
    /// Re-evaluate every SAT model against the encoded correctness formula
    /// and the transitivity semantics before reporting it as a
    /// counterexample.
    pub validate_counterexamples: bool,
    /// Backward-trim verified proofs and report the used-clause core (which
    /// input clauses the refutation actually depends on).  Costs extra
    /// checker memory; off by default.
    pub trim_proofs: bool,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            check_unsat_proofs: true,
            validate_counterexamples: true,
            trim_proofs: false,
        }
    }
}

impl CertifyOptions {
    /// Full certification on both poles (the default).
    pub fn full() -> Self {
        Self::default()
    }

    /// Additionally backward-trim proofs and report used-clause cores.
    pub fn with_trimming(mut self) -> Self {
        self.trim_proofs = true;
        self
    }

    /// A canonical, stable serialization (see
    /// [`TranslationOptions::canonical_token`]).
    pub fn canonical_token(&self) -> String {
        format!(
            "proofs={};models={};trim={}",
            u8::from(self.check_unsat_proofs),
            u8::from(self.validate_counterexamples),
            u8::from(self.trim_proofs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certify_defaults_check_both_poles() {
        let options = CertifyOptions::default();
        assert!(options.check_unsat_proofs);
        assert!(options.validate_counterexamples);
        assert!(!options.trim_proofs);
        assert!(CertifyOptions::full().with_trimming().trim_proofs);
    }

    #[test]
    fn default_matches_the_paper_base_configuration() {
        let options = TranslationOptions::default();
        assert!(options.positive_equality);
        assert_eq!(options.encoding, GEncoding::Eij);
        assert_eq!(options.transitivity, TransitivityMode::Eager);
        assert_eq!(options.up_elimination, UpElimination::NestedIte);
        assert!(!options.early_reduction);
        assert!(options.abstract_memories.is_empty());
        assert!(options.translation_boxes.is_empty());
    }

    #[test]
    fn builders_toggle_the_right_fields() {
        let options = TranslationOptions::base()
            .with_early_reduction()
            .with_ackermann_ups()
            .with_small_domain();
        assert!(options.early_reduction);
        assert_eq!(options.up_elimination, UpElimination::Ackermann);
        assert_eq!(options.encoding, GEncoding::SmallDomain);
        assert!(
            !TranslationOptions::base()
                .without_positive_equality()
                .positive_equality
        );
        assert_eq!(
            TranslationOptions::base()
                .with_lazy_transitivity()
                .transitivity,
            TransitivityMode::Lazy
        );
    }

    #[test]
    fn canonical_tokens_distinguish_every_toggle() {
        let base = TranslationOptions::base();
        let mut tokens = vec![
            base.canonical_token(),
            base.clone().with_early_reduction().canonical_token(),
            base.clone().with_ackermann_ups().canonical_token(),
            base.clone().with_small_domain().canonical_token(),
            base.clone().with_lazy_transitivity().canonical_token(),
            base.clone().without_positive_equality().canonical_token(),
        ];
        let mut boxed = base.clone();
        boxed.translation_boxes = vec!["pc".to_owned()];
        tokens.push(boxed.canonical_token());
        let mut abstracted = base.clone();
        abstracted.abstract_memories = vec!["dmem".to_owned()];
        tokens.push(abstracted.canonical_token());
        let n = tokens.len();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), n, "every variation has a distinct token");

        // List order does not change the token.
        let mut ab = base.clone();
        ab.abstract_memories = vec!["a".to_owned(), "b".to_owned()];
        let mut ba = base;
        ba.abstract_memories = vec!["b".to_owned(), "a".to_owned()];
        assert_eq!(ab.canonical_token(), ba.canonical_token());

        assert_ne!(
            CertifyOptions::full().canonical_token(),
            CertifyOptions::full().with_trimming().canonical_token()
        );
    }

    #[test]
    fn four_structural_variations() {
        let variations = TranslationOptions::structural_variations();
        assert_eq!(variations.len(), 4);
        assert_eq!(variations[0].0, "base");
        assert!(variations[3].1.early_reduction);
        assert_eq!(variations[3].1.up_elimination, UpElimination::Ackermann);
    }
}
