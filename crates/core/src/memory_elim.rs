//! Elimination of the interpreted memory functions `read` and `write`.
//!
//! Two modes, matching the paper:
//!
//! * **Precise** (default): reads are pushed through writes and `ITE`s using
//!   the forwarding property of the memory semantics, ultimately bottoming out
//!   in a fresh uninterpreted function `rd#<mem>` that abstracts the initial
//!   memory content.  Equations between memory states are rewritten into data
//!   equations at a fresh symbolic address (extensionality at one arbitrary
//!   address, which is exact for the positively occurring state comparisons of
//!   the correctness criterion).
//! * **Conservative** ("automatically abstracted memories", Section 8): reads
//!   and writes of the designated memories become applications of completely
//!   general uninterpreted functions `absrd#<mem>` / `abswr#<mem>` that do not
//!   satisfy the forwarding property.  This can only make verification harder
//!   (false negatives), never unsound.

use std::collections::{BTreeSet, HashMap};
use velv_eufm::{Context, Formula, FormulaId, Symbol, Term, TermId};

/// Result of memory elimination.
#[derive(Clone, Debug)]
pub struct MemoryElimination {
    /// The rewritten formula (free of `read`/`write` nodes).
    pub formula: FormulaId,
    /// Fresh address variables introduced for memory-state equations.
    pub address_witnesses: Vec<Symbol>,
}

/// Eliminates all memory operations reachable from `root`.
///
/// `memory_vars` are the term variables that denote initial memory states
/// (register files, data memory, ...); `abstract_memories` is the subset that
/// must be abstracted conservatively instead of precisely.
pub fn eliminate_memories(
    ctx: &mut Context,
    root: FormulaId,
    memory_vars: &BTreeSet<Symbol>,
    abstract_memories: &BTreeSet<Symbol>,
) -> MemoryElimination {
    let mut elim = Eliminator {
        memory_vars,
        abstract_memories,
        term_memo: HashMap::new(),
        formula_memo: HashMap::new(),
        read_memo: HashMap::new(),
        witnesses: Vec::new(),
    };
    let formula = elim.rewrite_formula(ctx, root);
    MemoryElimination {
        formula,
        address_witnesses: elim.witnesses,
    }
}

struct Eliminator<'a> {
    memory_vars: &'a BTreeSet<Symbol>,
    abstract_memories: &'a BTreeSet<Symbol>,
    term_memo: HashMap<TermId, TermId>,
    formula_memo: HashMap<FormulaId, FormulaId>,
    read_memo: HashMap<(TermId, TermId), TermId>,
    witnesses: Vec<Symbol>,
}

impl Eliminator<'_> {
    /// Whether the term denotes a memory state (reaches a `write` or an
    /// initial-memory variable through value positions).
    fn is_memory_term(&self, ctx: &Context, t: TermId) -> bool {
        let mut stack = vec![t];
        let mut seen = BTreeSet::new();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            match ctx.term(t) {
                Term::Var(sym) => {
                    if self.memory_vars.contains(sym) {
                        return true;
                    }
                }
                Term::Write(_, _, _) => return true,
                Term::Ite(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Term::Uf(_, _) | Term::Read(_, _) => {}
            }
        }
        false
    }

    /// The base memory variables a memory-state term can be built from.
    fn base_memories(&self, ctx: &Context, t: TermId) -> BTreeSet<Symbol> {
        let mut bases = BTreeSet::new();
        let mut stack = vec![t];
        let mut seen = BTreeSet::new();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            match ctx.term(t) {
                Term::Var(sym) => {
                    if self.memory_vars.contains(sym) {
                        bases.insert(*sym);
                    }
                }
                Term::Write(m, _, _) => stack.push(*m),
                Term::Ite(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Term::Uf(_, _) | Term::Read(_, _) => {}
            }
        }
        bases
    }

    fn uses_abstract_memory(&self, ctx: &Context, t: TermId) -> bool {
        self.base_memories(ctx, t)
            .iter()
            .any(|m| self.abstract_memories.contains(m))
    }

    fn rewrite_formula(&mut self, ctx: &mut Context, f: FormulaId) -> FormulaId {
        if let Some(&r) = self.formula_memo.get(&f) {
            return r;
        }
        let node = ctx.formula(f).clone();
        let result = match node {
            Formula::True | Formula::False | Formula::Var(_) => f,
            Formula::Up(sym, args) => {
                let name = ctx.symbol_name(sym).to_owned();
                let new_args: Vec<TermId> =
                    args.iter().map(|a| self.rewrite_term(ctx, *a)).collect();
                ctx.up(&name, new_args)
            }
            Formula::Not(a) => {
                let ra = self.rewrite_formula(ctx, a);
                ctx.not(ra)
            }
            Formula::And(a, b) => {
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.and(ra, rb)
            }
            Formula::Or(a, b) => {
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.or(ra, rb)
            }
            Formula::Ite(c, a, b) => {
                let rc = self.rewrite_formula(ctx, c);
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.ite_formula(rc, ra, rb)
            }
            Formula::Eq(a, b) => {
                if self.is_memory_term(ctx, a) || self.is_memory_term(ctx, b) {
                    // Memory-state equation: compare the contents at a fresh
                    // symbolic address (extensionality witness).
                    let witness = ctx.fresh_term_var("maddr");
                    if let Term::Var(sym) = ctx.term(witness) {
                        self.witnesses.push(*sym);
                    }
                    let ra = self.rewrite_read(ctx, a, witness);
                    let rb = self.rewrite_read(ctx, b, witness);
                    ctx.eq(ra, rb)
                } else {
                    let ra = self.rewrite_term(ctx, a);
                    let rb = self.rewrite_term(ctx, b);
                    ctx.eq(ra, rb)
                }
            }
        };
        self.formula_memo.insert(f, result);
        result
    }

    fn rewrite_term(&mut self, ctx: &mut Context, t: TermId) -> TermId {
        if let Some(&r) = self.term_memo.get(&t) {
            return r;
        }
        let node = ctx.term(t).clone();
        let result = match node {
            Term::Var(_) => t,
            Term::Uf(sym, args) => {
                let name = ctx.symbol_name(sym).to_owned();
                let new_args: Vec<TermId> =
                    args.iter().map(|a| self.rewrite_term(ctx, *a)).collect();
                ctx.uf(&name, new_args)
            }
            Term::Ite(c, a, b) => {
                let rc = self.rewrite_formula(ctx, c);
                let ra = self.rewrite_term(ctx, a);
                let rb = self.rewrite_term(ctx, b);
                ctx.ite_term(rc, ra, rb)
            }
            Term::Read(m, a) => {
                let addr = self.rewrite_term(ctx, a);
                self.rewrite_read(ctx, m, addr)
            }
            Term::Write(m, a, d) => {
                // A memory state in a value position outside a read/equation:
                // abstract it with a general UF (conservative but sound for the
                // validity check).
                let rm = self.rewrite_memory_state(ctx, m);
                let ra = self.rewrite_term(ctx, a);
                let rd = self.rewrite_term(ctx, d);
                let name = self.abstract_write_name(ctx, m);
                ctx.uf(&name, vec![rm, ra, rd])
            }
        };
        self.term_memo.insert(t, result);
        result
    }

    /// Rewrites `read(mem, addr)` where `addr` is already rewritten.
    fn rewrite_read(&mut self, ctx: &mut Context, mem: TermId, addr: TermId) -> TermId {
        if let Some(&r) = self.read_memo.get(&(mem, addr)) {
            return r;
        }
        let result = if self.uses_abstract_memory(ctx, mem) {
            // Conservative abstraction: a general UF over (memory state, address).
            let rm = self.rewrite_memory_state(ctx, mem);
            let name = self.abstract_read_name(ctx, mem);
            ctx.uf(&name, vec![rm, addr])
        } else {
            let node = ctx.term(mem).clone();
            match node {
                Term::Write(m2, a2, d2) => {
                    let ra2 = self.rewrite_term(ctx, a2);
                    let rd2 = self.rewrite_term(ctx, d2);
                    let hit = ctx.eq(addr, ra2);
                    let miss = self.rewrite_read(ctx, m2, addr);
                    ctx.ite_term(hit, rd2, miss)
                }
                Term::Ite(c, m1, m2) => {
                    let rc = self.rewrite_formula(ctx, c);
                    let r1 = self.rewrite_read(ctx, m1, addr);
                    let r2 = self.rewrite_read(ctx, m2, addr);
                    ctx.ite_term(rc, r1, r2)
                }
                Term::Var(sym) => {
                    let name = format!("rd#{}", ctx.symbol_name(sym));
                    ctx.uf(&name, vec![addr])
                }
                Term::Uf(_, _) | Term::Read(_, _) => {
                    // A memory produced by an uninterpreted function (e.g. an
                    // already-abstracted memory): read it with a general UF.
                    let rm = self.rewrite_term(ctx, mem);
                    ctx.uf("absrd#uf", vec![rm, addr])
                }
            }
        };
        self.read_memo.insert((mem, addr), result);
        result
    }

    /// Rewrites a memory-state term so that it can be passed to an abstract
    /// read/write UF: writes become `abswr#<mem>` applications.
    fn rewrite_memory_state(&mut self, ctx: &mut Context, mem: TermId) -> TermId {
        let node = ctx.term(mem).clone();
        match node {
            Term::Var(_) => mem,
            Term::Write(m, a, d) => {
                let rm = self.rewrite_memory_state(ctx, m);
                let ra = self.rewrite_term(ctx, a);
                let rd = self.rewrite_term(ctx, d);
                let name = self.abstract_write_name(ctx, m);
                ctx.uf(&name, vec![rm, ra, rd])
            }
            Term::Ite(c, a, b) => {
                let rc = self.rewrite_formula(ctx, c);
                let ra = self.rewrite_memory_state(ctx, a);
                let rb = self.rewrite_memory_state(ctx, b);
                ctx.ite_term(rc, ra, rb)
            }
            _ => self.rewrite_term(ctx, mem),
        }
    }

    fn abstract_read_name(&self, ctx: &Context, mem: TermId) -> String {
        let bases = self.base_memories(ctx, mem);
        match bases.iter().next() {
            Some(sym) => format!("absrd#{}", ctx.symbol_name(*sym)),
            None => "absrd#anon".to_owned(),
        }
    }

    fn abstract_write_name(&self, ctx: &Context, mem: TermId) -> String {
        let bases = self.base_memories(ctx, mem);
        match bases.iter().next() {
            Some(sym) => format!("abswr#{}", ctx.symbol_name(*sym)),
            None => "abswr#anon".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_eufm::{DagStats, Evaluator, Interpretation};

    fn memory_set(ctx: &mut Context, names: &[&str]) -> BTreeSet<Symbol> {
        names.iter().map(|n| ctx.symbol(n)).collect()
    }

    #[test]
    fn read_over_write_becomes_forwarding_ite() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("rf");
        let a1 = ctx.term_var("a1");
        let d1 = ctx.term_var("d1");
        let a2 = ctx.term_var("a2");
        let expected = ctx.term_var("expected");
        let written = ctx.write(mem, a1, d1);
        let read = ctx.read(written, a2);
        let root = ctx.eq(read, expected);
        let mems = memory_set(&mut ctx, &["rf"]);
        let result = eliminate_memories(&mut ctx, root, &mems, &BTreeSet::new());
        let stats = DagStats::of_formula(&ctx, result.formula);
        assert_eq!(stats.reads, 0);
        assert_eq!(stats.writes, 0);
        assert!(stats.term_ites >= 1, "forwarding ITE expected");
        assert!(stats.uf_apps >= 1, "initial-memory UF expected");
    }

    #[test]
    fn elimination_preserves_read_semantics() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("rf");
        let a1 = ctx.term_var("a1");
        let d1 = ctx.term_var("d1");
        let a2 = ctx.term_var("a2");
        let written = ctx.write(mem, a1, d1);
        let read_hit = ctx.read(written, a1);
        let read_any = ctx.read(written, a2);
        let hit_eq = ctx.eq(read_hit, d1);
        let mems = memory_set(&mut ctx, &["rf"]);
        let hit_result = eliminate_memories(&mut ctx, hit_eq, &mems, &BTreeSet::new());
        // read(write(m,a1,d1), a1) = d1 must be valid after elimination too.
        assert!(ctx.is_true(hit_result.formula));

        // For a possibly different address the formula is conditional; check it
        // evaluates consistently with the original under a concrete interpretation.
        let any_eq = ctx.eq(read_any, d1);
        let any_result = eliminate_memories(&mut ctx, any_eq, &mems, &BTreeSet::new());
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "a1", 4);
        interp.set_term_var(&mut ctx, "a2", 4);
        interp.set_term_var(&mut ctx, "d1", 9);
        let mut ev = Evaluator::new(&ctx, interp);
        assert_eq!(ev.eval_formula(any_eq), ev.eval_formula(any_result.formula));
    }

    #[test]
    fn memory_state_equation_gets_an_address_witness() {
        let mut ctx = Context::new();
        let m1 = ctx.term_var("rf_impl");
        let m2 = ctx.term_var("rf_spec");
        let a = ctx.term_var("a");
        let d = ctx.term_var("d");
        let w1 = ctx.write(m1, a, d);
        let w2 = ctx.write(m2, a, d);
        let root = ctx.eq(w1, w2);
        let mems = memory_set(&mut ctx, &["rf_impl", "rf_spec"]);
        let result = eliminate_memories(&mut ctx, root, &mems, &BTreeSet::new());
        assert_eq!(result.address_witnesses.len(), 1);
        let stats = DagStats::of_formula(&ctx, result.formula);
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.reads, 0);
    }

    #[test]
    fn same_memory_chain_compares_trivially_true() {
        let mut ctx = Context::new();
        let m = ctx.term_var("rf");
        let a = ctx.term_var("a");
        let d = ctx.term_var("d");
        let w = ctx.write(m, a, d);
        let root = ctx.eq(w, w);
        // eq(w, w) already folds to true inside the context.
        assert!(ctx.is_true(root));
    }

    #[test]
    fn abstract_memory_loses_forwarding() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("dmem");
        let a = ctx.term_var("a");
        let d = ctx.term_var("d");
        let written = ctx.write(mem, a, d);
        let read = ctx.read(written, a);
        let root = ctx.eq(read, d);
        let mems = memory_set(&mut ctx, &["dmem"]);
        let abstracted = memory_set(&mut ctx, &["dmem"]);
        let result = eliminate_memories(&mut ctx, root, &mems, &abstracted);
        // With the conservative abstraction the forwarding property no longer
        // holds, so the formula is *not* reduced to true.
        assert!(!ctx.is_true(result.formula));
        let stats = DagStats::of_formula(&ctx, result.formula);
        assert_eq!(stats.reads, 0);
        assert_eq!(stats.writes, 0);
        assert!(stats.uf_apps >= 2, "abstract read and write UFs expected");
    }

    #[test]
    fn non_memory_formulas_are_untouched() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("f", vec![a]);
        let root = ctx.eq(fa, b);
        let result = eliminate_memories(&mut ctx, root, &BTreeSet::new(), &BTreeSet::new());
        assert_eq!(result.formula, root);
        assert!(result.address_witnesses.is_empty());
    }
}
