//! Decomposition of the correctness criterion into *weak criteria* (Section 7).
//!
//! Instead of the monolithic `⋁_l ⋀_m f_{l,m}`, the criterion is split into a
//! set of smaller obligations that can be evaluated in parallel:
//!
//! 1. a *coverage* obligation `⋁_l w_l`, where the window function `w_l` is a
//!    designated conjunction of match formulas with index `l`, and
//! 2. for every `l` and every group of remaining elements,
//!    `w_l ⇒ ⋀_{m ∈ group} f_{l,m}`.
//!
//! Proving all obligations implies the monolithic criterion without ever
//! evaluating it.  Buggy designs are detected as soon as any obligation is
//! falsified (take the minimum time); correct designs need every obligation
//! (take the maximum time).

use crate::burch_dill::VerificationProblem;
use velv_eufm::{Context, FormulaId};

/// One obligation of the decomposed criterion.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// Human-readable name (used by the experiment tables).
    pub name: String,
    /// The formula that must be valid.
    pub formula: FormulaId,
}

/// Splits the correctness criterion into at most `max_obligations` weak
/// criteria (but always at least the coverage obligation plus one obligation
/// per instruction count `l`).
///
/// The window functions come from the implementation's control logic
/// ([`velv_hdl::Processor::completion_windows`]) when the model supplies them;
/// otherwise the fallback window `w_l = ⋀_m f_{l,m}` is used, which keeps the
/// decomposition sound (and complete) but concentrates the whole criterion in
/// the coverage obligation — i.e. it gives no speed-up.  All benchmark models
/// supply control windows.
///
/// The obligations are created inside `ctx`, which must be (a clone of) the
/// problem's context.
pub fn decompose(
    problem: &VerificationProblem,
    ctx: &mut Context,
    max_obligations: usize,
) -> Vec<Obligation> {
    let num_l = problem.parts.len();
    let num_elements = problem.num_arch_elements();

    let windows: Vec<FormulaId> = match &problem.windows {
        Some(ws) => ws.clone(),
        None => (0..num_l)
            .map(|l| ctx.and_many(problem.parts[l].iter().copied()))
            .collect(),
    };

    let mut obligations = Vec::new();
    let coverage = ctx.or_many(windows.iter().copied());
    obligations.push(Obligation {
        name: "coverage".to_owned(),
        formula: coverage,
    });

    // Group the elements so that the total number of obligations does not
    // exceed the requested maximum.
    let elements: Vec<usize> = (0..num_elements).collect();
    let budget_per_l = ((max_obligations.saturating_sub(1)).max(num_l) / num_l).max(1);
    let group_size = elements.len().div_ceil(budget_per_l);

    for (l, &window) in windows.iter().enumerate() {
        if ctx.is_false(window) {
            // This instruction count cannot occur; its obligations are trivial.
            continue;
        }
        for (g, group) in elements.chunks(group_size).enumerate() {
            let mut conj = ctx.true_id();
            for &m in group {
                conj = ctx.and(conj, problem.parts[l][m]);
            }
            let formula = ctx.implies(window, conj);
            if ctx.is_true(formula) {
                continue;
            }
            let names: Vec<&str> = group
                .iter()
                .map(|&m| problem.arch_elements[m].name.as_str())
                .collect();
            obligations.push(Obligation {
                name: format!("l={l} group{g} [{}]", names.join(",")),
                formula,
            });
        }
    }
    obligations
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_eufm::Evaluator;
    use velv_hdl::{Processor, StateElement, SymbolicState};

    struct Direct;

    impl Processor for Direct {
        fn name(&self) -> &str {
            "direct"
        }
        fn state_elements(&self) -> Vec<StateElement> {
            vec![
                StateElement::arch_term("pc"),
                StateElement::arch_memory("rf"),
                StateElement::arch_term("epc"),
            ]
        }
        fn fetch_width(&self) -> usize {
            1
        }
        fn flush_cycles(&self) -> usize {
            0
        }
        fn step(
            &self,
            ctx: &mut Context,
            state: &SymbolicState,
            fetch_enabled: FormulaId,
        ) -> SymbolicState {
            let pc = state.term("pc");
            let rf = state.term("rf");
            let epc = state.term("epc");
            let next_pc = ctx.uf("pc_plus_4", vec![pc]);
            let dest = ctx.uf("imem_dest", vec![pc]);
            let data = ctx.uf("imem_data", vec![pc]);
            let written = ctx.write(rf, dest, data);
            let mut next = SymbolicState::new();
            let pc_val = ctx.ite_term(fetch_enabled, next_pc, pc);
            let rf_val = ctx.ite_term(fetch_enabled, written, rf);
            next.set_term("pc", pc_val);
            next.set_term("rf", rf_val);
            next.set_term("epc", epc);
            next
        }
    }

    #[test]
    fn produces_coverage_plus_grouped_obligations() {
        let problem = VerificationProblem::build(&Direct, &Direct, &[]);
        let mut ctx = problem.ctx.clone();
        let obligations = decompose(&problem, &mut ctx, 8);
        assert!(
            obligations.len() >= 3,
            "coverage + at least one group per l"
        );
        assert!(obligations.len() <= 8 + 2);
        assert_eq!(obligations[0].name, "coverage");
        for o in &obligations {
            assert!(ctx.is_formula(o.formula));
        }
    }

    #[test]
    fn obligations_imply_the_monolithic_criterion_semantically() {
        // For the obligations to be a sound decomposition, under every
        // interpretation where all obligations hold the monolithic criterion
        // must hold as well.  Spot-check with random interpretations.
        let problem = VerificationProblem::build(&Direct, &Direct, &[]);
        let mut ctx = problem.ctx.clone();
        let obligations = decompose(&problem, &mut ctx, 6);
        for seed in 0..32u64 {
            let mut interp = velv_eufm::Interpretation::new();
            // Give the free variables seed-derived values.
            let names: Vec<String> = ctx.symbols().iter().map(|(_, n)| n.to_owned()).collect();
            for (i, name) in names.iter().enumerate() {
                let h = seed.wrapping_mul(31).wrapping_add(i as u64);
                interp.set_term_var(&mut ctx, name, h % 5);
                interp.set_prop_var(&mut ctx, name, h % 3 == 0);
            }
            let mut ev = Evaluator::new(&ctx, interp);
            let all_obligations_hold = obligations.iter().all(|o| ev.eval_formula(o.formula));
            if all_obligations_hold {
                assert!(
                    ev.eval_formula(problem.criterion),
                    "obligations held but the monolithic criterion failed (seed {seed})"
                );
            }
        }
    }
}
