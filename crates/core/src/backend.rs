//! Back-end selection and the parallel portfolio race.
//!
//! This module owns two things:
//!
//! 1. The classic decision-diagram back end: evaluating the encoded
//!    correctness formula with BDDs instead of a SAT checker (the role CUDD
//!    plays in the paper).
//! 2. The unified [`Backend`] abstraction — SAT preset, BDD build, or a
//!    [`Backend::Portfolio`] of either — and [`race_backends`], which runs
//!    portfolio members on threads against the *same* translation, returns
//!    the first decided [`Verdict`] and cancels the losers through the
//!    cooperative cancel token.  This is the paper's Table-1 matchup (SAT
//!    procedures vs. BDDs on identical formulas) executed concurrently.

use crate::counterexample::Counterexample;
use crate::flow::{Translation, Verdict};
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;
use velv_bdd::{Bdd, BddHalt, BddManager};
use velv_eufm::{Context, Formula, FormulaId, Symbol};
use velv_sat::presets::SolverKind;
use velv_sat::{race, Budget, SatResult, SolverStats};

/// Outcome of a BDD-based validity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BddOutcome {
    /// The formula is valid (under the assumed side constraints).
    Valid,
    /// The formula is falsifiable; one falsifying assignment of the primary
    /// Boolean variables is returned (variable names mapped to values).
    Falsifiable(Vec<(String, bool)>),
    /// The node limit was exceeded — the analogue of the memory-outs and
    /// time-outs the paper reports for the BDD runs on the larger designs.
    LimitExceeded,
    /// The shared cancel flag was raised (another portfolio engine won).
    Cancelled,
}

impl BddOutcome {
    /// Whether the outcome proves validity.
    pub fn is_valid(&self) -> bool {
        matches!(self, BddOutcome::Valid)
    }
}

/// Checks the validity of `assume ⇒ formula` by building its BDD.
///
/// Variables are ordered by first appearance in a depth-first traversal of the
/// formula (the depth-first ordering heuristic of Malik et al. used by the
/// paper's BED/BDD experiments).
pub fn check_validity_with_bdds(
    ctx: &Context,
    formula: FormulaId,
    assume: FormulaId,
    node_limit: usize,
) -> BddOutcome {
    check_validity_with_bdds_cancellable(ctx, formula, assume, node_limit, None)
}

/// [`check_validity_with_bdds`] with an optional cooperative cancel flag that
/// is polled from the BDD manager's node-allocation path.
pub fn check_validity_with_bdds_cancellable(
    ctx: &Context,
    formula: FormulaId,
    assume: FormulaId,
    node_limit: usize,
    cancel: Option<Arc<AtomicBool>>,
) -> BddOutcome {
    // Collect the propositional variables in depth-first order.
    let mut order: Vec<Symbol> = Vec::new();
    let mut seen_vars: HashMap<Symbol, u32> = HashMap::new();
    collect_vars(ctx, assume, &mut order, &mut seen_vars);
    collect_vars(ctx, formula, &mut order, &mut seen_vars);

    let mut manager = BddManager::new(order.len());
    manager.set_node_limit(node_limit);
    if let Some(flag) = cancel {
        manager.set_cancel_flag(flag);
    }
    let var_index: HashMap<Symbol, u32> = seen_vars;

    let halted = |halt: BddHalt| match halt {
        BddHalt::NodeLimit { .. } => BddOutcome::LimitExceeded,
        BddHalt::Cancelled => BddOutcome::Cancelled,
    };
    let mut memo: HashMap<FormulaId, Bdd> = HashMap::new();
    let assume_bdd = match build(ctx, &mut manager, assume, &var_index, &mut memo) {
        Ok(b) => b,
        Err(halt) => return halted(halt),
    };
    let formula_bdd = match build(ctx, &mut manager, formula, &var_index, &mut memo) {
        Ok(b) => b,
        Err(halt) => return halted(halt),
    };
    let implication = match manager.implies(assume_bdd, formula_bdd) {
        Ok(b) => b,
        Err(halt) => return halted(halt),
    };
    if manager.is_true(implication) {
        return BddOutcome::Valid;
    }
    // Extract a falsifying assignment: a satisfying assignment of ¬implication.
    let negated = match manager.not(implication) {
        Ok(b) => b,
        Err(halt) => return halted(halt),
    };
    let assignment = manager
        .sat_one(negated)
        .expect("a non-true implication has a falsifying assignment");
    let named: Vec<(String, bool)> = order
        .iter()
        .enumerate()
        .filter_map(|(i, sym)| assignment[i].map(|value| (ctx.symbol_name(*sym).to_owned(), value)))
        .collect();
    BddOutcome::Falsifiable(named)
}

fn collect_vars(
    ctx: &Context,
    root: FormulaId,
    order: &mut Vec<Symbol>,
    seen: &mut HashMap<Symbol, u32>,
) {
    let mut stack = vec![root];
    let mut visited = std::collections::HashSet::new();
    while let Some(f) = stack.pop() {
        if !visited.insert(f) {
            continue;
        }
        match ctx.formula(f) {
            Formula::True | Formula::False => {}
            Formula::Var(sym) => {
                if !seen.contains_key(sym) {
                    seen.insert(*sym, order.len() as u32);
                    order.push(*sym);
                }
            }
            Formula::Not(a) => stack.push(*a),
            Formula::And(a, b) | Formula::Or(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Formula::Ite(c, a, b) => {
                stack.push(*c);
                stack.push(*a);
                stack.push(*b);
            }
            Formula::Eq(_, _) | Formula::Up(_, _) => {
                panic!("the BDD back end expects an encoded (purely propositional) formula")
            }
        }
    }
}

fn build(
    ctx: &Context,
    manager: &mut BddManager,
    f: FormulaId,
    var_index: &HashMap<Symbol, u32>,
    memo: &mut HashMap<FormulaId, Bdd>,
) -> Result<Bdd, BddHalt> {
    if let Some(&b) = memo.get(&f) {
        return Ok(b);
    }
    let result = match ctx.formula(f).clone() {
        Formula::True => manager.true_bdd(),
        Formula::False => manager.false_bdd(),
        Formula::Var(sym) => manager.var(var_index[&sym])?,
        Formula::Not(a) => {
            let ba = build(ctx, manager, a, var_index, memo)?;
            manager.not(ba)?
        }
        Formula::And(a, b) => {
            let ba = build(ctx, manager, a, var_index, memo)?;
            let bb = build(ctx, manager, b, var_index, memo)?;
            manager.and(ba, bb)?
        }
        Formula::Or(a, b) => {
            let ba = build(ctx, manager, a, var_index, memo)?;
            let bb = build(ctx, manager, b, var_index, memo)?;
            manager.or(ba, bb)?
        }
        Formula::Ite(c, a, b) => {
            let bc = build(ctx, manager, c, var_index, memo)?;
            let ba = build(ctx, manager, a, var_index, memo)?;
            let bb = build(ctx, manager, b, var_index, memo)?;
            manager.ite(bc, ba, bb)?
        }
        Formula::Eq(_, _) | Formula::Up(_, _) => {
            panic!("the BDD back end expects an encoded (purely propositional) formula")
        }
    };
    memo.insert(f, result);
    Ok(result)
}

/// A back end the verification flow can check a [`Translation`] with.
///
/// The variants mirror the procedure classes of the paper's comparison: a SAT
/// preset working on the CNF, a BDD build of the encoded formula, or a
/// portfolio racing any mix of the two concurrently (nested portfolios are
/// flattened into one race).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One SAT procedure on the CNF translation.
    Sat(SolverKind),
    /// The BDD back end on the encoded formula.
    Bdd {
        /// Node limit standing in for the memory bound of the paper's runs.
        node_limit: usize,
    },
    /// A concurrent race between the nested back ends.
    Portfolio(Vec<Backend>),
}

impl Backend {
    /// Node limit used by [`Backend::default_portfolio`]'s BDD member.
    pub const DEFAULT_BDD_NODE_LIMIT: usize = 1 << 22;

    /// The paper's Table-1 matchup as a single racing back end: the three
    /// strongest CDCL presets against the BDD build.
    pub fn default_portfolio() -> Backend {
        Backend::Portfolio(vec![
            Backend::Sat(SolverKind::Chaff),
            Backend::Sat(SolverKind::BerkMin),
            Backend::Sat(SolverKind::Grasp),
            Backend::Bdd {
                node_limit: Self::DEFAULT_BDD_NODE_LIMIT,
            },
        ])
    }

    /// A short display name ("chaff", "bdd", "portfolio[chaff|bdd]").
    pub fn label(&self) -> String {
        match self {
            Backend::Sat(kind) => format!("{kind:?}").to_lowercase(),
            Backend::Bdd { .. } => "bdd".to_owned(),
            Backend::Portfolio(members) => {
                let names: Vec<String> = members.iter().map(Backend::label).collect();
                format!("portfolio[{}]", names.join("|"))
            }
        }
    }

    /// Flattens nested portfolios into the list of leaf back ends to race.
    pub fn leaves(&self) -> Vec<Backend> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<Backend>) {
        match self {
            Backend::Portfolio(members) => {
                for member in members {
                    member.collect_leaves(out);
                }
            }
            leaf => out.push(leaf.clone()),
        }
    }
}

/// How one back end fared in a [`race_backends`] run.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Display name of the back end.
    pub name: String,
    /// The verdict this back end reached (losers are typically
    /// `Verdict::Unknown("cancelled")`).
    pub verdict: Verdict,
    /// Solver statistics, for SAT members.
    pub stats: Option<SolverStats>,
    /// Wall-clock time from this member's start to its return.
    pub time: Duration,
    /// Whether this member decided the obligation first.
    pub winner: bool,
}

/// Aggregated outcome of one back-end race.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The verdict of the race: the winner's, or `Unknown` if nobody decided.
    pub verdict: Verdict,
    /// Name of the winning back end, if any member decided.
    pub winner: Option<String>,
    /// Per-member outcomes, in flattened member order.
    pub runs: Vec<BackendRun>,
    /// Wall-clock time of the whole race.
    pub wall_time: Duration,
}

/// Stack size for race member threads: the BDD build recurses over the
/// encoded formula, whose depth on the wide designs needs far more than the
/// default thread stack (the translation pipeline uses the same bound).
const RACE_STACK_SIZE: usize = 256 * 1024 * 1024;

pub(crate) fn sat_verdict(translation: &Translation, result: SatResult) -> Verdict {
    match result {
        SatResult::Unsat => Verdict::Correct,
        SatResult::Sat(model) => Verdict::Buggy(Counterexample::from_model(
            &translation.ctx,
            &translation.primary_vars,
            &model,
        )),
        // One spelling for cancellation across SAT and BDD members, so
        // `undecided_reason` and callers inspecting the runs see one value.
        other => Verdict::undecided(&other),
    }
}

pub(crate) fn bdd_verdict(translation: &Translation, outcome: BddOutcome) -> Verdict {
    match outcome {
        BddOutcome::Valid => Verdict::Correct,
        BddOutcome::Falsifiable(assignment) => {
            let mut ctx = translation.ctx.clone();
            let mut vars = std::collections::BTreeMap::new();
            let mut values = Vec::new();
            let sorted: std::collections::BTreeMap<String, bool> = assignment.into_iter().collect();
            for (i, (name, value)) in sorted.iter().enumerate() {
                let sym = ctx.symbol(name);
                vars.insert(sym, velv_sat::Var::new(i as u32));
                values.push(*value);
            }
            let model = velv_sat::Model::new(values);
            Verdict::Buggy(Counterexample::from_model(&ctx, &vars, &model))
        }
        BddOutcome::LimitExceeded => Verdict::Unknown("bdd node limit exceeded".to_owned()),
        BddOutcome::Cancelled => Verdict::Unknown("cancelled".to_owned()),
    }
}

fn is_decided(verdict: &Verdict) -> bool {
    verdict.is_correct() || verdict.is_buggy()
}

/// Why a race with no winner came up empty: prefer an informative member
/// reason (node limit, step limit, deadline) over the bare "cancelled" the
/// losers report — the same priority `PortfolioSolver::undecided_reason`
/// applies at the CNF level.
fn undecided_reason(runs: &[BackendRun]) -> String {
    runs.iter()
        .find_map(|run| match &run.verdict {
            Verdict::Unknown(message) if message != "cancelled" => Some(message.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "cancelled".to_owned())
}

/// Races the leaf back ends of `members` against one translated obligation.
///
/// Every member runs on its own thread against the same [`Translation`]; the
/// first member to reach a decided verdict wins, the shared cancel token is
/// raised, and the losers stop from their hot loops (CDCL conflict loop, DPLL
/// decision loop, local-search flip loop, BDD node allocation) without
/// finishing their search.  The caller's `budget` is honoured for the race as
/// a whole: its step limits and deadline are inherited by the SAT members and
/// an outer cancellation is forwarded into the race.
///
/// This collector shares the generic [`velv_sat::race`] helper with
/// [`velv_sat::portfolio::PortfolioSolver`] but intentionally does not
/// delegate to the portfolio solver itself: that race is over `SatResult`s
/// on one CNF, while this one is over [`Verdict`]s — the BDD member works on
/// the *encoded formula*, and its falsifying assignments name primary
/// variables that have no faithful image as a CNF model (the CNF carries
/// Tseitin auxiliaries a BDD run never assigns).  Squeezing the BDD build
/// behind the `Solver` trait would forfeit the counterexample; with the
/// generic helper it just returns its verdict directly.
pub fn race_backends(
    translation: &Translation,
    members: &[Backend],
    budget: Budget,
) -> PortfolioOutcome {
    // A lazily encoded translation is a *relaxation*: its SAT/falsifiable
    // answers are only trustworthy after the transitivity refinement loop
    // (`crate::refine`) has validated them, and the race's first-decided-wins
    // collector has no place to iterate.  Refuse rather than risk reporting a
    // spurious counterexample — lazy mode pairs with the SAT/incremental
    // checks (`Verifier::check`, `Verifier::check_incremental`).
    if translation.lazy_transitivity {
        return PortfolioOutcome {
            verdict: Verdict::Unknown(
                "lazy transitivity requires the refinement loop; \
                 use a SAT back end or Verifier::check_incremental"
                    .to_owned(),
            ),
            winner: None,
            runs: Vec::new(),
            wall_time: Duration::ZERO,
        };
    }
    let leaves: Vec<Backend> = members.iter().flat_map(Backend::leaves).collect();
    if leaves.is_empty() {
        return PortfolioOutcome {
            verdict: Verdict::Unknown("empty portfolio".to_owned()),
            winner: None,
            runs: Vec::new(),
            wall_time: Duration::ZERO,
        };
    }
    let thread_names: Vec<String> = leaves
        .iter()
        .map(|leaf| format!("velv-race-{}", leaf.label()))
        .collect();
    let outcome = race(
        &thread_names,
        budget,
        RACE_STACK_SIZE,
        |index, member_budget| match &leaves[index] {
            Backend::Sat(kind) => {
                let mut solver = kind.build();
                let result = solver.solve_with_budget(&translation.cnf, member_budget);
                (sat_verdict(translation, result), Some(solver.stats()))
            }
            Backend::Bdd { node_limit } => {
                let flag = member_budget
                    .cancel
                    .as_ref()
                    .expect("race members carry the shared cancel token")
                    .flag();
                let bdd_outcome = check_validity_with_bdds_cancellable(
                    &translation.ctx,
                    translation.encoded,
                    translation.side_constraints,
                    *node_limit,
                    Some(flag),
                );
                (bdd_verdict(translation, bdd_outcome), None)
            }
            Backend::Portfolio(_) => unreachable!("portfolios are flattened"),
        },
        |(verdict, _)| is_decided(verdict),
    );

    let runs: Vec<BackendRun> = outcome
        .runs
        .into_iter()
        .enumerate()
        .filter_map(|(index, run)| {
            run.map(|run| BackendRun {
                name: leaves[index].label(),
                verdict: run.value.0,
                stats: run.value.1,
                time: run.time,
                winner: run.winner,
            })
        })
        .collect();
    let verdict = match runs.iter().find(|r| r.winner) {
        Some(winner) => winner.verdict.clone(),
        None => Verdict::Unknown(
            outcome
                .parent_stop
                .map(|reason| format!("{reason:?}"))
                .unwrap_or_else(|| undecided_reason(&runs)),
        ),
    };
    PortfolioOutcome {
        verdict,
        winner: outcome.winner.map(|index| leaves[index].label()),
        runs,
        wall_time: outcome.wall_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_formula_is_recognised() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let np = ctx.not(p);
        let taut = ctx.or(p, np);
        let t = ctx.true_id();
        assert_eq!(
            check_validity_with_bdds(&ctx, taut, t, 1 << 20),
            BddOutcome::Valid
        );
    }

    #[test]
    fn falsifiable_formula_yields_assignment() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let formula = ctx.and(p, q);
        let t = ctx.true_id();
        match check_validity_with_bdds(&ctx, formula, t, 1 << 20) {
            BddOutcome::Falsifiable(assignment) => {
                assert!(!assignment.is_empty());
            }
            other => panic!("expected Falsifiable, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_are_taken_into_account() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let imp = ctx.implies(p, q);
        // q is not valid by itself, but it is valid assuming p ∧ (p ⇒ q).
        let assume = ctx.and(p, imp);
        assert_eq!(
            check_validity_with_bdds(&ctx, q, assume, 1 << 20),
            BddOutcome::Valid
        );
        let t = ctx.true_id();
        assert!(!check_validity_with_bdds(&ctx, q, t, 1 << 20).is_valid());
    }

    #[test]
    fn node_limit_surfaces_as_limit_exceeded() {
        let mut ctx = Context::new();
        // A formula whose BDD needs more than a handful of nodes: XOR chain.
        let mut acc = ctx.prop_var("x0");
        for i in 1..24 {
            let v = ctx.prop_var(&format!("x{i}"));
            acc = ctx.xor(acc, v);
        }
        let t = ctx.true_id();
        assert_eq!(
            check_validity_with_bdds(&ctx, acc, t, 8),
            BddOutcome::LimitExceeded
        );
    }
}
