//! Decision-diagram back end: evaluating the encoded correctness formula with
//! BDDs instead of a SAT checker (the role CUDD plays in the paper).

use std::collections::HashMap;
use velv_bdd::{Bdd, BddLimitExceeded, BddManager};
use velv_eufm::{Context, Formula, FormulaId, Symbol};

/// Outcome of a BDD-based validity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BddOutcome {
    /// The formula is valid (under the assumed side constraints).
    Valid,
    /// The formula is falsifiable; one falsifying assignment of the primary
    /// Boolean variables is returned (variable names mapped to values).
    Falsifiable(Vec<(String, bool)>),
    /// The node limit was exceeded — the analogue of the memory-outs and
    /// time-outs the paper reports for the BDD runs on the larger designs.
    LimitExceeded,
}

impl BddOutcome {
    /// Whether the outcome proves validity.
    pub fn is_valid(&self) -> bool {
        matches!(self, BddOutcome::Valid)
    }
}

/// Checks the validity of `assume ⇒ formula` by building its BDD.
///
/// Variables are ordered by first appearance in a depth-first traversal of the
/// formula (the depth-first ordering heuristic of Malik et al. used by the
/// paper's BED/BDD experiments).
pub fn check_validity_with_bdds(
    ctx: &Context,
    formula: FormulaId,
    assume: FormulaId,
    node_limit: usize,
) -> BddOutcome {
    // Collect the propositional variables in depth-first order.
    let mut order: Vec<Symbol> = Vec::new();
    let mut seen_vars: HashMap<Symbol, u32> = HashMap::new();
    collect_vars(ctx, assume, &mut order, &mut seen_vars);
    collect_vars(ctx, formula, &mut order, &mut seen_vars);

    let mut manager = BddManager::new(order.len());
    manager.set_node_limit(node_limit);
    let var_index: HashMap<Symbol, u32> = seen_vars;

    let mut memo: HashMap<FormulaId, Bdd> = HashMap::new();
    let assume_bdd = match build(ctx, &mut manager, assume, &var_index, &mut memo) {
        Ok(b) => b,
        Err(_) => return BddOutcome::LimitExceeded,
    };
    let formula_bdd = match build(ctx, &mut manager, formula, &var_index, &mut memo) {
        Ok(b) => b,
        Err(_) => return BddOutcome::LimitExceeded,
    };
    let implication = match manager.implies(assume_bdd, formula_bdd) {
        Ok(b) => b,
        Err(_) => return BddOutcome::LimitExceeded,
    };
    if manager.is_true(implication) {
        return BddOutcome::Valid;
    }
    // Extract a falsifying assignment: a satisfying assignment of ¬implication.
    let negated = match manager.not(implication) {
        Ok(b) => b,
        Err(_) => return BddOutcome::LimitExceeded,
    };
    let assignment = manager
        .sat_one(negated)
        .expect("a non-true implication has a falsifying assignment");
    let named: Vec<(String, bool)> = order
        .iter()
        .enumerate()
        .filter_map(|(i, sym)| {
            assignment[i].map(|value| (ctx.symbol_name(*sym).to_owned(), value))
        })
        .collect();
    BddOutcome::Falsifiable(named)
}

fn collect_vars(
    ctx: &Context,
    root: FormulaId,
    order: &mut Vec<Symbol>,
    seen: &mut HashMap<Symbol, u32>,
) {
    let mut stack = vec![root];
    let mut visited = std::collections::HashSet::new();
    while let Some(f) = stack.pop() {
        if !visited.insert(f) {
            continue;
        }
        match ctx.formula(f) {
            Formula::True | Formula::False => {}
            Formula::Var(sym) => {
                if !seen.contains_key(sym) {
                    seen.insert(*sym, order.len() as u32);
                    order.push(*sym);
                }
            }
            Formula::Not(a) => stack.push(*a),
            Formula::And(a, b) | Formula::Or(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Formula::Ite(c, a, b) => {
                stack.push(*c);
                stack.push(*a);
                stack.push(*b);
            }
            Formula::Eq(_, _) | Formula::Up(_, _) => {
                panic!("the BDD back end expects an encoded (purely propositional) formula")
            }
        }
    }
}

fn build(
    ctx: &Context,
    manager: &mut BddManager,
    f: FormulaId,
    var_index: &HashMap<Symbol, u32>,
    memo: &mut HashMap<FormulaId, Bdd>,
) -> Result<Bdd, BddLimitExceeded> {
    if let Some(&b) = memo.get(&f) {
        return Ok(b);
    }
    let result = match ctx.formula(f).clone() {
        Formula::True => manager.true_bdd(),
        Formula::False => manager.false_bdd(),
        Formula::Var(sym) => manager.var(var_index[&sym])?,
        Formula::Not(a) => {
            let ba = build(ctx, manager, a, var_index, memo)?;
            manager.not(ba)?
        }
        Formula::And(a, b) => {
            let ba = build(ctx, manager, a, var_index, memo)?;
            let bb = build(ctx, manager, b, var_index, memo)?;
            manager.and(ba, bb)?
        }
        Formula::Or(a, b) => {
            let ba = build(ctx, manager, a, var_index, memo)?;
            let bb = build(ctx, manager, b, var_index, memo)?;
            manager.or(ba, bb)?
        }
        Formula::Ite(c, a, b) => {
            let bc = build(ctx, manager, c, var_index, memo)?;
            let ba = build(ctx, manager, a, var_index, memo)?;
            let bb = build(ctx, manager, b, var_index, memo)?;
            manager.ite(bc, ba, bb)?
        }
        Formula::Eq(_, _) | Formula::Up(_, _) => {
            panic!("the BDD back end expects an encoded (purely propositional) formula")
        }
    };
    memo.insert(f, result);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_formula_is_recognised() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let np = ctx.not(p);
        let taut = ctx.or(p, np);
        let t = ctx.true_id();
        assert_eq!(check_validity_with_bdds(&ctx, taut, t, 1 << 20), BddOutcome::Valid);
    }

    #[test]
    fn falsifiable_formula_yields_assignment() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let formula = ctx.and(p, q);
        let t = ctx.true_id();
        match check_validity_with_bdds(&ctx, formula, t, 1 << 20) {
            BddOutcome::Falsifiable(assignment) => {
                assert!(!assignment.is_empty());
            }
            other => panic!("expected Falsifiable, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_are_taken_into_account() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let imp = ctx.implies(p, q);
        // q is not valid by itself, but it is valid assuming p ∧ (p ⇒ q).
        let assume = ctx.and(p, imp);
        assert_eq!(check_validity_with_bdds(&ctx, q, assume, 1 << 20), BddOutcome::Valid);
        let t = ctx.true_id();
        assert!(!check_validity_with_bdds(&ctx, q, t, 1 << 20).is_valid());
    }

    #[test]
    fn node_limit_surfaces_as_limit_exceeded() {
        let mut ctx = Context::new();
        // A formula whose BDD needs more than a handful of nodes: XOR chain.
        let mut acc = ctx.prop_var("x0");
        for i in 1..24 {
            let v = ctx.prop_var(&format!("x{i}"));
            acc = ctx.xor(acc, v);
        }
        let t = ctx.true_id();
        assert_eq!(check_validity_with_bdds(&ctx, acc, t, 8), BddOutcome::LimitExceeded);
    }
}
