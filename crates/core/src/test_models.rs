//! Small processor models used only by this crate's unit tests.
//!
//! `PipelinedToy` is a two-stage accumulator pipeline with a forwarding path
//! from its single pipeline latch to the operand of the next instruction, so
//! the Burch–Dill criterion it produces is genuinely non-trivial (memory
//! elimination, UF elimination and g-equation encoding all have work to do),
//! yet small enough that every back end decides it instantly.

use velv_eufm::{Context, FormulaId};
use velv_hdl::{Processor, StateElement, SymbolicState};

/// The kinds of bugs the toy implementation can be built with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ToyBug {
    /// The forwarding path ignores the latch valid bit (omitted gate input).
    ForwardingIgnoresValid,
    /// The write-back stores the destination register identifier instead of
    /// the result (incorrect input to a memory).
    WritesWrongData,
}

/// Two-stage pipelined implementation.
pub(crate) struct PipelinedToy {
    pub bug: Option<ToyBug>,
}

impl PipelinedToy {
    pub fn correct() -> Self {
        PipelinedToy { bug: None }
    }

    pub fn buggy(bug: ToyBug) -> Self {
        PipelinedToy { bug: Some(bug) }
    }
}

impl Processor for PipelinedToy {
    fn name(&self) -> &str {
        match self.bug {
            None => "toy-pipe",
            Some(_) => "toy-pipe-buggy",
        }
    }

    fn state_elements(&self) -> Vec<StateElement> {
        vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("rf"),
            StateElement::pipe_flag("latch.valid"),
            StateElement::pipe_term("latch.dest"),
            StateElement::pipe_term("latch.data"),
        ]
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        1
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let valid = state.formula("latch.valid");
        let dest = state.term("latch.dest");
        let data = state.term("latch.data");

        // Write-back of the instruction in the latch.
        let wb_data = match self.bug {
            Some(ToyBug::WritesWrongData) => dest,
            _ => data,
        };
        let written = ctx.write(rf, dest, wb_data);
        let rf_next = ctx.ite_term(valid, written, rf);

        // Fetch and execute a new instruction (reads the old register file and
        // forwards from the latch when the source matches the pending destination).
        let op = ctx.uf("imem_op", vec![pc]);
        let src = ctx.uf("imem_src", vec![pc]);
        let new_dest = ctx.uf("imem_dest", vec![pc]);
        let src_matches = ctx.eq(src, dest);
        let forward = match self.bug {
            Some(ToyBug::ForwardingIgnoresValid) => src_matches,
            _ => ctx.and(valid, src_matches),
        };
        let rf_read = ctx.read(rf, src);
        let operand = ctx.ite_term(forward, data, rf_read);
        let result = ctx.uf("alu", vec![op, operand]);

        let pc_plus = ctx.uf("pc_plus_4", vec![pc]);
        let pc_next = ctx.ite_term(fetch_enabled, pc_plus, pc);

        let mut next = SymbolicState::new();
        next.set_term("pc", pc_next);
        next.set_term("rf", rf_next);
        next.set_formula("latch.valid", fetch_enabled);
        let latched_dest = ctx.ite_term(fetch_enabled, new_dest, dest);
        let latched_data = ctx.ite_term(fetch_enabled, result, data);
        next.set_term("latch.dest", latched_dest);
        next.set_term("latch.data", latched_data);
        next
    }

    fn completion_windows(
        &self,
        ctx: &mut Context,
        _initial: &SymbolicState,
        _stepped: &SymbolicState,
    ) -> Option<Vec<FormulaId>> {
        // The toy never squashes: the fetched instruction always completes.
        Some(vec![ctx.false_id(), ctx.true_id()])
    }
}

/// The single-cycle specification of the toy ISA.
pub(crate) struct ToySpec;

impl Processor for ToySpec {
    fn name(&self) -> &str {
        "toy-spec"
    }

    fn state_elements(&self) -> Vec<StateElement> {
        vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("rf"),
        ]
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        0
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let op = ctx.uf("imem_op", vec![pc]);
        let src = ctx.uf("imem_src", vec![pc]);
        let dest = ctx.uf("imem_dest", vec![pc]);
        let operand = ctx.read(rf, src);
        let result = ctx.uf("alu", vec![op, operand]);
        let written = ctx.write(rf, dest, result);
        let pc_plus = ctx.uf("pc_plus_4", vec![pc]);

        let mut next = SymbolicState::new();
        let pc_next = ctx.ite_term(fetch_enabled, pc_plus, pc);
        let rf_next = ctx.ite_term(fetch_enabled, written, rf);
        next.set_term("pc", pc_next);
        next.set_term("rf", rf_next);
        next
    }
}
