//! Structural fingerprints of verification jobs.
//!
//! A verification *job* is a pure function of (a) the hash-consed EUFM
//! correctness criterion, (b) the set of initial-state variables treated as
//! memories, and (c) the translation options — the Bryant–German–Velev
//! reduction makes the propositional formula, and therefore the verdict, a
//! deterministic function of exactly those inputs.  [`problem_fingerprint`]
//! hashes them into one stable 128-bit key using the order-independent
//! structural hash of [`velv_eufm::fingerprint`], so two structurally
//! identical jobs collide even when they were built by different sessions,
//! in different construction orders, or from differently named design
//! constructors.
//!
//! `velv_serve` keys its verdict cache and in-flight deduplication on this
//! fingerprint (combined, via [`Fingerprint::combine`], with the back-end
//! choice and scheduling mode of the job).

use crate::burch_dill::VerificationProblem;
use crate::options::TranslationOptions;
use velv_eufm::{formula_fingerprint, Fingerprint};

/// Fingerprint of a built verification problem under the given translation
/// options (see the module docs).
pub fn problem_fingerprint(
    problem: &VerificationProblem,
    options: &TranslationOptions,
) -> Fingerprint {
    let formula = formula_fingerprint(&problem.ctx, problem.criterion);
    let mut memories: Vec<&str> = problem
        .memory_vars
        .iter()
        .map(|&sym| problem.ctx.symbol_name(sym))
        .collect();
    memories.sort_unstable();
    let salt = format!("mem=[{}];{}", memories.join(","), options.canonical_token());
    formula.combine(&salt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_models::{PipelinedToy, ToyBug, ToySpec};
    use crate::Verifier;

    #[test]
    fn rebuilt_problems_fingerprint_identically() {
        let verifier = Verifier::new(TranslationOptions::default());
        let options = TranslationOptions::default();
        let a = verifier.build_problem(&PipelinedToy::correct(), &ToySpec);
        let b = verifier.build_problem(&PipelinedToy::correct(), &ToySpec);
        assert_eq!(
            problem_fingerprint(&a, &options),
            problem_fingerprint(&b, &options)
        );
    }

    #[test]
    fn different_designs_and_options_fingerprint_differently() {
        let verifier = Verifier::new(TranslationOptions::default());
        let options = TranslationOptions::default();
        let good = verifier.build_problem(&PipelinedToy::correct(), &ToySpec);
        let bad = verifier.build_problem(&PipelinedToy::buggy(ToyBug::WritesWrongData), &ToySpec);
        assert_ne!(
            problem_fingerprint(&good, &options),
            problem_fingerprint(&bad, &options)
        );
        assert_ne!(
            problem_fingerprint(&good, &options),
            problem_fingerprint(&good, &options.clone().with_lazy_transitivity())
        );
        assert_ne!(
            problem_fingerprint(&good, &options),
            problem_fingerprint(&good, &options.clone().without_positive_equality())
        );
    }
}
