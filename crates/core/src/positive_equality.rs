//! Classification of term variables and function symbols into p-terms and
//! g-terms — the *positive equality* optimisation (Section 8 of the paper).

use std::collections::BTreeSet;
use velv_eufm::{Context, FormulaId, PolarityAnalysis, Symbol};

/// The p/g classification of term-producing symbols (term variables and
/// uninterpreted-function symbols).
///
/// A symbol is a **g-symbol** when one of its values can reach an equation
/// that occurs negated or inside an `ITE` control; all other symbols are
/// **p-symbols** and are interpreted *maximally diverse* during the encoding:
/// two syntactically distinct p-term variables are simply unequal.
#[derive(Clone, Debug, Default)]
pub struct Classification {
    g_symbols: BTreeSet<Symbol>,
    /// When positive equality is disabled every symbol is treated as general.
    all_general: bool,
}

impl Classification {
    /// Classification produced by a polarity analysis of `root`.
    pub fn from_formula(ctx: &Context, root: FormulaId) -> Self {
        let analysis = PolarityAnalysis::run(ctx, root);
        Classification {
            g_symbols: analysis.g_symbols,
            all_general: false,
        }
    }

    /// Classification for several roots (used by decomposed criteria).
    pub fn from_formulas<I: IntoIterator<Item = FormulaId>>(ctx: &Context, roots: I) -> Self {
        let analysis = PolarityAnalysis::run_many(ctx, roots);
        Classification {
            g_symbols: analysis.g_symbols,
            all_general: false,
        }
    }

    /// The classification used when positive equality is switched off: every
    /// term variable is a g-term (the original Goel et al. treatment).
    pub fn all_general() -> Self {
        Classification {
            g_symbols: BTreeSet::new(),
            all_general: true,
        }
    }

    /// Whether `sym` must be treated as a general (g) symbol.
    pub fn is_general(&self, sym: Symbol) -> bool {
        self.all_general || self.g_symbols.contains(&sym)
    }

    /// Marks a symbol as general (used for fresh variables that replace
    /// applications of g-classified uninterpreted functions).
    pub fn mark_general(&mut self, sym: Symbol) {
        self.g_symbols.insert(sym);
    }

    /// Number of explicitly recorded g-symbols.
    pub fn general_count(&self) -> usize {
        self.g_symbols.len()
    }

    /// Whether positive equality is effectively disabled.
    pub fn treats_everything_as_general(&self) -> bool {
        self.all_general
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_comparison_makes_register_ids_general() {
        let mut ctx = Context::new();
        // operand = ITE(src = dest, forwarded, read) ; result compared positively.
        let src = ctx.term_var("src");
        let dest = ctx.term_var("dest");
        let fwd = ctx.term_var("fwd");
        let reg = ctx.term_var("reg");
        let out = ctx.term_var("out");
        let cond = ctx.eq(src, dest);
        let operand = ctx.ite_term(cond, fwd, reg);
        let root = ctx.eq(operand, out);
        let classification = Classification::from_formula(&ctx, root);
        let sym = |ctx: &Context, n: &str| ctx.symbols().lookup(n).unwrap();
        assert!(classification.is_general(sym(&ctx, "src")));
        assert!(classification.is_general(sym(&ctx, "dest")));
        assert!(!classification.is_general(sym(&ctx, "fwd")));
        assert!(!classification.is_general(sym(&ctx, "out")));
    }

    #[test]
    fn all_general_ignores_structure() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let _root = ctx.eq(a, b);
        let classification = Classification::all_general();
        assert!(classification.treats_everything_as_general());
        assert!(classification.is_general(ctx.symbols().lookup("a").unwrap()));
    }

    #[test]
    fn mark_general_extends_the_set() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let root = ctx.eq(a, b);
        let mut classification = Classification::from_formula(&ctx, root);
        let a_sym = ctx.symbols().lookup("a").unwrap();
        assert!(!classification.is_general(a_sym));
        classification.mark_general(a_sym);
        assert!(classification.is_general(a_sym));
        assert_eq!(classification.general_count(), 1);
    }
}
