//! Construction of the Burch–Dill correctness criterion by flushing.
//!
//! The criterion compares two paths of the commutative diagram:
//!
//! * **Implementation side**: from an arbitrary symbolic pipeline state, run
//!   one normal clock cycle (fetching enabled) and then flush; project the
//!   result onto the architectural state.
//! * **Specification side**: flush the *same* initial state first, project onto
//!   the architectural state, and run the specification for `l = 0, 1, ..., k`
//!   steps, where `k` is the implementation's fetch width.
//!
//! The processor is correct when, for some `l`, every architectural state
//! element matches: `⋁_l ⋀_m f_{l,m}`.  The individual `f_{l,m}` formulas are
//! retained so that the decomposed ("weak criteria") evaluation of Section 7
//! can be generated as well.

use std::collections::BTreeSet;
use velv_eufm::{Context, FormulaId, Symbol};
use velv_hdl::processor::{flush, simulate};
use velv_hdl::{Processor, StateElement, StateKind, SymbolicState};

/// The correctness problem of one implementation/specification pair.
#[derive(Clone, Debug)]
pub struct VerificationProblem {
    /// Expression context owning the correctness formulas.
    pub ctx: Context,
    /// The monolithic correctness criterion (must be valid).
    pub criterion: FormulaId,
    /// `parts[l][m]`: state element `m` matches after `l` specification steps.
    pub parts: Vec<Vec<FormulaId>>,
    /// Optional control-level completion windows supplied by the
    /// implementation (see [`Processor::completion_windows`]); `windows[l]`
    /// holds when exactly `l` fetched instructions complete.
    pub windows: Option<Vec<FormulaId>>,
    /// The architectural state elements, in the order used by `parts`.
    pub arch_elements: Vec<StateElement>,
    /// Initial-state variables that denote memory arrays.
    pub memory_vars: BTreeSet<Symbol>,
    /// Name of the implementation design.
    pub name: String,
    /// Fetch width `k` of the implementation.
    pub fetch_width: usize,
}

impl VerificationProblem {
    /// Builds the correctness problem for an implementation/specification pair.
    ///
    /// `translation_boxes` lists architectural state elements whose values are
    /// wrapped in dummy unary UFs on both sides before comparison — the
    /// conservative approximation of Section 8.
    ///
    /// # Panics
    ///
    /// Panics if the two processors do not declare the same architectural
    /// state elements.
    pub fn build(
        implementation: &dyn Processor,
        specification: &dyn Processor,
        translation_boxes: &[String],
    ) -> Self {
        let mut ctx = Context::new();
        let arch_elements = implementation.arch_state();
        let spec_elements = specification.arch_state();
        assert_eq!(
            arch_elements, spec_elements,
            "implementation and specification must declare identical architectural state"
        );

        // Record which initial-state variables denote memories.
        let memory_vars: BTreeSet<Symbol> = implementation
            .state_elements()
            .iter()
            .filter(|e| e.kind == StateKind::Memory)
            .map(|e| ctx.symbol(&e.name))
            .collect();

        // Arbitrary symbolic initial implementation state.
        let initial = SymbolicState::initial(&mut ctx, &implementation.state_elements(), "");

        // Implementation side: one step, then flush, then project.
        let enabled = ctx.true_id();
        let stepped = implementation.step(&mut ctx, &initial, enabled);
        let windows = implementation.completion_windows(&mut ctx, &initial, &stepped);
        if let Some(w) = &windows {
            assert_eq!(
                w.len(),
                implementation.fetch_width() + 1,
                "completion windows must cover 0..=fetch_width instructions"
            );
        }
        let impl_flushed = flush(&mut ctx, implementation, &stepped);
        let impl_arch = impl_flushed.project(&arch_elements);

        // Specification side: flush first, project, then 0..k specification steps.
        let spec_start_full = flush(&mut ctx, implementation, &initial);
        let spec_start = spec_start_full.project(&arch_elements);
        let k = implementation.fetch_width();
        let mut spec_states = Vec::with_capacity(k + 1);
        spec_states.push(spec_start.clone());
        let mut current = spec_start;
        for _ in 0..k {
            current = simulate(&mut ctx, specification, &current, 1);
            spec_states.push(current.clone());
        }

        // Per-element, per-step match formulas.
        let impl_cmp =
            apply_translation_boxes(&mut ctx, &impl_arch, &arch_elements, translation_boxes);
        let mut parts = Vec::with_capacity(k + 1);
        for spec_state in &spec_states {
            let spec_cmp =
                apply_translation_boxes(&mut ctx, spec_state, &arch_elements, translation_boxes);
            let row: Vec<FormulaId> = arch_elements
                .iter()
                .map(|element| impl_cmp.element_equal(&mut ctx, &spec_cmp, element))
                .collect();
            parts.push(row);
        }

        // Monolithic criterion: ⋁_l ⋀_m parts[l][m].
        let mut criterion = ctx.false_id();
        for row in &parts {
            let all = ctx.and_many(row.iter().copied());
            criterion = ctx.or(criterion, all);
        }

        VerificationProblem {
            ctx,
            criterion,
            parts,
            windows,
            arch_elements,
            memory_vars,
            name: implementation.name().to_owned(),
            fetch_width: k,
        }
    }

    /// Number of architectural state elements.
    pub fn num_arch_elements(&self) -> usize {
        self.arch_elements.len()
    }
}

/// Wraps the designated elements of a state in dummy unary UFs ("translation
/// boxes"), which forces common-subexpression substitution on both sides of
/// the diagram.  Term and memory elements are wrapped; flags are left alone.
fn apply_translation_boxes(
    ctx: &mut Context,
    state: &SymbolicState,
    elements: &[StateElement],
    boxes: &[String],
) -> SymbolicState {
    if boxes.is_empty() {
        return state.clone();
    }
    let mut wrapped = state.clone();
    for element in elements {
        if !boxes.contains(&element.name) {
            continue;
        }
        if matches!(element.kind, StateKind::Term | StateKind::Memory) {
            let value = state.term(&element.name);
            let boxed = ctx.uf(&format!("tbox#{}", element.name), vec![value]);
            wrapped.set_term(&element.name, boxed);
        }
    }
    wrapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_models::{PipelinedToy, ToySpec};
    use velv_eufm::DagStats;

    #[test]
    fn pipelined_toy_builds_a_problem() {
        let implementation = PipelinedToy::correct();
        let spec = ToySpec;
        let problem = VerificationProblem::build(&implementation, &spec, &[]);
        assert_eq!(problem.fetch_width, 1);
        assert_eq!(problem.num_arch_elements(), 2);
        assert_eq!(problem.parts.len(), 2, "l = 0 and l = 1");
        assert_eq!(problem.parts[0].len(), 2);
        assert_eq!(problem.memory_vars.len(), 1);
        // The criterion is a non-trivial formula over the initial state.
        assert!(!problem.ctx.is_false(problem.criterion));
        assert!(!problem.ctx.is_true(problem.criterion));
        let stats = DagStats::of_formula(&problem.ctx, problem.criterion);
        assert!(stats.equations > 0);
        assert!(stats.uf_apps > 0);
    }

    #[test]
    fn translation_boxes_wrap_the_compared_values() {
        let implementation = PipelinedToy::correct();
        let spec = ToySpec;
        let plain = VerificationProblem::build(&implementation, &spec, &[]);
        let boxed =
            VerificationProblem::build(&implementation, &spec, &["pc".to_owned(), "rf".to_owned()]);
        let plain_stats = DagStats::of_formula(&plain.ctx, plain.criterion);
        let boxed_stats = DagStats::of_formula(&boxed.ctx, boxed.criterion);
        assert!(
            boxed_stats.uf_apps > plain_stats.uf_apps,
            "translation boxes add UF applications"
        );
    }

    #[test]
    #[should_panic(expected = "identical architectural state")]
    fn mismatched_architectural_state_is_rejected() {
        struct Other;
        impl Processor for Other {
            fn name(&self) -> &str {
                "other"
            }
            fn state_elements(&self) -> Vec<StateElement> {
                vec![StateElement::arch_term("pc")]
            }
            fn fetch_width(&self) -> usize {
                1
            }
            fn flush_cycles(&self) -> usize {
                0
            }
            fn step(
                &self,
                _ctx: &mut Context,
                state: &SymbolicState,
                _fetch_enabled: FormulaId,
            ) -> SymbolicState {
                state.clone()
            }
        }
        let _ = VerificationProblem::build(&ToySpec, &Other, &[]);
    }
}
