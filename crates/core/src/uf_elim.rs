//! Elimination of uninterpreted functions and predicates.
//!
//! Functional consistency is enforced either with the **nested-ITE** scheme
//! (each new application selects among the results of all previous
//! applications of the same function, guarded by argument equality) or, for
//! predicates only, with **Ackermann constraints**.  The paper's Section 5
//! explains why Ackermann constraints must not be used for functions whose
//! results participate only in positive equations: the constraints introduce
//! negated equations over the fresh result variables, destroying their
//! p-term status.  Predicates are safe because their results are Boolean.
//!
//! The optional **early reduction of p-equations** replaces argument-equality
//! comparisons whose two sides have disjoint supports of p-term variables with
//! the constant `false` already during elimination (structural variation "ER").

use crate::options::{TranslationOptions, UpElimination};
use crate::positive_equality::Classification;
use std::collections::HashMap;
use velv_eufm::support::value_leaves;
use velv_eufm::{Context, Formula, FormulaId, Symbol, Term, TermId};

/// Result of eliminating uninterpreted functions and predicates.
#[derive(Clone, Debug)]
pub struct UfElimination {
    /// The rewritten formula: only term variables, `ITE`s, equations,
    /// propositional variables and Boolean connectives remain.
    pub formula: FormulaId,
    /// Ackermann functional-consistency constraints (the constant `true` when
    /// the nested-ITE scheme is used for predicates as well).
    pub constraints: FormulaId,
    /// Fresh term variables introduced for UF applications, with the source
    /// function symbol.
    pub introduced_vars: Vec<(Symbol, Symbol)>,
}

/// Eliminates every uninterpreted function and predicate application reachable
/// from `root`.
///
/// The classification is consulted for the early-reduction optimisation and is
/// *extended*: fresh result variables of g-classified functions are marked as
/// g-symbols.
///
/// # Panics
///
/// Panics if the formula still contains `read`/`write` nodes (memory
/// elimination must run first).
pub fn eliminate_ufs(
    ctx: &mut Context,
    root: FormulaId,
    options: &TranslationOptions,
    classification: &mut Classification,
) -> UfElimination {
    let mut elim = Eliminator {
        options,
        classification,
        term_memo: HashMap::new(),
        formula_memo: HashMap::new(),
        uf_tables: HashMap::new(),
        up_tables: HashMap::new(),
        ackermann_apps: HashMap::new(),
        introduced_vars: Vec::new(),
    };
    let formula = elim.rewrite_formula(ctx, root);
    let constraints = elim.ackermann_constraints(ctx);
    UfElimination {
        formula,
        constraints,
        introduced_vars: elim.introduced_vars,
    }
}

struct Eliminator<'a> {
    options: &'a TranslationOptions,
    classification: &'a mut Classification,
    term_memo: HashMap<TermId, TermId>,
    formula_memo: HashMap<FormulaId, FormulaId>,
    /// Per UF symbol: previously seen (rewritten argument vector, result variable).
    uf_tables: HashMap<Symbol, Vec<(Vec<TermId>, TermId)>>,
    /// Per UP symbol (nested-ITE scheme): (argument vector, result variable).
    up_tables: HashMap<Symbol, Vec<(Vec<TermId>, FormulaId)>>,
    /// Per UP symbol (Ackermann scheme): (argument vector, fresh propositional variable).
    ackermann_apps: HashMap<Symbol, Vec<(Vec<TermId>, FormulaId)>>,
    introduced_vars: Vec<(Symbol, Symbol)>,
}

impl Eliminator<'_> {
    fn rewrite_formula(&mut self, ctx: &mut Context, f: FormulaId) -> FormulaId {
        if let Some(&r) = self.formula_memo.get(&f) {
            return r;
        }
        let node = ctx.formula(f).clone();
        let result = match node {
            Formula::True | Formula::False | Formula::Var(_) => f,
            Formula::Not(a) => {
                let ra = self.rewrite_formula(ctx, a);
                ctx.not(ra)
            }
            Formula::And(a, b) => {
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.and(ra, rb)
            }
            Formula::Or(a, b) => {
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.or(ra, rb)
            }
            Formula::Ite(c, a, b) => {
                let rc = self.rewrite_formula(ctx, c);
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.ite_formula(rc, ra, rb)
            }
            Formula::Eq(a, b) => {
                let ra = self.rewrite_term(ctx, a);
                let rb = self.rewrite_term(ctx, b);
                self.build_equation(ctx, ra, rb)
            }
            Formula::Up(sym, args) => {
                let new_args: Vec<TermId> =
                    args.iter().map(|a| self.rewrite_term(ctx, *a)).collect();
                self.eliminate_up(ctx, sym, new_args)
            }
        };
        self.formula_memo.insert(f, result);
        result
    }

    fn rewrite_term(&mut self, ctx: &mut Context, t: TermId) -> TermId {
        if let Some(&r) = self.term_memo.get(&t) {
            return r;
        }
        let node = ctx.term(t).clone();
        let result = match node {
            Term::Var(_) => t,
            Term::Ite(c, a, b) => {
                let rc = self.rewrite_formula(ctx, c);
                let ra = self.rewrite_term(ctx, a);
                let rb = self.rewrite_term(ctx, b);
                ctx.ite_term(rc, ra, rb)
            }
            Term::Uf(sym, args) => {
                let new_args: Vec<TermId> =
                    args.iter().map(|a| self.rewrite_term(ctx, *a)).collect();
                self.eliminate_uf(ctx, sym, new_args)
            }
            Term::Read(_, _) | Term::Write(_, _, _) => {
                panic!("memory operations must be eliminated before UF elimination")
            }
        };
        self.term_memo.insert(t, result);
        result
    }

    /// Builds an equation, applying early reduction when enabled.
    fn build_equation(&mut self, ctx: &mut Context, a: TermId, b: TermId) -> FormulaId {
        if self.options.early_reduction && self.provably_distinct(ctx, a, b) {
            return ctx.false_id();
        }
        ctx.eq(a, b)
    }

    /// Early reduction check: both sides consist only of p-term variables and
    /// their supports are disjoint, so under a maximally diverse
    /// interpretation the terms cannot be equal.
    fn provably_distinct(&self, ctx: &Context, a: TermId, b: TermId) -> bool {
        let la = value_leaves(ctx, a);
        let lb = value_leaves(ctx, b);
        let all_p = |leaves: &std::collections::BTreeSet<Symbol>| {
            leaves.iter().all(|s| !self.classification.is_general(*s))
        };
        all_p(&la) && all_p(&lb) && la.is_disjoint(&lb)
    }

    fn eliminate_uf(&mut self, ctx: &mut Context, sym: Symbol, args: Vec<TermId>) -> TermId {
        let name = ctx.symbol_name(sym).to_owned();
        let is_general = self.classification.is_general(sym);
        // Fresh result variable for this (new) application.
        let fresh = ctx.fresh_term_var(&format!("{name}!"));
        let fresh_sym = match ctx.term(fresh) {
            Term::Var(s) => *s,
            _ => unreachable!("fresh_term_var returns a variable"),
        };
        if is_general {
            self.classification.mark_general(fresh_sym);
        }
        self.introduced_vars.push((sym, fresh_sym));

        let previous = self.uf_tables.entry(sym).or_default().clone();
        // Build the nested ITE from the innermost (this application's fresh
        // variable) outwards, so the earliest previous application is tested first.
        let mut acc = fresh;
        for (prev_args, prev_var) in previous.iter().rev() {
            let cond = self.args_equal(ctx, &args, prev_args);
            acc = ctx.ite_term(cond, *prev_var, acc);
        }
        self.uf_tables
            .get_mut(&sym)
            .expect("entry created above")
            .push((args, fresh));
        acc
    }

    fn eliminate_up(&mut self, ctx: &mut Context, sym: Symbol, args: Vec<TermId>) -> FormulaId {
        let name = ctx.symbol_name(sym).to_owned();
        match self.options.up_elimination {
            UpElimination::NestedIte => {
                let fresh = ctx.fresh_prop_var(&format!("{name}!"));
                let previous = self.up_tables.entry(sym).or_default().clone();
                let mut acc = fresh;
                for (prev_args, prev_var) in previous.iter().rev() {
                    let cond = self.args_equal(ctx, &args, prev_args);
                    acc = ctx.ite_formula(cond, *prev_var, acc);
                }
                self.up_tables
                    .get_mut(&sym)
                    .expect("entry created above")
                    .push((args, fresh));
                acc
            }
            UpElimination::Ackermann => {
                let fresh = ctx.fresh_prop_var(&format!("{name}!"));
                self.ackermann_apps
                    .entry(sym)
                    .or_default()
                    .push((args, fresh));
                fresh
            }
        }
    }

    fn args_equal(&mut self, ctx: &mut Context, a: &[TermId], b: &[TermId]) -> FormulaId {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = ctx.true_id();
        for (&x, &y) in a.iter().zip(b.iter()) {
            let eq = self.build_equation(ctx, x, y);
            acc = ctx.and(acc, eq);
            if ctx.is_false(acc) {
                break;
            }
        }
        acc
    }

    /// Pairwise functional-consistency constraints for the Ackermann-eliminated
    /// predicates.
    fn ackermann_constraints(&mut self, ctx: &mut Context) -> FormulaId {
        type AckermannTable = Vec<(Symbol, Vec<(Vec<TermId>, FormulaId)>)>;
        let tables: AckermannTable = self
            .ackermann_apps
            .iter()
            .map(|(s, apps)| (*s, apps.clone()))
            .collect();
        let mut acc = ctx.true_id();
        for (_sym, apps) in tables {
            for i in 0..apps.len() {
                for j in (i + 1)..apps.len() {
                    let args_eq = self.args_equal(ctx, &apps[i].0, &apps[j].0);
                    let results_eq = ctx.iff(apps[i].1, apps[j].1);
                    let constraint = ctx.implies(args_eq, results_eq);
                    acc = ctx.and(acc, constraint);
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_eufm::DagStats;

    fn base_options() -> TranslationOptions {
        TranslationOptions::default()
    }

    /// `a = b ⇒ f(a) = f(b)` must become valid-looking structure: after
    /// elimination the second application reduces to an ITE selecting the
    /// first result when the arguments are equal.
    #[test]
    fn functional_consistency_via_nested_ite() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let ante = ctx.eq(a, b);
        let cons = ctx.eq(fa, fb);
        let root = ctx.implies(ante, cons);
        let mut classification = Classification::from_formula(&ctx, root);
        let result = eliminate_ufs(&mut ctx, root, &base_options(), &mut classification);
        let stats = DagStats::of_formula(&ctx, result.formula);
        assert_eq!(stats.uf_apps, 0, "no UF applications remain");
        assert!(
            stats.term_ites >= 1,
            "nested ITE expected for the second application"
        );
        assert!(ctx.is_true(result.constraints));
        assert_eq!(result.introduced_vars.len(), 2);
    }

    #[test]
    fn up_elimination_nested_ite_and_ackermann() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let pa = ctx.up("P", vec![a]);
        let pb = ctx.up("P", vec![b]);
        let root = ctx.and(pa, pb);

        let mut classification = Classification::from_formula(&ctx, root);
        let nested = eliminate_ufs(&mut ctx, root, &base_options(), &mut classification);
        let stats = DagStats::of_formula(&ctx, nested.formula);
        assert_eq!(stats.up_apps, 0);
        assert!(ctx.is_true(nested.constraints));

        let mut ctx2 = Context::new();
        let a = ctx2.term_var("a");
        let b = ctx2.term_var("b");
        let pa = ctx2.up("P", vec![a]);
        let pb = ctx2.up("P", vec![b]);
        let root = ctx2.and(pa, pb);
        let mut classification = Classification::from_formula(&ctx2, root);
        let options = base_options().with_ackermann_ups();
        let ackermann = eliminate_ufs(&mut ctx2, root, &options, &mut classification);
        let stats = DagStats::of_formula(&ctx2, ackermann.formula);
        assert_eq!(stats.up_apps, 0);
        assert!(
            !ctx2.is_true(ackermann.constraints),
            "two applications of P produce one consistency constraint"
        );
    }

    #[test]
    fn fresh_vars_of_general_functions_are_general() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        // f's results are compared under a negation: f is a g-function.
        let eq = ctx.eq(fa, fb);
        let root = ctx.not(eq);
        let mut classification = Classification::from_formula(&ctx, root);
        let result = eliminate_ufs(&mut ctx, root, &base_options(), &mut classification);
        assert_eq!(result.introduced_vars.len(), 2);
        for (_uf, fresh) in &result.introduced_vars {
            assert!(classification.is_general(*fresh));
        }
    }

    #[test]
    fn fresh_vars_of_positive_functions_stay_positive() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("alu", vec![a]);
        let fb = ctx.uf("alu", vec![b]);
        let root = ctx.eq(fa, fb);
        let mut classification = Classification::from_formula(&ctx, root);
        let result = eliminate_ufs(&mut ctx, root, &base_options(), &mut classification);
        for (_uf, fresh) in &result.introduced_vars {
            assert!(!classification.is_general(*fresh));
        }
    }

    #[test]
    fn early_reduction_replaces_disjoint_p_equations_with_false() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        // Two applications of f over unrelated p-term arguments.
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let root = ctx.eq(fa, fb);
        let mut classification = Classification::from_formula(&ctx, root);
        let options = base_options().with_early_reduction();
        let result = eliminate_ufs(&mut ctx, root, &options, &mut classification);
        // With early reduction, the argument comparison a = b is reduced to
        // false, so the second application's ITE collapses to its fresh
        // variable and the top-level equation compares two distinct fresh
        // p-variables.
        let stats = DagStats::of_formula(&ctx, result.formula);
        assert_eq!(stats.term_ites, 0, "argument comparison collapsed");
    }

    #[test]
    fn shared_applications_reuse_the_same_variable() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let fa1 = ctx.uf("f", vec![a]);
        let fa2 = ctx.uf("f", vec![a]);
        assert_eq!(fa1, fa2, "hash consing already shares the node");
        let b = ctx.term_var("b");
        let eq = ctx.eq(fa1, b);
        let eq2 = ctx.eq(fa2, b);
        let root = ctx.and(eq, eq2);
        let mut classification = Classification::from_formula(&ctx, root);
        let result = eliminate_ufs(&mut ctx, root, &base_options(), &mut classification);
        assert_eq!(
            result.introduced_vars.len(),
            1,
            "one application, one fresh variable"
        );
    }

    #[test]
    #[should_panic(expected = "memory operations")]
    fn panics_on_remaining_memory_ops() {
        let mut ctx = Context::new();
        let m = ctx.term_var("m");
        let a = ctx.term_var("a");
        let r = ctx.read(m, a);
        let root = ctx.eq(r, a);
        let mut classification = Classification::from_formula(&ctx, root);
        let _ = eliminate_ufs(&mut ctx, root, &base_options(), &mut classification);
    }
}
