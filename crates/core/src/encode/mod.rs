//! Encoding of term-level equations into propositional logic.
//!
//! After memory and UF/UP elimination the correctness formula contains only
//! term variables, term-level `ITE`s, equations, propositional variables and
//! Boolean connectives.  This module replaces every equation by a
//! propositional formula:
//!
//! * equality is pushed through the `ITE` structure of both sides until pairs
//!   of term variables are compared,
//! * a pair involving a **p-term** variable is `true` when the two variables
//!   are identical and `false` otherwise (maximally diverse interpretation),
//! * a pair of distinct **g-term** variables is encoded with either a fresh
//!   *e*ij Boolean variable ([`eij`]) plus sparse transitivity constraints
//!   ([`transitivity`]) or with the small-domain encoding ([`small_domain`]).

pub mod eij;
pub mod small_domain;
pub mod transitivity;

use crate::options::{GEncoding, TransitivityMode};
use crate::positive_equality::Classification;
use std::collections::{BTreeSet, HashMap};
use velv_eufm::{Context, Formula, FormulaId, Symbol, Term, TermId};

/// The propositional form of a correctness formula.
#[derive(Clone, Debug)]
pub struct EncodedFormula {
    /// The encoded formula (must be valid for the processor to be correct).
    pub formula: FormulaId,
    /// Side constraints that may be *assumed* when checking validity
    /// (transitivity constraints for the eager *e*ij encoding; `true`
    /// otherwise — in particular for the lazy mode, whose transitivity is
    /// enforced by refinement instead).
    pub side_constraints: FormulaId,
    /// The *e*ij equality variables, one per encoded pair of g-term
    /// variables `(x, y, variable)` — the input of the lazy transitivity
    /// refinement loop.  Empty for the small-domain encoding.
    pub eij_pairs: Vec<(Symbol, Symbol, FormulaId)>,
    /// Number of fresh *e*ij variables introduced.
    pub num_eij_vars: usize,
    /// Number of fresh small-domain indexing variables introduced.
    pub num_indexing_vars: usize,
    /// Number of distinct g-term variable pairs compared.
    pub num_g_pairs: usize,
    /// Number of transitivity triangles constrained.
    pub num_triangles: usize,
}

/// Encodes `root` into propositional logic.
pub fn encode(
    ctx: &mut Context,
    root: FormulaId,
    classification: &Classification,
    encoding: GEncoding,
    transitivity: TransitivityMode,
) -> EncodedFormula {
    // Pass 1: discover every pair of distinct g-term variables that some
    // equation may compare.
    let pairs = collect_g_pairs(ctx, root, classification);

    // Pass 2: build the pair encoder.
    let mut pair_encoder: Box<dyn PairEncoder> = match (encoding, transitivity) {
        (GEncoding::Eij, TransitivityMode::Eager) => Box::new(eij::EijEncoder::new(ctx, &pairs)),
        (GEncoding::Eij, TransitivityMode::Lazy) => {
            Box::new(eij::EijEncoder::new_lazy(ctx, &pairs))
        }
        (GEncoding::SmallDomain, _) => Box::new(small_domain::SmallDomainEncoder::new(ctx, &pairs)),
    };

    // Pass 3: rewrite the formula, replacing equations.
    let mut rewriter = Rewriter {
        classification,
        pair_encoder: pair_encoder.as_mut(),
        formula_memo: HashMap::new(),
        eq_memo: HashMap::new(),
    };
    let formula = rewriter.rewrite_formula(ctx, root);

    let side_constraints = pair_encoder.side_constraints(ctx);
    let stats = pair_encoder.stats();
    EncodedFormula {
        formula,
        side_constraints,
        eij_pairs: pair_encoder.encoded_pairs(),
        num_eij_vars: stats.eij_vars,
        num_indexing_vars: stats.indexing_vars,
        num_g_pairs: pairs.len(),
        num_triangles: stats.triangles,
    }
}

/// Statistics reported by a pair encoder.
#[derive(Clone, Copy, Debug, Default)]
pub struct PairEncoderStats {
    /// Fresh *e*ij variables.
    pub eij_vars: usize,
    /// Fresh indexing variables.
    pub indexing_vars: usize,
    /// Transitivity triangles constrained.
    pub triangles: usize,
}

/// Strategy interface for encoding a comparison of two distinct g-term variables.
pub trait PairEncoder {
    /// The propositional formula for `x = y` (both g-term variables, `x != y`).
    fn encode_pair(&mut self, ctx: &mut Context, x: Symbol, y: Symbol) -> FormulaId;
    /// Constraints that may be assumed when checking validity.
    fn side_constraints(&mut self, ctx: &mut Context) -> FormulaId;
    /// Encoder statistics.
    fn stats(&self) -> PairEncoderStats;
    /// The per-pair equality variables, for encoders that have them (the
    /// *e*ij encoder); empty otherwise.
    fn encoded_pairs(&self) -> Vec<(Symbol, Symbol, FormulaId)> {
        Vec::new()
    }
}

/// Canonically ordered pair of symbols.
pub(crate) fn ordered(x: Symbol, y: Symbol) -> (Symbol, Symbol) {
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

/// Collects every pair of distinct g-term variables that equation evaluation
/// can compare, by pushing each equation through the ITE structure of its sides.
fn collect_g_pairs(
    ctx: &Context,
    root: FormulaId,
    classification: &Classification,
) -> BTreeSet<(Symbol, Symbol)> {
    let mut pairs = BTreeSet::new();
    // Find all equation nodes (including those inside term-level ITE conditions).
    let mut seen_f: BTreeSet<FormulaId> = BTreeSet::new();
    let mut seen_t: BTreeSet<TermId> = BTreeSet::new();
    let mut fstack = vec![root];
    let mut tstack: Vec<TermId> = Vec::new();
    let mut equations: Vec<(TermId, TermId)> = Vec::new();
    while !fstack.is_empty() || !tstack.is_empty() {
        while let Some(f) = fstack.pop() {
            if !seen_f.insert(f) {
                continue;
            }
            match ctx.formula(f) {
                Formula::True | Formula::False | Formula::Var(_) => {}
                Formula::Up(_, args) => tstack.extend(args.iter().copied()),
                Formula::Not(a) => fstack.push(*a),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    fstack.push(*a);
                    fstack.push(*b);
                }
                Formula::Ite(c, a, b) => {
                    fstack.push(*c);
                    fstack.push(*a);
                    fstack.push(*b);
                }
                Formula::Eq(a, b) => {
                    equations.push((*a, *b));
                    tstack.push(*a);
                    tstack.push(*b);
                }
            }
        }
        while let Some(t) = tstack.pop() {
            if !seen_t.insert(t) {
                continue;
            }
            match ctx.term(t) {
                Term::Var(_) => {}
                Term::Uf(_, args) => tstack.extend(args.iter().copied()),
                Term::Ite(c, a, b) => {
                    fstack.push(*c);
                    tstack.push(*a);
                    tstack.push(*b);
                }
                Term::Read(m, a) => {
                    tstack.push(*m);
                    tstack.push(*a);
                }
                Term::Write(m, a, d) => {
                    tstack.push(*m);
                    tstack.push(*a);
                    tstack.push(*d);
                }
            }
        }
    }
    // For each equation, enumerate the leaf-variable pairs it can compare.
    let mut pair_seen: BTreeSet<(TermId, TermId)> = BTreeSet::new();
    for (a, b) in equations {
        collect_pairs_rec(ctx, classification, a, b, &mut pair_seen, &mut pairs);
    }
    pairs
}

fn collect_pairs_rec(
    ctx: &Context,
    classification: &Classification,
    a: TermId,
    b: TermId,
    seen: &mut BTreeSet<(TermId, TermId)>,
    pairs: &mut BTreeSet<(Symbol, Symbol)>,
) {
    if a == b {
        return;
    }
    let key = if a <= b { (a, b) } else { (b, a) };
    if !seen.insert(key) {
        return;
    }
    match (ctx.term(a).clone(), ctx.term(b).clone()) {
        (Term::Ite(_, t, e), _) => {
            collect_pairs_rec(ctx, classification, t, b, seen, pairs);
            collect_pairs_rec(ctx, classification, e, b, seen, pairs);
        }
        (_, Term::Ite(_, t, e)) => {
            collect_pairs_rec(ctx, classification, a, t, seen, pairs);
            collect_pairs_rec(ctx, classification, a, e, seen, pairs);
        }
        (Term::Var(x), Term::Var(y))
            if x != y && classification.is_general(x) && classification.is_general(y) =>
        {
            pairs.insert(ordered(x, y));
        }
        // Non-variable leaves (UF applications, memory operations) should have
        // been eliminated; compare their syntactic identity conservatively by
        // ignoring them here — the rewriter treats them as unequal leaves.
        _ => {}
    }
}

struct Rewriter<'a> {
    classification: &'a Classification,
    pair_encoder: &'a mut dyn PairEncoder,
    formula_memo: HashMap<FormulaId, FormulaId>,
    eq_memo: HashMap<(TermId, TermId), FormulaId>,
}

impl Rewriter<'_> {
    fn rewrite_formula(&mut self, ctx: &mut Context, f: FormulaId) -> FormulaId {
        if let Some(&r) = self.formula_memo.get(&f) {
            return r;
        }
        let node = ctx.formula(f).clone();
        let result = match node {
            Formula::True | Formula::False | Formula::Var(_) => f,
            Formula::Up(_, _) => {
                panic!("uninterpreted predicates must be eliminated before encoding")
            }
            Formula::Not(a) => {
                let ra = self.rewrite_formula(ctx, a);
                ctx.not(ra)
            }
            Formula::And(a, b) => {
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.and(ra, rb)
            }
            Formula::Or(a, b) => {
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.or(ra, rb)
            }
            Formula::Ite(c, a, b) => {
                let rc = self.rewrite_formula(ctx, c);
                let ra = self.rewrite_formula(ctx, a);
                let rb = self.rewrite_formula(ctx, b);
                ctx.ite_formula(rc, ra, rb)
            }
            Formula::Eq(a, b) => self.encode_eq(ctx, a, b),
        };
        self.formula_memo.insert(f, result);
        result
    }

    fn encode_eq(&mut self, ctx: &mut Context, a: TermId, b: TermId) -> FormulaId {
        if a == b {
            return ctx.true_id();
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.eq_memo.get(&key) {
            return r;
        }
        let result = match (ctx.term(a).clone(), ctx.term(b).clone()) {
            (Term::Ite(c, t, e), _) => {
                let rc = self.rewrite_formula(ctx, c);
                let rt = self.encode_eq(ctx, t, b);
                let re = self.encode_eq(ctx, e, b);
                ctx.ite_formula(rc, rt, re)
            }
            (_, Term::Ite(c, t, e)) => {
                let rc = self.rewrite_formula(ctx, c);
                let rt = self.encode_eq(ctx, a, t);
                let re = self.encode_eq(ctx, a, e);
                ctx.ite_formula(rc, rt, re)
            }
            (Term::Var(x), Term::Var(y)) => {
                if x == y {
                    ctx.true_id()
                } else if !self.classification.is_general(x) || !self.classification.is_general(y) {
                    // At least one p-term variable: maximally diverse, hence unequal.
                    ctx.false_id()
                } else {
                    self.pair_encoder.encode_pair(ctx, x, y)
                }
            }
            // Any other leaf combination (should not occur after elimination):
            // distinct non-variable leaves are conservatively unequal.
            _ => ctx.false_id(),
        };
        self.eq_memo.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_eufm::Support;

    fn g_classification(ctx: &mut Context, names: &[&str]) -> Classification {
        // Build a dummy formula that makes the listed variables general.
        let mut root = ctx.true_id();
        for name in names {
            let v = ctx.term_var(name);
            let w = ctx.term_var(&format!("{name}_other"));
            let eq = ctx.eq(v, w);
            let neq = ctx.not(eq);
            root = ctx.and(root, neq);
        }
        Classification::from_formula(ctx, root)
    }

    #[test]
    fn p_term_comparison_encodes_to_false() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let root = ctx.eq(a, b);
        let classification = Classification::from_formula(&ctx, root);
        let encoded = encode(
            &mut ctx,
            root,
            &classification,
            GEncoding::Eij,
            TransitivityMode::Eager,
        );
        assert!(ctx.is_false(encoded.formula));
        assert_eq!(encoded.num_eij_vars, 0);
    }

    #[test]
    fn g_term_comparison_gets_a_fresh_variable() {
        let mut ctx = Context::new();
        let classification = g_classification(&mut ctx, &["x", "y"]);
        let x = ctx.term_var("x");
        let y = ctx.term_var("y");
        let root = ctx.eq(x, y);
        let encoded = encode(
            &mut ctx,
            root,
            &classification,
            GEncoding::Eij,
            TransitivityMode::Eager,
        );
        assert!(!ctx.is_false(encoded.formula));
        assert!(!ctx.is_true(encoded.formula));
        assert_eq!(encoded.num_eij_vars, 1);
        let support = Support::of_formula(&ctx, encoded.formula);
        assert_eq!(
            support.prop_vars.len(),
            1,
            "one eij variable in the support"
        );
    }

    #[test]
    fn equality_pushes_through_ite() {
        let mut ctx = Context::new();
        let sel = ctx.prop_var("sel");
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let t = ctx.ite_term(sel, a, b);
        let root = ctx.eq(t, a);
        let classification = Classification::from_formula(&ctx, root);
        let encoded = encode(
            &mut ctx,
            root,
            &classification,
            GEncoding::Eij,
            TransitivityMode::Eager,
        );
        // ITE(sel, a, b) = a  becomes  ITE(sel, true, false) = sel under the
        // maximally diverse interpretation of the p-terms a and b.
        assert_eq!(encoded.formula, sel);
    }

    #[test]
    fn identical_terms_encode_to_true() {
        let mut ctx = Context::new();
        let classification = g_classification(&mut ctx, &["x"]);
        let x = ctx.term_var("x");
        let root = ctx.eq(x, x);
        let encoded = encode(
            &mut ctx,
            root,
            &classification,
            GEncoding::Eij,
            TransitivityMode::Eager,
        );
        assert!(ctx.is_true(encoded.formula));
    }

    #[test]
    fn small_domain_comparison_uses_indexing_variables() {
        let mut ctx = Context::new();
        let classification = g_classification(&mut ctx, &["x", "y", "z"]);
        let x = ctx.term_var("x");
        let y = ctx.term_var("y");
        let z = ctx.term_var("z");
        let e1 = ctx.eq(x, y);
        let e2 = ctx.eq(y, z);
        let e3 = ctx.eq(x, z);
        let conj = ctx.and_many([e1, e2, e3]);
        let encoded = encode(
            &mut ctx,
            conj,
            &classification,
            GEncoding::SmallDomain,
            TransitivityMode::Eager,
        );
        assert_eq!(encoded.num_eij_vars, 0);
        assert!(encoded.num_indexing_vars > 0);
        assert!(
            ctx.is_true(encoded.side_constraints),
            "small domain needs no side constraints"
        );
    }

    #[test]
    fn eij_transitivity_constraints_generated_for_triangles() {
        let mut ctx = Context::new();
        let classification = g_classification(&mut ctx, &["x", "y", "z"]);
        let x = ctx.term_var("x");
        let y = ctx.term_var("y");
        let z = ctx.term_var("z");
        let e1 = ctx.eq(x, y);
        let e2 = ctx.eq(y, z);
        let e3 = ctx.eq(x, z);
        let conj = ctx.and_many([e1, e2, e3]);
        let encoded = encode(
            &mut ctx,
            conj,
            &classification,
            GEncoding::Eij,
            TransitivityMode::Eager,
        );
        assert_eq!(encoded.num_eij_vars, 3);
        assert_eq!(encoded.num_triangles, 1);
        assert!(!ctx.is_true(encoded.side_constraints));
    }
}
