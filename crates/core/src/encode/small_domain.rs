//! The small-domain encoding of g-equations (Pnueli et al. 1999).
//!
//! Every g-term variable is assigned a finite set of constants such that any
//! equality pattern over the compared pairs can be realised.  The sets are
//! computed with the greedy procedure of Fig. 9 of the paper: repeatedly pick
//! the unprocessed vertex of highest remaining degree, give it a fresh
//! *characteristic constant*, add that constant to the sets of all vertices
//! still reachable from it, then delete its edges.  Each variable then selects
//! one constant of its set through ⌈log₂ N⌉ fresh indexing variables, and the
//! equality of two variables is the disjunction over the shared constants of
//! "both select this constant" — transitivity holds by construction.

use super::{ordered, PairEncoder, PairEncoderStats};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use velv_eufm::{Context, FormulaId, Symbol};

/// Small-domain encoder.
#[derive(Debug)]
pub struct SmallDomainEncoder {
    /// Constant sets per g-term variable (constants are plain integers).
    domains: BTreeMap<Symbol, Vec<u32>>,
    /// Selection condition per (variable, constant).
    selectors: BTreeMap<(Symbol, u32), FormulaId>,
    num_indexing_vars: usize,
}

impl SmallDomainEncoder {
    /// Computes the constant sets and indexing variables for the compared pairs.
    pub fn new(ctx: &mut Context, pairs: &BTreeSet<(Symbol, Symbol)>) -> Self {
        let domains = assign_domains(pairs);
        let mut selectors = BTreeMap::new();
        let mut num_indexing_vars = 0;
        for (&var, constants) in &domains {
            let n = constants.len();
            if n == 1 {
                selectors.insert((var, constants[0]), ctx.true_id());
                continue;
            }
            let bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
            let bit_vars: Vec<FormulaId> = (0..bits)
                .map(|b| {
                    let name = format!("sd!{}#{b}", ctx.symbol_name(var).to_owned());
                    ctx.prop_var(&name)
                })
                .collect();
            num_indexing_vars += bits;
            // Selection condition of the j-th constant: the binary value of the
            // indexing variables equals j; the last constant also absorbs the
            // overflow combinations so that every assignment selects something.
            for (j, &constant) in constants.iter().enumerate() {
                let exact = |ctx: &mut Context, value: usize, bit_vars: &[FormulaId]| {
                    let mut acc = ctx.true_id();
                    for (b, &bit) in bit_vars.iter().enumerate() {
                        let lit = if (value >> b) & 1 == 1 {
                            bit
                        } else {
                            ctx.not(bit)
                        };
                        acc = ctx.and(acc, lit);
                    }
                    acc
                };
                let condition = if j + 1 == n {
                    // All encodings >= j select the last constant.
                    let mut acc = ctx.false_id();
                    for value in j..(1usize << bits) {
                        let m = exact(ctx, value, &bit_vars);
                        acc = ctx.or(acc, m);
                    }
                    acc
                } else {
                    exact(ctx, j, &bit_vars)
                };
                selectors.insert((var, constant), condition);
            }
        }
        SmallDomainEncoder {
            domains,
            selectors,
            num_indexing_vars,
        }
    }

    /// The constant set assigned to a variable.
    pub fn domain_of(&self, var: Symbol) -> Option<&[u32]> {
        self.domains.get(&var).map(|v| v.as_slice())
    }

    fn selector(&self, var: Symbol, constant: u32) -> Option<FormulaId> {
        self.selectors.get(&(var, constant)).copied()
    }
}

impl PairEncoder for SmallDomainEncoder {
    fn encode_pair(&mut self, ctx: &mut Context, x: Symbol, y: Symbol) -> FormulaId {
        let (a, b) = ordered(x, y);
        let (da, db) = match (self.domains.get(&a), self.domains.get(&b)) {
            (Some(da), Some(db)) => (da.clone(), db.clone()),
            _ => {
                debug_assert!(
                    false,
                    "pair ({a:?}, {b:?}) was not discovered during pass 1"
                );
                return ctx.false_id();
            }
        };
        let shared: Vec<u32> = da.iter().filter(|c| db.contains(c)).copied().collect();
        let mut acc = ctx.false_id();
        for constant in shared {
            let sa = self.selector(a, constant).unwrap_or_else(|| ctx.false_id());
            let sb = self.selector(b, constant).unwrap_or_else(|| ctx.false_id());
            let both = ctx.and(sa, sb);
            acc = ctx.or(acc, both);
        }
        acc
    }

    fn side_constraints(&mut self, ctx: &mut Context) -> FormulaId {
        // Transitivity is enforced by construction.
        ctx.true_id()
    }

    fn stats(&self) -> PairEncoderStats {
        PairEncoderStats {
            eij_vars: 0,
            indexing_vars: self.num_indexing_vars,
            triangles: 0,
        }
    }
}

/// The greedy constant-set assignment of Fig. 9.
fn assign_domains(pairs: &BTreeSet<(Symbol, Symbol)>) -> BTreeMap<Symbol, Vec<u32>> {
    let mut adjacency: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
    for &(a, b) in pairs {
        adjacency.entry(a).or_default().insert(b);
        adjacency.entry(b).or_default().insert(a);
    }
    let mut domains: BTreeMap<Symbol, Vec<u32>> =
        adjacency.keys().map(|&v| (v, Vec::new())).collect();
    let mut unprocessed: BTreeSet<Symbol> = adjacency.keys().copied().collect();
    let mut next_constant: u32 = 0;

    while let Some(&node) = unprocessed
        .iter()
        .max_by_key(|v| adjacency.get(v).map_or(0, |n| n.len()))
    {
        let constant = next_constant;
        next_constant += 1;
        // The node itself and everything reachable from it through the
        // remaining edges receive the characteristic constant.
        let mut reachable = BTreeSet::new();
        let mut queue = VecDeque::from([node]);
        while let Some(v) = queue.pop_front() {
            if !reachable.insert(v) {
                continue;
            }
            if let Some(nbrs) = adjacency.get(&v) {
                for &n in nbrs {
                    if !reachable.contains(&n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        for v in reachable {
            domains.entry(v).or_default().push(constant);
        }
        // Remove the processed node's edges.
        if let Some(nbrs) = adjacency.remove(&node) {
            for n in nbrs {
                if let Some(set) = adjacency.get_mut(&n) {
                    set.remove(&node);
                }
            }
        }
        adjacency.entry(node).or_default();
        unprocessed.remove(&node);
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(ctx: &mut Context, names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| ctx.symbol(n)).collect()
    }

    #[test]
    fn chain_domains_grow_along_processing_order() {
        let mut ctx = Context::new();
        let syms = symbols(&mut ctx, &["x", "y", "z"]);
        let pairs: BTreeSet<_> = [ordered(syms[0], syms[1]), ordered(syms[1], syms[2])]
            .into_iter()
            .collect();
        let encoder = SmallDomainEncoder::new(&mut ctx, &pairs);
        for &s in &syms {
            let domain = encoder.domain_of(s).unwrap();
            assert!(!domain.is_empty());
            assert!(domain.len() <= 3);
        }
    }

    #[test]
    fn connected_variables_share_a_constant() {
        let mut ctx = Context::new();
        let syms = symbols(&mut ctx, &["a", "b"]);
        let pairs: BTreeSet<_> = [ordered(syms[0], syms[1])].into_iter().collect();
        let encoder = SmallDomainEncoder::new(&mut ctx, &pairs);
        let da = encoder.domain_of(syms[0]).unwrap();
        let db = encoder.domain_of(syms[1]).unwrap();
        assert!(
            da.iter().any(|c| db.contains(c)),
            "compared variables can be equal"
        );
        // And at least one of the two can take a private value, so they can differ.
        assert!(da.len() + db.len() > 2 || da != db || da.len() > 1);
    }

    #[test]
    fn equality_formula_is_satisfiable_and_refutable() {
        use velv_eufm::{Evaluator, Interpretation};
        let mut ctx = Context::new();
        let syms = symbols(&mut ctx, &["a", "b"]);
        let pairs: BTreeSet<_> = [ordered(syms[0], syms[1])].into_iter().collect();
        let mut encoder = SmallDomainEncoder::new(&mut ctx, &pairs);
        let eq = encoder.encode_pair(&mut ctx, syms[0], syms[1]);
        assert!(!ctx.is_true(eq) && !ctx.is_false(eq));
        // Some assignment of the indexing variables makes the two equal and
        // some makes them different: evaluate under all-false and all-true.
        let index_names: Vec<String> = ctx
            .symbols()
            .iter()
            .filter(|(_, n)| n.starts_with("sd!"))
            .map(|(_, n)| n.to_owned())
            .collect();
        let mut interp_false = Interpretation::new();
        let mut interp_true = Interpretation::new();
        for name in &index_names {
            interp_false.set_prop_var(&mut ctx, name, false);
            interp_true.set_prop_var(&mut ctx, name, true);
        }
        let values = vec![
            Evaluator::new(&ctx, interp_false).eval_formula(eq),
            Evaluator::new(&ctx, interp_true).eval_formula(eq),
        ];
        assert!(
            values.contains(&true) && values.contains(&false),
            "indexing variables must control the outcome, got {values:?}"
        );
    }

    #[test]
    fn triangle_supports_all_equality_patterns() {
        use velv_eufm::{Evaluator, Interpretation};
        let mut ctx = Context::new();
        let syms = symbols(&mut ctx, &["x", "y", "z"]);
        let pairs: BTreeSet<_> = [
            ordered(syms[0], syms[1]),
            ordered(syms[1], syms[2]),
            ordered(syms[0], syms[2]),
        ]
        .into_iter()
        .collect();
        let mut encoder = SmallDomainEncoder::new(&mut ctx, &pairs);
        let exy = encoder.encode_pair(&mut ctx, syms[0], syms[1]);
        let eyz = encoder.encode_pair(&mut ctx, syms[1], syms[2]);
        let exz = encoder.encode_pair(&mut ctx, syms[0], syms[2]);
        // Enumerate all assignments of the indexing variables and record which
        // (exy, eyz, exz) patterns are reachable.
        let index_vars: Vec<String> = ctx
            .symbols()
            .iter()
            .filter(|(_, n)| n.starts_with("sd!"))
            .map(|(_, n)| n.to_owned())
            .collect();
        let mut patterns = BTreeSet::new();
        for bits in 0..(1u32 << index_vars.len()) {
            let mut interp = Interpretation::new();
            for (i, name) in index_vars.iter().enumerate() {
                interp.set_prop_var(&mut ctx, name, bits & (1 << i) != 0);
            }
            let mut ev = Evaluator::new(&ctx, interp);
            patterns.insert((
                ev.eval_formula(exy),
                ev.eval_formula(eyz),
                ev.eval_formula(exz),
            ));
        }
        // All-equal, all-distinct and each "exactly one pair equal" pattern must
        // be reachable; intransitive patterns must not be.
        assert!(patterns.contains(&(true, true, true)));
        assert!(patterns.contains(&(false, false, false)));
        assert!(patterns.contains(&(true, false, false)));
        assert!(patterns.contains(&(false, true, false)));
        assert!(patterns.contains(&(false, false, true)));
        assert!(
            !patterns.contains(&(true, true, false)),
            "transitivity violated"
        );
        assert!(
            !patterns.contains(&(true, false, true)),
            "transitivity violated"
        );
        assert!(
            !patterns.contains(&(false, true, true)),
            "transitivity violated"
        );
    }
}
