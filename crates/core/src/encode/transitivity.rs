//! Sparse transitivity constraints for the *e*ij encoding.
//!
//! The equality-comparison graph (one vertex per g-term variable, one edge per
//! compared pair) is made *chordal* by greedy vertex elimination: repeatedly
//! remove degree-≤1 vertices, then eliminate a minimum-degree vertex after
//! connecting its remaining neighbours.  Every triangle of the resulting graph
//! receives the three transitivity clauses
//! `(eab ∧ ebc → eac)`, `(eab ∧ eac → ebc)`, `(ebc ∧ eac → eab)` — the sparse
//! method of Bryant & Velev (2002) referenced in Section 6 of the paper.

use std::collections::{BTreeMap, BTreeSet};
use velv_eufm::Symbol;

/// A triangle of the chordal equality-comparison graph.
pub type Triangle = [(Symbol, Symbol); 3];

/// Result of triangulating the equality-comparison graph.
#[derive(Clone, Debug, Default)]
pub struct Triangulation {
    /// Edges added to make the graph chordal (these need *e*ij variables too).
    pub added_edges: Vec<(Symbol, Symbol)>,
    /// All triangles whose transitivity must be constrained.
    pub triangles: Vec<Triangle>,
}

fn ordered(a: Symbol, b: Symbol) -> (Symbol, Symbol) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Triangulates the graph given by `edges`.
pub fn triangulate(edges: &BTreeSet<(Symbol, Symbol)>) -> Triangulation {
    let mut adjacency: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().insert(b);
        adjacency.entry(b).or_default().insert(a);
    }
    let mut result = Triangulation::default();
    let mut edge_set: BTreeSet<(Symbol, Symbol)> = edges.clone();

    loop {
        // Remove vertices of degree 0 or 1 — they cannot be part of a cycle.
        loop {
            let low: Vec<Symbol> = adjacency
                .iter()
                .filter(|(_, nbrs)| nbrs.len() <= 1)
                .map(|(v, _)| *v)
                .collect();
            if low.is_empty() {
                break;
            }
            for v in low {
                if let Some(nbrs) = adjacency.remove(&v) {
                    for n in nbrs {
                        if let Some(set) = adjacency.get_mut(&n) {
                            set.remove(&v);
                        }
                    }
                }
            }
        }
        if adjacency.is_empty() {
            break;
        }
        // Eliminate a minimum-degree vertex.
        let v = *adjacency
            .iter()
            .min_by_key(|(_, nbrs)| nbrs.len())
            .map(|(v, _)| v)
            .expect("adjacency is non-empty");
        let neighbours: Vec<Symbol> = adjacency
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        // Connect the neighbours along a path (up to n−1 extra edges, forming
        // n−1 triangles with the eliminated vertex's edges) — the sparse scheme
        // described in Section 6 of the paper.  For small neighbourhoods we
        // complete the clique instead, which yields a chordal graph and hence
        // the strongest transitivity enforcement at negligible extra cost.
        let clique = neighbours.len() <= 8;
        for i in 0..neighbours.len() {
            let js: Vec<usize> = if clique {
                ((i + 1)..neighbours.len()).collect()
            } else if i + 1 < neighbours.len() {
                vec![i + 1]
            } else {
                Vec::new()
            };
            for j in js {
                let a = neighbours[i];
                let b = neighbours[j];
                let fill = ordered(a, b);
                if edge_set.insert(fill) {
                    result.added_edges.push(fill);
                    adjacency.entry(a).or_default().insert(b);
                    adjacency.entry(b).or_default().insert(a);
                }
                result.triangles.push([ordered(v, a), ordered(v, b), fill]);
            }
        }
        // Remove the eliminated vertex.
        if let Some(nbrs) = adjacency.remove(&v) {
            for n in nbrs {
                if let Some(set) = adjacency.get_mut(&n) {
                    set.remove(&v);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        // Symbols are constructed through a context normally; for graph tests we
        // only need distinct ordered values, so build them via a context.
        use velv_eufm::Context;
        thread_local! {
            static CTX: std::cell::RefCell<Context> = std::cell::RefCell::new(Context::new());
        }
        CTX.with(|ctx| ctx.borrow_mut().symbol(&format!("g{i}")))
    }

    fn edge(a: u32, b: u32) -> (Symbol, Symbol) {
        let (x, y) = (sym(a), sym(b));
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }

    #[test]
    fn tree_needs_no_constraints() {
        let edges: BTreeSet<_> = [edge(0, 1), edge(1, 2), edge(1, 3)].into_iter().collect();
        let result = triangulate(&edges);
        assert!(result.triangles.is_empty());
        assert!(result.added_edges.is_empty());
    }

    #[test]
    fn triangle_produces_one_triangle_no_added_edges() {
        let edges: BTreeSet<_> = [edge(0, 1), edge(1, 2), edge(0, 2)].into_iter().collect();
        let result = triangulate(&edges);
        assert_eq!(result.triangles.len(), 1);
        assert!(result.added_edges.is_empty());
    }

    #[test]
    fn square_gets_one_chord_and_two_triangles() {
        // Cycle of length 4, as in Fig. 8 of the paper: one extra edge, two triangles.
        let edges: BTreeSet<_> = [edge(0, 1), edge(1, 2), edge(2, 3), edge(0, 3)]
            .into_iter()
            .collect();
        let result = triangulate(&edges);
        assert_eq!(result.added_edges.len(), 1);
        assert_eq!(result.triangles.len(), 2);
    }

    #[test]
    fn every_triangle_edge_is_in_the_final_edge_set() {
        let edges: BTreeSet<_> = [
            edge(0, 1),
            edge(1, 2),
            edge(2, 3),
            edge(3, 4),
            edge(4, 0),
            edge(1, 3),
        ]
        .into_iter()
        .collect();
        let result = triangulate(&edges);
        let mut all_edges = edges.clone();
        all_edges.extend(result.added_edges.iter().copied());
        for triangle in &result.triangles {
            for e in triangle {
                assert!(
                    all_edges.contains(e),
                    "triangle edge {e:?} missing from edge set"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let result = triangulate(&BTreeSet::new());
        assert!(result.triangles.is_empty());
        assert!(result.added_edges.is_empty());
    }
}
