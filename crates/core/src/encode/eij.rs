//! The *e*ij encoding of g-equations (Goel et al. 1998).
//!
//! Every comparison of two distinct g-term variables is replaced by a fresh
//! Boolean variable.  Transitivity of equality is enforced separately with the
//! sparse constraints of [`super::transitivity`].

use super::transitivity::{triangulate, Triangulation};
use super::{ordered, PairEncoder, PairEncoderStats};
use std::collections::{BTreeMap, BTreeSet};
use velv_eufm::{Context, FormulaId, Symbol};

/// Encoder that maps each compared pair of g-term variables to an *e*ij variable.
#[derive(Debug)]
pub struct EijEncoder {
    vars: BTreeMap<(Symbol, Symbol), FormulaId>,
    triangulation: Triangulation,
    /// Lazy mode: no triangulation, no side constraints — transitivity is
    /// enforced afterwards by model-driven refinement (`velv_core::refine`).
    lazy: bool,
}

impl EijEncoder {
    /// Creates the eager encoder: allocates one fresh Boolean variable per
    /// compared pair (and per chord edge added by the triangulation), and
    /// emits the triangle transitivity clauses as side constraints.
    pub fn new(ctx: &mut Context, pairs: &BTreeSet<(Symbol, Symbol)>) -> Self {
        Self::build(ctx, pairs, false)
    }

    /// Creates the lazy encoder: one variable per compared pair only (no
    /// chord edges), and no side constraints — violated transitivity is
    /// detected in returned models and asserted incrementally by the
    /// refinement loop.
    pub fn new_lazy(ctx: &mut Context, pairs: &BTreeSet<(Symbol, Symbol)>) -> Self {
        Self::build(ctx, pairs, true)
    }

    fn build(ctx: &mut Context, pairs: &BTreeSet<(Symbol, Symbol)>, lazy: bool) -> Self {
        let triangulation = if lazy {
            Triangulation::default()
        } else {
            triangulate(pairs)
        };
        let mut vars = BTreeMap::new();
        let mut all_edges: Vec<(Symbol, Symbol)> = pairs.iter().copied().collect();
        all_edges.extend(triangulation.added_edges.iter().copied());
        for (x, y) in all_edges {
            let name = format!(
                "e!{}={}",
                ctx.symbol_name(x).to_owned(),
                ctx.symbol_name(y).to_owned()
            );
            let var = ctx.prop_var(&name);
            vars.insert(ordered(x, y), var);
        }
        EijEncoder {
            vars,
            triangulation,
            lazy,
        }
    }

    /// The encoded pairs and their *e*ij variables, in canonical order.
    pub fn pairs(&self) -> Vec<(Symbol, Symbol, FormulaId)> {
        self.vars.iter().map(|(&(x, y), &v)| (x, y, v)).collect()
    }

    /// Number of *e*ij variables (including those for chord edges).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The *e*ij variable of a pair, if the pair was compared.
    pub fn var_for(&self, x: Symbol, y: Symbol) -> Option<FormulaId> {
        self.vars.get(&ordered(x, y)).copied()
    }
}

impl PairEncoder for EijEncoder {
    fn encode_pair(&mut self, ctx: &mut Context, x: Symbol, y: Symbol) -> FormulaId {
        match self.vars.get(&ordered(x, y)) {
            Some(&v) => v,
            None => {
                // A pair that pass 1 did not see (defensive): allocate lazily.
                let name = format!(
                    "e!{}={}",
                    ctx.symbol_name(x).to_owned(),
                    ctx.symbol_name(y).to_owned()
                );
                let var = ctx.prop_var(&name);
                self.vars.insert(ordered(x, y), var);
                var
            }
        }
    }

    fn side_constraints(&mut self, ctx: &mut Context) -> FormulaId {
        let mut acc = ctx.true_id();
        if self.lazy {
            return acc;
        }
        let triangles = self.triangulation.triangles.clone();
        for triangle in triangles {
            let e: Vec<FormulaId> = triangle
                .iter()
                .map(|(x, y)| self.encode_pair(ctx, *x, *y))
                .collect();
            // For every pair of edges in the triangle, the third is implied.
            for (i, j, k) in [(0, 1, 2), (0, 2, 1), (1, 2, 0)] {
                let both = ctx.and(e[i], e[j]);
                let implied = ctx.implies(both, e[k]);
                acc = ctx.and(acc, implied);
            }
        }
        acc
    }

    fn stats(&self) -> PairEncoderStats {
        PairEncoderStats {
            eij_vars: self.vars.len(),
            indexing_vars: 0,
            triangles: self.triangulation.triangles.len(),
        }
    }

    fn encoded_pairs(&self) -> Vec<(Symbol, Symbol, FormulaId)> {
        self.pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_variable_per_pair() {
        let mut ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let z = ctx.symbol("z");
        let pairs: BTreeSet<_> = [ordered(x, y), ordered(y, z)].into_iter().collect();
        let mut encoder = EijEncoder::new(&mut ctx, &pairs);
        assert_eq!(encoder.num_vars(), 2);
        let exy = encoder.encode_pair(&mut ctx, x, y);
        let eyx = encoder.encode_pair(&mut ctx, y, x);
        assert_eq!(exy, eyx, "the encoding is symmetric");
        let eyz = encoder.encode_pair(&mut ctx, y, z);
        assert_ne!(exy, eyz);
        // No cycle: no transitivity constraints.
        let constraints = encoder.side_constraints(&mut ctx);
        assert!(ctx.is_true(constraints));
    }

    #[test]
    fn cycle_of_three_gets_constraints() {
        let mut ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let z = ctx.symbol("z");
        let pairs: BTreeSet<_> = [ordered(x, y), ordered(y, z), ordered(x, z)]
            .into_iter()
            .collect();
        let mut encoder = EijEncoder::new(&mut ctx, &pairs);
        let constraints = encoder.side_constraints(&mut ctx);
        assert!(!ctx.is_true(constraints));
        assert_eq!(encoder.stats().triangles, 1);
        assert_eq!(encoder.stats().eij_vars, 3);
    }

    #[test]
    fn lazy_mode_has_no_chords_and_no_side_constraints() {
        let mut ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let z = ctx.symbol("z");
        let w = ctx.symbol("w");
        // A 4-cycle: the eager encoder adds a chord; the lazy one must not.
        let pairs: BTreeSet<_> = [ordered(x, y), ordered(y, z), ordered(z, w), ordered(x, w)]
            .into_iter()
            .collect();
        let mut lazy = EijEncoder::new_lazy(&mut ctx, &pairs);
        assert_eq!(lazy.num_vars(), 4, "one variable per compared pair only");
        let lazy_side = lazy.side_constraints(&mut ctx);
        assert!(ctx.is_true(lazy_side));
        assert_eq!(lazy.stats().triangles, 0);
        assert_eq!(lazy.pairs().len(), 4);
        let mut eager = EijEncoder::new(&mut ctx, &pairs);
        assert!(eager.num_vars() > 4, "the eager encoder adds chord edges");
        let eager_side = eager.side_constraints(&mut ctx);
        assert!(!ctx.is_true(eager_side));
    }

    #[test]
    fn lazy_allocation_for_unseen_pairs() {
        let mut ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let mut encoder = EijEncoder::new(&mut ctx, &BTreeSet::new());
        assert!(encoder.var_for(x, y).is_none());
        let v = encoder.encode_pair(&mut ctx, x, y);
        assert_eq!(encoder.var_for(x, y), Some(v));
        assert_eq!(encoder.num_vars(), 1);
    }
}
