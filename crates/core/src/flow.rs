//! The end-to-end verification flow: model → EUFM criterion → propositional
//! formula → CNF → SAT/BDD back end → verdict.

use crate::backend::{
    bdd_verdict, check_validity_with_bdds, race_backends, sat_verdict, Backend, PortfolioOutcome,
};
use crate::burch_dill::VerificationProblem;
use crate::cnf::formula_to_cnf;
use crate::counterexample::Counterexample;
use crate::decompose::decompose;
use crate::encode::encode;
use crate::memory_elim::eliminate_memories;
use crate::options::TranslationOptions;
use crate::positive_equality::Classification;
use crate::stats::TranslationStats;
use crate::uf_elim::eliminate_ufs;
use std::collections::{BTreeMap, BTreeSet};
use velv_eufm::{Context, DagStats, FormulaId, Support, Symbol};
use velv_hdl::Processor;
use velv_sat::{Budget, CnfFormula, Solver, Var};

/// A fully translated verification obligation, ready for a SAT or BDD back end.
#[derive(Clone, Debug)]
pub struct Translation {
    /// Name of the obligation (design name, or design + obligation for
    /// decomposed criteria).
    pub name: String,
    /// The expression context owning the encoded formulas.
    pub ctx: Context,
    /// The encoded correctness formula (must be valid).
    pub encoded: FormulaId,
    /// Side constraints that may be assumed (transitivity constraints).
    pub side_constraints: FormulaId,
    /// The CNF whose satisfiability disproves correctness.
    pub cnf: CnfFormula,
    /// CNF variables of the primary Boolean variables.
    pub primary_vars: BTreeMap<Symbol, Var>,
    /// Size statistics.
    pub stats: TranslationStats,
}

/// Outcome of a verification run.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The design satisfies the Burch–Dill correctness criterion.
    Correct,
    /// The design is buggy; the counterexample falsifies the criterion.
    Buggy(Counterexample),
    /// The back end could not decide within its resource limits.
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict proves correctness.
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }

    /// Whether the verdict exhibits a bug.
    pub fn is_buggy(&self) -> bool {
        matches!(self, Verdict::Buggy(_))
    }

    /// The counterexample, when the design is buggy.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Buggy(cex) => Some(cex),
            _ => None,
        }
    }
}

/// The verification driver: owns the translation options and runs the flow.
#[derive(Clone, Debug, Default)]
pub struct Verifier {
    options: TranslationOptions,
}

impl Verifier {
    /// Creates a verifier with the given translation options.
    pub fn new(options: TranslationOptions) -> Self {
        Verifier { options }
    }

    /// The translation options in use.
    pub fn options(&self) -> &TranslationOptions {
        &self.options
    }

    /// Builds the Burch–Dill correctness problem for a design.
    pub fn build_problem(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
    ) -> VerificationProblem {
        VerificationProblem::build(
            implementation,
            specification,
            &self.options.translation_boxes,
        )
    }

    /// Translates the monolithic correctness criterion of a design.
    pub fn translate(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
    ) -> Translation {
        let problem = self.build_problem(implementation, specification);
        self.translate_problem(&problem)
    }

    /// Translates the monolithic criterion of an already-built problem.
    pub fn translate_problem(&self, problem: &VerificationProblem) -> Translation {
        self.translate_formula_in(
            problem.ctx.clone(),
            problem.criterion,
            &problem.memory_vars,
            problem.name.clone(),
        )
    }

    /// Translates the decomposed (weak) criteria of a problem: at most
    /// `max_obligations` obligations (plus the coverage obligation).
    pub fn translate_obligations(
        &self,
        problem: &VerificationProblem,
        max_obligations: usize,
    ) -> Vec<Translation> {
        let mut ctx = problem.ctx.clone();
        let obligations = decompose(problem, &mut ctx, max_obligations);
        obligations
            .into_iter()
            .map(|o| {
                self.translate_formula_in(
                    ctx.clone(),
                    o.formula,
                    &problem.memory_vars,
                    format!("{}::{}", problem.name, o.name),
                )
            })
            .collect()
    }

    /// Runs the translation pipeline on one formula inside its own context.
    ///
    /// The deep structural recursions of the pipeline (memory elimination, UF
    /// elimination, encoding, CNF generation) are executed on a dedicated
    /// thread with a large stack so that the wide superscalar and VLIW
    /// correctness formulas do not overflow the default thread stack.
    fn translate_formula_in(
        &self,
        ctx: Context,
        criterion: FormulaId,
        memory_vars: &BTreeSet<Symbol>,
        name: String,
    ) -> Translation {
        let this = self.clone();
        let memory_vars = memory_vars.clone();
        std::thread::Builder::new()
            .name(format!("velv-translate-{name}"))
            .stack_size(256 * 1024 * 1024)
            .spawn(move || this.translate_formula_impl(ctx, criterion, &memory_vars, name))
            .expect("spawning the translation thread succeeds")
            .join()
            .expect("the translation thread does not panic")
    }

    fn translate_formula_impl(
        &self,
        mut ctx: Context,
        criterion: FormulaId,
        memory_vars: &BTreeSet<Symbol>,
        name: String,
    ) -> Translation {
        let eufm_stats = DagStats::of_formula(&ctx, criterion);

        // 1. Memory elimination (precise or conservative per options).
        let abstract_memories: BTreeSet<Symbol> = self
            .options
            .abstract_memories
            .iter()
            .map(|n| ctx.symbol(n))
            .collect();
        let memless = eliminate_memories(&mut ctx, criterion, memory_vars, &abstract_memories);

        // 2. p/g classification (positive equality) of the memory-free formula.
        let mut classification = if self.options.positive_equality {
            Classification::from_formula(&ctx, memless.formula)
        } else {
            Classification::all_general()
        };

        // 3. UF/UP elimination.
        let eliminated = eliminate_ufs(
            &mut ctx,
            memless.formula,
            &self.options,
            &mut classification,
        );
        // Ackermann constraints (if any) are assumptions of the validity check.
        let to_prove = ctx.implies(eliminated.constraints, eliminated.formula);

        // 4. Encoding of the remaining equations.
        let encoded = encode(&mut ctx, to_prove, &classification, self.options.encoding);

        // 5. CNF generation: side constraints hold, encoded criterion fails.
        let cnf_translation = formula_to_cnf(
            &ctx,
            &[(encoded.side_constraints, true), (encoded.formula, false)],
        );

        let mut primary_support = Support::of_formula(&ctx, encoded.formula);
        let constraint_support = Support::of_formula(&ctx, encoded.side_constraints);
        primary_support
            .prop_vars
            .extend(constraint_support.prop_vars);

        let stats = TranslationStats {
            primary_bool_vars: primary_support.prop_vars.len(),
            eij_vars: encoded.num_eij_vars,
            indexing_vars: encoded.num_indexing_vars,
            g_pairs: encoded.num_g_pairs,
            transitivity_triangles: encoded.num_triangles,
            cnf_vars: cnf_translation.cnf.num_vars(),
            cnf_clauses: cnf_translation.cnf.num_clauses(),
            eufm_equations: eufm_stats.equations,
            uf_applications: eliminated.introduced_vars.len(),
        };

        Translation {
            name,
            ctx,
            encoded: encoded.formula,
            side_constraints: encoded.side_constraints,
            cnf: cnf_translation.cnf,
            primary_vars: cnf_translation.primary_vars,
            stats,
        }
    }

    /// Checks a translation with a SAT back end.
    pub fn check(
        &self,
        translation: &Translation,
        solver: &mut dyn Solver,
        budget: Budget,
    ) -> Verdict {
        sat_verdict(
            translation,
            solver.solve_with_budget(&translation.cnf, budget),
        )
    }

    /// Checks a translation with the BDD back end.
    pub fn check_with_bdds(&self, translation: &Translation, node_limit: usize) -> Verdict {
        let translation = translation.clone();
        std::thread::Builder::new()
            .name("velv-bdd-backend".to_owned())
            .stack_size(256 * 1024 * 1024)
            .spawn(move || Self::check_with_bdds_impl(&translation, node_limit))
            .expect("spawning the BDD back-end thread succeeds")
            .join()
            .expect("the BDD back-end thread does not panic")
    }

    fn check_with_bdds_impl(translation: &Translation, node_limit: usize) -> Verdict {
        let outcome = check_validity_with_bdds(
            &translation.ctx,
            translation.encoded,
            translation.side_constraints,
            node_limit,
        );
        bdd_verdict(translation, outcome)
    }

    /// Checks a translation with any [`Backend`]: a SAT preset, the BDD back
    /// end, or a portfolio racing several of them.
    pub fn check_with_backend(
        &self,
        translation: &Translation,
        backend: &Backend,
        budget: Budget,
    ) -> Verdict {
        match backend {
            Backend::Sat(kind) => {
                let mut solver = kind.build();
                self.check(translation, solver.as_mut(), budget)
            }
            // A single-member "race": the collector loop is what forwards the
            // budget's deadline and outer cancel token into the BDD build, so
            // a stand-alone BDD check honours the budget exactly like the
            // portfolio path does.
            Backend::Bdd { .. } => {
                self.check_portfolio(translation, std::slice::from_ref(backend), budget)
                    .verdict
            }
            Backend::Portfolio(members) => {
                self.check_portfolio(translation, members, budget).verdict
            }
        }
    }

    /// Races the given back ends against one translated obligation; the first
    /// decided verdict wins and the losers are cancelled cooperatively.
    pub fn check_portfolio(
        &self,
        translation: &Translation,
        members: &[Backend],
        budget: Budget,
    ) -> PortfolioOutcome {
        race_backends(translation, members, budget)
    }

    /// End-to-end verification with an arbitrary [`Backend`].
    pub fn verify_with_backend(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        backend: &Backend,
        budget: Budget,
    ) -> Verdict {
        let translation = self.translate(implementation, specification);
        self.check_with_backend(&translation, backend, budget)
    }

    /// End-to-end portfolio verification: translates once, then races the
    /// back ends (CDCL presets against the BDD build, in the default
    /// configuration) and reports the winner alongside the per-member runs.
    pub fn verify_portfolio(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        members: &[Backend],
        budget: Budget,
    ) -> PortfolioOutcome {
        let translation = self.translate(implementation, specification);
        self.check_portfolio(&translation, members, budget)
    }

    /// End-to-end verification with a SAT back end and no resource limits.
    pub fn verify(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        solver: &mut dyn Solver,
    ) -> Verdict {
        self.verify_with_budget(implementation, specification, solver, Budget::unlimited())
    }

    /// End-to-end verification with a SAT back end and a resource budget.
    pub fn verify_with_budget(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        solver: &mut dyn Solver,
        budget: Budget,
    ) -> Verdict {
        let translation = self.translate(implementation, specification);
        self.check(&translation, solver, budget)
    }

    /// Convenience: decomposed verification.  Returns the per-obligation
    /// verdicts; the design is correct when every obligation is correct, and
    /// buggy as soon as one obligation is falsified.
    pub fn verify_decomposed(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        max_obligations: usize,
        mut make_solver: impl FnMut() -> Box<dyn Solver>,
        budget: Budget,
    ) -> (Verdict, Vec<(String, Verdict)>) {
        let problem = self.build_problem(implementation, specification);
        let translations = self.translate_obligations(&problem, max_obligations);
        let mut results = Vec::new();
        let mut overall = Verdict::Correct;
        for translation in &translations {
            let mut solver = make_solver();
            let verdict = self.check(translation, solver.as_mut(), budget.clone());
            if verdict.is_buggy() && !overall.is_buggy() {
                overall = verdict.clone();
            }
            if let Verdict::Unknown(reason) = &verdict {
                if overall.is_correct() {
                    overall = Verdict::Unknown(reason.clone());
                }
            }
            results.push((translation.name.clone(), verdict));
        }
        (overall, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_models::{PipelinedToy, ToyBug, ToySpec};
    use velv_sat::cdcl::CdclSolver;

    #[test]
    fn correct_design_verifies() {
        let verifier = Verifier::new(TranslationOptions::default());
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&PipelinedToy::correct(), &ToySpec, &mut solver);
        assert!(verdict.is_correct(), "got {verdict:?}");
    }

    #[test]
    fn buggy_designs_are_refuted_with_counterexamples() {
        let verifier = Verifier::new(TranslationOptions::default());
        for bug in [ToyBug::ForwardingIgnoresValid, ToyBug::WritesWrongData] {
            let mut solver = CdclSolver::chaff();
            let verdict = verifier.verify(&PipelinedToy::buggy(bug), &ToySpec, &mut solver);
            assert!(verdict.is_buggy(), "bug {bug:?}: got {verdict:?}");
            assert!(verdict.counterexample().is_some());
        }
    }

    #[test]
    fn translation_reports_statistics() {
        let verifier = Verifier::new(TranslationOptions::default());
        let translation = verifier.translate(&PipelinedToy::correct(), &ToySpec);
        assert!(translation.stats.cnf_vars > 0);
        assert!(translation.stats.cnf_clauses > 0);
        assert!(translation.stats.eufm_equations > 0);
        assert!(translation.stats.primary_bool_vars > 0);
        assert!(translation.stats.uf_applications > 0);
    }

    #[test]
    fn all_structural_variations_agree_on_the_verdict() {
        for (name, options) in TranslationOptions::structural_variations() {
            let verifier = Verifier::new(options);
            let mut solver = CdclSolver::chaff();
            let ok = verifier.verify(&PipelinedToy::correct(), &ToySpec, &mut solver);
            assert!(ok.is_correct(), "variation {name}: {ok:?}");
            let mut solver = CdclSolver::chaff();
            let bad = verifier.verify(
                &PipelinedToy::buggy(ToyBug::ForwardingIgnoresValid),
                &ToySpec,
                &mut solver,
            );
            assert!(bad.is_buggy(), "variation {name}: {bad:?}");
        }
    }

    #[test]
    fn both_encodings_agree_on_the_verdict() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_small_domain(),
        ] {
            let verifier = Verifier::new(options);
            let mut solver = CdclSolver::chaff();
            assert!(verifier
                .verify(&PipelinedToy::correct(), &ToySpec, &mut solver)
                .is_correct());
            let mut solver = CdclSolver::chaff();
            assert!(verifier
                .verify(
                    &PipelinedToy::buggy(ToyBug::WritesWrongData),
                    &ToySpec,
                    &mut solver
                )
                .is_buggy());
        }
    }

    #[test]
    fn disabling_positive_equality_preserves_the_verdict() {
        let verifier = Verifier::new(TranslationOptions::default().without_positive_equality());
        let mut solver = CdclSolver::chaff();
        assert!(verifier
            .verify(&PipelinedToy::correct(), &ToySpec, &mut solver)
            .is_correct());
        let mut solver = CdclSolver::chaff();
        assert!(verifier
            .verify(
                &PipelinedToy::buggy(ToyBug::WritesWrongData),
                &ToySpec,
                &mut solver
            )
            .is_buggy());
    }

    #[test]
    fn disabling_positive_equality_increases_primary_variables() {
        let with = Verifier::new(TranslationOptions::default());
        let without = Verifier::new(TranslationOptions::default().without_positive_equality());
        let t_with = with.translate(&PipelinedToy::correct(), &ToySpec);
        let t_without = without.translate(&PipelinedToy::correct(), &ToySpec);
        assert!(
            t_without.stats.eij_vars > t_with.stats.eij_vars,
            "treating every term variable as general must add eij variables ({} vs {})",
            t_without.stats.eij_vars,
            t_with.stats.eij_vars
        );
    }

    #[test]
    fn bdd_back_end_agrees() {
        let verifier = Verifier::new(TranslationOptions::default());
        let good = verifier.translate(&PipelinedToy::correct(), &ToySpec);
        assert!(verifier.check_with_bdds(&good, 1 << 22).is_correct());
        let bad = verifier.translate(&PipelinedToy::buggy(ToyBug::WritesWrongData), &ToySpec);
        assert!(verifier.check_with_bdds(&bad, 1 << 22).is_buggy());
    }

    #[test]
    fn decomposed_verification_matches_monolithic() {
        let verifier = Verifier::new(TranslationOptions::default());
        let (overall, parts) = verifier.verify_decomposed(
            &PipelinedToy::correct(),
            &ToySpec,
            8,
            || Box::new(CdclSolver::chaff()),
            Budget::unlimited(),
        );
        assert!(overall.is_correct(), "got {overall:?}");
        assert!(!parts.is_empty());
        let (overall, _) = verifier.verify_decomposed(
            &PipelinedToy::buggy(ToyBug::WritesWrongData),
            &ToySpec,
            8,
            || Box::new(CdclSolver::chaff()),
            Budget::unlimited(),
        );
        assert!(overall.is_buggy());
    }
}
