//! The end-to-end verification flow: model → EUFM criterion → propositional
//! formula → CNF → SAT/BDD back end → verdict.

use crate::backend::{
    bdd_verdict, check_validity_with_bdds, race_backends, sat_verdict, Backend, PortfolioOutcome,
};
use crate::burch_dill::VerificationProblem;
use crate::certify::{self, CertifiedVerdict, CertifyError, SharedCertifiedOutcome};
use crate::cnf::{formula_to_cnf, CnfBuilder};
use crate::counterexample::Counterexample;
use crate::decompose::decompose;
use crate::encode::{encode, EncodedFormula};
use crate::memory_elim::eliminate_memories;
use crate::options::{CertifyOptions, GEncoding, TransitivityMode, TranslationOptions};
use crate::positive_equality::Classification;
use crate::refine;
use crate::stats::{RefinementStats, TranslationStats};
use crate::uf_elim::eliminate_ufs;
use std::collections::{BTreeMap, BTreeSet};
use velv_eufm::{Context, DagStats, FormulaId, Support, Symbol};
use velv_hdl::Processor;
use velv_sat::cdcl::CdclConfig;
use velv_sat::{Budget, CnfFormula, IncrementalSolver, Lit, SatResult, Solver, Var};

/// A fully translated verification obligation, ready for a SAT or BDD back end.
#[derive(Clone, Debug)]
pub struct Translation {
    /// Name of the obligation (design name, or design + obligation for
    /// decomposed criteria).
    pub name: String,
    /// The expression context owning the encoded formulas.
    pub ctx: Context,
    /// The encoded correctness formula (must be valid).
    pub encoded: FormulaId,
    /// Side constraints that may be assumed (transitivity constraints).
    pub side_constraints: FormulaId,
    /// The CNF whose satisfiability disproves correctness.
    pub cnf: CnfFormula,
    /// CNF variables of the primary Boolean variables.
    pub primary_vars: BTreeMap<Symbol, Var>,
    /// The *e*ij equality variables of the CNF, `(x, y, cnf_var)` per encoded
    /// g-term pair — the input of the lazy transitivity refinement loop.
    pub eij_pairs: Vec<(Symbol, Symbol, Var)>,
    /// Whether the translation was encoded without transitivity constraints
    /// (its SAT answers must then be validated by the refinement loop; see
    /// [`crate::refine`]).  [`Verifier::check`] routes automatically.
    pub lazy_transitivity: bool,
    /// Size statistics.
    pub stats: TranslationStats,
}

/// One obligation of a [`SharedTranslation`]: asserting its assumptions
/// selects the obligation inside the shared CNF.
#[derive(Clone, Debug)]
pub struct SharedObligation {
    /// Obligation name (`problem::obligation`).
    pub name: String,
    /// Assumption literals activating this obligation: its side constraints
    /// hold, its encoded criterion fails.
    pub assumptions: Vec<Lit>,
    /// The obligation's encoded correctness formula (certified checking
    /// re-evaluates it under a counterexample model: it must be false).
    pub encoded: FormulaId,
    /// The obligation's side constraints (must hold under the model).
    pub side_constraints: FormulaId,
}

/// All obligations of a decomposed correctness criterion translated into
/// *one* CNF over one context.
///
/// The CNF contains only definitional (Tseitin) clauses — no obligation is
/// asserted — so it is satisfiable by construction and one persistent
/// [`IncrementalSolver`] can check every obligation by assuming that
/// obligation's root literals.  Obligations share the clauses of every common
/// subformula (windows, match formulas, *e*ij definitions), and the solver
/// carries its learned clauses and heuristic state from one obligation to the
/// next — the incremental counterpart of [`Verifier::translate_obligations`],
/// which re-translates and re-learns per obligation.
#[derive(Clone, Debug)]
pub struct SharedTranslation {
    /// Name of the underlying problem.
    pub name: String,
    /// The expression context owning all encoded obligations.
    pub ctx: Context,
    /// The shared definitional CNF.
    pub cnf: CnfFormula,
    /// The obligations, selected by assumption.
    pub obligations: Vec<SharedObligation>,
    /// CNF variables of the primary Boolean variables (all obligations).
    pub primary_vars: BTreeMap<Symbol, Var>,
    /// The *e*ij equality variables of the shared CNF (all obligations).
    pub eij_pairs: Vec<(Symbol, Symbol, Var)>,
    /// Whether the obligations were encoded without transitivity constraints.
    pub lazy_transitivity: bool,
    /// Aggregate size statistics (summed over the obligations where
    /// per-obligation, final CNF size otherwise).
    pub stats: TranslationStats,
}

/// Outcome of a verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The design satisfies the Burch–Dill correctness criterion.
    Correct,
    /// The design is buggy; the counterexample falsifies the criterion.
    Buggy(Counterexample),
    /// The back end could not decide within its resource limits.
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict proves correctness.
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }

    /// Whether the verdict exhibits a bug.
    pub fn is_buggy(&self) -> bool {
        matches!(self, Verdict::Buggy(_))
    }

    /// The counterexample, when the design is buggy.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Buggy(cex) => Some(cex),
            _ => None,
        }
    }

    /// Maps an undecided solver result to the uniform `Unknown` verdict —
    /// one spelling for cancellation across every back end, so callers
    /// inspecting race runs or certified outcomes compare a single value.
    ///
    /// # Panics
    ///
    /// Panics when called on a decided result.
    pub(crate) fn undecided(result: &SatResult) -> Verdict {
        match result {
            SatResult::Unknown(velv_sat::StopReason::Cancelled) => {
                Verdict::Unknown("cancelled".to_owned())
            }
            SatResult::Unknown(reason) => Verdict::Unknown(format!("{reason:?}")),
            _ => unreachable!("only called for undecided results"),
        }
    }
}

/// The verification driver: owns the translation options and runs the flow.
#[derive(Clone, Debug, Default)]
pub struct Verifier {
    options: TranslationOptions,
}

impl Verifier {
    /// Creates a verifier with the given translation options.
    pub fn new(options: TranslationOptions) -> Self {
        Verifier { options }
    }

    /// The translation options in use.
    pub fn options(&self) -> &TranslationOptions {
        &self.options
    }

    /// Builds the Burch–Dill correctness problem for a design.
    pub fn build_problem(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
    ) -> VerificationProblem {
        VerificationProblem::build(
            implementation,
            specification,
            &self.options.translation_boxes,
        )
    }

    /// Translates the monolithic correctness criterion of a design.
    pub fn translate(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
    ) -> Translation {
        let problem = self.build_problem(implementation, specification);
        self.translate_problem(&problem)
    }

    /// Translates the monolithic criterion of an already-built problem.
    pub fn translate_problem(&self, problem: &VerificationProblem) -> Translation {
        self.translate_formula_in(
            problem.ctx.clone(),
            problem.criterion,
            &problem.memory_vars,
            problem.name.clone(),
        )
    }

    /// Translates the decomposed (weak) criteria of a problem: at most
    /// `max_obligations` obligations (plus the coverage obligation).
    pub fn translate_obligations(
        &self,
        problem: &VerificationProblem,
        max_obligations: usize,
    ) -> Vec<Translation> {
        let mut ctx = problem.ctx.clone();
        let obligations = decompose(problem, &mut ctx, max_obligations);
        obligations
            .into_iter()
            .map(|o| {
                self.translate_formula_in(
                    ctx.clone(),
                    o.formula,
                    &problem.memory_vars,
                    format!("{}::{}", problem.name, o.name),
                )
            })
            .collect()
    }

    /// Runs the translation pipeline on one formula inside its own context.
    ///
    /// The deep structural recursions of the pipeline (memory elimination, UF
    /// elimination, encoding, CNF generation) are executed on a dedicated
    /// thread with a large stack so that the wide superscalar and VLIW
    /// correctness formulas do not overflow the default thread stack.
    fn translate_formula_in(
        &self,
        ctx: Context,
        criterion: FormulaId,
        memory_vars: &BTreeSet<Symbol>,
        name: String,
    ) -> Translation {
        let this = self.clone();
        let memory_vars = memory_vars.clone();
        // The pipeline runs on its own thread: pick up the caller's span
        // here so the `translate` span nests under it in the trace.
        let parent = velv_obs::current_span_id();
        std::thread::Builder::new()
            .name(format!("velv-translate-{name}"))
            .stack_size(256 * 1024 * 1024)
            .spawn(move || {
                let _span = velv_obs::span_child_of(
                    "translate",
                    parent,
                    &[("formula", name.as_str().into())],
                );
                this.translate_formula_impl(ctx, criterion, &memory_vars, name)
            })
            .expect("spawning the translation thread succeeds")
            .join()
            .expect("the translation thread does not panic")
    }

    /// Stages 1–4 of the pipeline (memory elimination, positive-equality
    /// classification, UF/UP elimination, equation encoding) on one formula,
    /// in place in `ctx`.  Returns the encoded formula plus the statistics
    /// that do not depend on the CNF stage.
    fn eliminate_and_encode(
        &self,
        ctx: &mut Context,
        criterion: FormulaId,
        memory_vars: &BTreeSet<Symbol>,
    ) -> (EncodedFormula, TranslationStats) {
        let eufm_stats = DagStats::of_formula(ctx, criterion);

        // 1. Memory elimination (precise or conservative per options).
        let memless = {
            let _span = velv_obs::span("translate.eliminate_memories");
            let abstract_memories: BTreeSet<Symbol> = self
                .options
                .abstract_memories
                .iter()
                .map(|n| ctx.symbol(n))
                .collect();
            eliminate_memories(ctx, criterion, memory_vars, &abstract_memories)
        };

        // 2. p/g classification (positive equality) of the memory-free formula.
        let mut classification = {
            let _span = velv_obs::span("translate.classify");
            if self.options.positive_equality {
                Classification::from_formula(ctx, memless.formula)
            } else {
                Classification::all_general()
            }
        };

        // 3. UF/UP elimination.
        let eliminated = {
            let _span = velv_obs::span("translate.eliminate_ufs");
            eliminate_ufs(ctx, memless.formula, &self.options, &mut classification)
        };
        // Ackermann constraints (if any) are assumptions of the validity check.
        let to_prove = ctx.implies(eliminated.constraints, eliminated.formula);

        // 4. Encoding of the remaining equations.
        let encoded = {
            let _span = velv_obs::span("translate.encode");
            encode(
                ctx,
                to_prove,
                &classification,
                self.options.encoding,
                self.options.transitivity,
            )
        };

        let mut primary_support = Support::of_formula(ctx, encoded.formula);
        let constraint_support = Support::of_formula(ctx, encoded.side_constraints);
        primary_support
            .prop_vars
            .extend(constraint_support.prop_vars);

        let stats = TranslationStats {
            primary_bool_vars: primary_support.prop_vars.len(),
            eij_vars: encoded.num_eij_vars,
            indexing_vars: encoded.num_indexing_vars,
            g_pairs: encoded.num_g_pairs,
            transitivity_triangles: encoded.num_triangles,
            cnf_vars: 0,
            cnf_clauses: 0,
            eufm_equations: eufm_stats.equations,
            uf_applications: eliminated.introduced_vars.len(),
        };
        (encoded, stats)
    }

    /// Whether the current options produce lazily refined translations.
    fn is_lazy(&self) -> bool {
        self.options.encoding == GEncoding::Eij
            && self.options.transitivity == TransitivityMode::Lazy
    }

    /// Maps the encoder's *e*ij variables (formula nodes) to their CNF
    /// variables; pairs whose variable was simplified out of the CNF are
    /// dropped (they are unconstrained).
    fn map_eij_pairs(
        ctx: &Context,
        encoded_pairs: &[(Symbol, Symbol, FormulaId)],
        primary_vars: &BTreeMap<Symbol, Var>,
    ) -> Vec<(Symbol, Symbol, Var)> {
        encoded_pairs
            .iter()
            .filter_map(|&(x, y, fid)| {
                let sym = match ctx.formula(fid) {
                    velv_eufm::Formula::Var(sym) => *sym,
                    _ => return None,
                };
                primary_vars.get(&sym).map(|&var| (x, y, var))
            })
            .collect()
    }

    fn translate_formula_impl(
        &self,
        mut ctx: Context,
        criterion: FormulaId,
        memory_vars: &BTreeSet<Symbol>,
        name: String,
    ) -> Translation {
        let (encoded, mut stats) = self.eliminate_and_encode(&mut ctx, criterion, memory_vars);

        // 5. CNF generation: side constraints hold, encoded criterion fails.
        let cnf_translation = {
            let _span = velv_obs::span("translate.cnf");
            formula_to_cnf(
                &ctx,
                &[(encoded.side_constraints, true), (encoded.formula, false)],
            )
        };
        velv_obs::global()
            .counter(
                "velv_core_translations_total",
                "EUFM formulas translated to CNF.",
            )
            .inc();
        stats.cnf_vars = cnf_translation.cnf.num_vars();
        stats.cnf_clauses = cnf_translation.cnf.num_clauses();

        let eij_pairs =
            Self::map_eij_pairs(&ctx, &encoded.eij_pairs, &cnf_translation.primary_vars);
        Translation {
            name,
            ctx,
            encoded: encoded.formula,
            side_constraints: encoded.side_constraints,
            cnf: cnf_translation.cnf,
            primary_vars: cnf_translation.primary_vars,
            eij_pairs,
            lazy_transitivity: self.is_lazy(),
            stats,
        }
    }

    /// Translates the decomposed criteria of a problem into one shared CNF
    /// (see [`SharedTranslation`]): every obligation runs through the full
    /// pipeline inside one context, and one persistent [`CnfBuilder`] emits
    /// the definitional clauses, so identical subformulas across obligations
    /// are translated exactly once.
    pub fn translate_obligations_shared(
        &self,
        problem: &VerificationProblem,
        max_obligations: usize,
    ) -> SharedTranslation {
        let this = self.clone();
        let problem = problem.clone();
        let parent = velv_obs::current_span_id();
        std::thread::Builder::new()
            .name(format!("velv-translate-shared-{}", problem.name))
            .stack_size(256 * 1024 * 1024)
            .spawn(move || {
                let _span = velv_obs::span_child_of(
                    "translate.shared",
                    parent,
                    &[("problem", problem.name.as_str().into())],
                );
                this.translate_obligations_shared_impl(&problem, max_obligations)
            })
            .expect("spawning the translation thread succeeds")
            .join()
            .expect("the translation thread does not panic")
    }

    fn translate_obligations_shared_impl(
        &self,
        problem: &VerificationProblem,
        max_obligations: usize,
    ) -> SharedTranslation {
        let mut ctx = problem.ctx.clone();
        let obligations = decompose(problem, &mut ctx, max_obligations);
        let entries: Vec<(String, FormulaId, BTreeSet<Symbol>)> = obligations
            .into_iter()
            .map(|o| {
                (
                    format!("{}::{}", problem.name, o.name),
                    o.formula,
                    problem.memory_vars.clone(),
                )
            })
            .collect();
        self.shared_translation_over(ctx, problem.name.clone(), entries)
    }

    /// Shared translation core: runs every `(name, criterion, memory_vars)`
    /// entry through the full pipeline inside `ctx` and emits the definitional
    /// clauses into one persistent [`CnfBuilder`], so identical subformulas
    /// across the entries are translated exactly once.  The resulting
    /// obligations select each entry by assumption, in entry order.
    fn shared_translation_over(
        &self,
        mut ctx: Context,
        name: String,
        entries: Vec<(String, FormulaId, BTreeSet<Symbol>)>,
    ) -> SharedTranslation {
        let _span = velv_obs::span_fields(
            "translate",
            &[
                ("formula", name.as_str().into()),
                ("obligations", entries.len().into()),
            ],
        );
        velv_obs::global()
            .counter(
                "velv_core_translations_total",
                "EUFM formulas translated to CNF.",
            )
            .inc();
        let mut builder = CnfBuilder::new();
        let mut shared_obligations = Vec::new();
        let mut eij_map: BTreeMap<(Symbol, Symbol), Var> = BTreeMap::new();
        let mut stats = TranslationStats::default();
        for (entry_name, criterion, memory_vars) in entries {
            let (encoded, obligation_stats) =
                self.eliminate_and_encode(&mut ctx, criterion, &memory_vars);
            stats.primary_bool_vars += obligation_stats.primary_bool_vars;
            stats.eij_vars += obligation_stats.eij_vars;
            stats.indexing_vars += obligation_stats.indexing_vars;
            stats.g_pairs += obligation_stats.g_pairs;
            stats.transitivity_triangles += obligation_stats.transitivity_triangles;
            stats.eufm_equations += obligation_stats.eufm_equations;
            stats.uf_applications += obligation_stats.uf_applications;
            // Definitional clauses only: the roots are *assumed*, not
            // asserted, so the shared CNF serves every obligation.
            let side_lit = builder.literal(&ctx, encoded.side_constraints);
            let encoded_lit = builder.literal(&ctx, encoded.formula);
            for (x, y, var) in Self::map_eij_pairs(&ctx, &encoded.eij_pairs, builder.primary_vars())
            {
                eij_map.entry(crate::encode::ordered(x, y)).or_insert(var);
            }
            shared_obligations.push(SharedObligation {
                name: entry_name,
                assumptions: vec![side_lit, !encoded_lit],
                encoded: encoded.formula,
                side_constraints: encoded.side_constraints,
            });
        }
        let translation = builder.finish();
        stats.cnf_vars = translation.cnf.num_vars();
        stats.cnf_clauses = translation.cnf.num_clauses();
        SharedTranslation {
            name,
            ctx,
            cnf: translation.cnf,
            obligations: shared_obligations,
            primary_vars: translation.primary_vars,
            eij_pairs: eij_map
                .into_iter()
                .map(|((x, y), var)| (x, y, var))
                .collect(),
            lazy_transitivity: self.is_lazy(),
            stats,
        }
    }

    /// Translates a whole *batch* of independently built problems — e.g. a
    /// bug catalog sweep, where every entry is a different implementation of
    /// the same design — into one shared definitional CNF over one context.
    ///
    /// Every problem's monolithic criterion is deep-copied into a fresh
    /// shared context with [`velv_eufm::import_formula`]; hash-consing then
    /// unifies the pipeline logic the entries have in common (the unmodified
    /// stages of a buggy variant are structurally identical to the correct
    /// design's), so shared subformulas are translated once and one
    /// persistent [`IncrementalSolver`] can decide every entry by assumption
    /// while carrying its learned clauses across the batch.  Obligation `i`
    /// of the result corresponds to `problems[i]`.
    ///
    /// This is the batch-scheduling back end of `velv_serve`; single-design
    /// decomposition should keep using
    /// [`Verifier::translate_obligations_shared`].
    pub fn translate_batch_shared(&self, problems: &[&VerificationProblem]) -> SharedTranslation {
        let parent = velv_obs::current_span_id();
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("velv-translate-batch".to_owned())
                .stack_size(256 * 1024 * 1024)
                .spawn_scoped(scope, || {
                    let _span = velv_obs::span_child_of(
                        "translate.batch",
                        parent,
                        &[("problems", problems.len().into())],
                    );
                    self.translate_batch_shared_impl(problems)
                })
                .expect("spawning the translation thread succeeds")
                .join()
                .expect("the translation thread does not panic")
        })
    }

    fn translate_batch_shared_impl(&self, problems: &[&VerificationProblem]) -> SharedTranslation {
        let mut ctx = Context::new();
        let mut entries = Vec::with_capacity(problems.len());
        for (index, problem) in problems.iter().enumerate() {
            let criterion = velv_eufm::import_formula(&mut ctx, &problem.ctx, problem.criterion);
            let memory_vars: BTreeSet<Symbol> = problem
                .memory_vars
                .iter()
                .map(|&sym| ctx.symbol(problem.ctx.symbol_name(sym)))
                .collect();
            entries.push((format!("{}#{index}", problem.name), criterion, memory_vars));
        }
        self.shared_translation_over(ctx, format!("batch({})", problems.len()), entries)
    }

    /// Checks a translation with a SAT back end.
    ///
    /// Lazily encoded translations (see
    /// [`crate::TransitivityMode::Lazy`]) are routed through the
    /// model-driven refinement loop, which re-solves a growing CNF with the
    /// given solver until the verdict is transitivity-consistent; use
    /// [`Verifier::check_incremental`] to run the same loop on a persistent
    /// incremental engine instead.
    pub fn check(
        &self,
        translation: &Translation,
        solver: &mut dyn Solver,
        budget: Budget,
    ) -> Verdict {
        if translation.lazy_transitivity {
            return refine::check_with_refinement_monolithic(translation, solver, budget).0;
        }
        sat_verdict(
            translation,
            solver.solve_with_budget(&translation.cnf, budget),
        )
    }

    /// Checks a translation with a fresh persistent [`IncrementalSolver`]
    /// built from `config`: for lazily encoded translations the refinement
    /// loop asserts violated transitivity constraints into the live engine
    /// (keeping all learned clauses); for eager translations this is a
    /// single solver call.  Returns the verdict together with the refinement
    /// statistics.
    pub fn check_incremental(
        &self,
        translation: &Translation,
        config: CdclConfig,
        budget: Budget,
    ) -> (Verdict, RefinementStats) {
        refine::check_incremental(translation, config, budget)
    }

    /// Checks every obligation of a [`SharedTranslation`] with one
    /// persistent [`IncrementalSolver`]: the shared definitional CNF is
    /// loaded once, each obligation is selected by assumption, and learned
    /// clauses carry over from one obligation to the next.  Lazily encoded
    /// obligations are refined in place — transitivity constraints are valid
    /// for every obligation, so the clauses asserted while refining one
    /// remain for all later ones.
    ///
    /// Returns the overall verdict (correct iff every obligation is correct,
    /// buggy as soon as one is falsified), the per-obligation verdicts, and
    /// the aggregate refinement statistics.
    pub fn check_shared(
        &self,
        shared: &SharedTranslation,
        config: CdclConfig,
        budget: Budget,
    ) -> (Verdict, Vec<(String, Verdict)>, RefinementStats) {
        let mut solver = IncrementalSolver::with_formula(config, &shared.cnf);
        self.check_shared_with(shared, &mut solver, budget)
    }

    /// [`Verifier::check_shared`] on a caller-supplied solver (which may
    /// already hold clauses from earlier runs of the same shared CNF).
    pub fn check_shared_with(
        &self,
        shared: &SharedTranslation,
        solver: &mut IncrementalSolver,
        budget: Budget,
    ) -> (Verdict, Vec<(String, Verdict)>, RefinementStats) {
        // Resolve the relative time limit once: the deadline then bounds the
        // whole run, while each obligation's refinement loop charges the
        // step budgets internally (per obligation, matching the
        // per-obligation budgets of `verify_decomposed`).
        let mut resolved = budget.started();
        resolved.max_time = None;
        let budgets = vec![resolved; shared.obligations.len()];
        let (results, stats) = self.check_shared_each(shared, solver, &budgets);
        let mut overall = Verdict::Correct;
        for (_, verdict) in &results {
            if verdict.is_buggy() && !overall.is_buggy() {
                overall = verdict.clone();
            }
            if let Verdict::Unknown(reason) = verdict {
                if overall.is_correct() {
                    overall = Verdict::Unknown(reason.clone());
                }
            }
        }
        (overall, results, stats)
    }

    /// [`Verifier::check_shared_with`] with one [`Budget`] *per obligation*:
    /// obligation `i` is checked under `budgets[i]` (its own deadline and
    /// cancel token), so a scheduler multiplexing independent jobs onto one
    /// shared incremental session — `velv_serve`'s batch path — can enforce
    /// per-job limits and skip jobs whose clients have gone away without
    /// abandoning the rest of the batch.  A cancelled or expired budget
    /// yields `Unknown` for that obligation only.
    ///
    /// # Panics
    ///
    /// Panics when `budgets.len()` differs from the number of obligations.
    pub fn check_shared_each(
        &self,
        shared: &SharedTranslation,
        solver: &mut IncrementalSolver,
        budgets: &[Budget],
    ) -> (Vec<(String, Verdict)>, RefinementStats) {
        assert_eq!(
            budgets.len(),
            shared.obligations.len(),
            "one budget per obligation"
        );
        let mut results = Vec::new();
        let mut stats = RefinementStats::default();
        for (obligation, budget) in shared.obligations.iter().zip(budgets) {
            let mut resolved = budget.clone().started();
            resolved.max_time = None;
            // An obligation whose budget is already spent (typically: every
            // client of a batch entry disconnected and its cancel token is
            // raised) is skipped without touching the solver at all.
            if let Some(reason) = resolved.exceeded() {
                results.push((
                    obligation.name.clone(),
                    Verdict::undecided(&SatResult::Unknown(reason)),
                ));
                continue;
            }
            let mut driver = refine::IncrementalDriver {
                solver,
                assumptions: obligation.assumptions.clone(),
            };
            let result = refine::refinement_loop(
                &shared.eij_pairs,
                shared.lazy_transitivity,
                &resolved,
                &mut stats,
                &mut driver,
            );
            let verdict = match &result {
                SatResult::Unsat => Verdict::Correct,
                SatResult::Sat(model) => Verdict::Buggy(Counterexample::from_model(
                    &shared.ctx,
                    &shared.primary_vars,
                    model,
                )),
                other => Verdict::undecided(other),
            };
            results.push((obligation.name.clone(), verdict));
        }
        (results, stats)
    }

    /// Checks a translation and *certifies* the verdict per `certify`: an
    /// UNSAT answer carries a DRAT proof replayed by the independent checker
    /// of `velv_proof` against the exact CNF that was solved (including every
    /// clause the lazy transitivity refinement asserted), and a SAT answer is
    /// validated as a genuine counterexample — the model must satisfy the
    /// solved CNF, be transitivity-consistent over the *e*ij variables, and
    /// falsify the encoded correctness formula under true side constraints
    /// when re-evaluated with `velv_eufm::eval`.
    ///
    /// # Errors
    ///
    /// Returns a [`CertifyError`] when the evidence does not hold up — a
    /// rejected proof or a spurious model.  Such a verdict must not be
    /// trusted.
    pub fn check_certified(
        &self,
        translation: &Translation,
        config: CdclConfig,
        certify: &CertifyOptions,
        budget: Budget,
    ) -> Result<(CertifiedVerdict, RefinementStats), CertifyError> {
        certify::check_certified(translation, config, certify, budget)
    }

    /// [`Verifier::check_shared`] with certification: every obligation of the
    /// shared translation is checked on one persistent proof-logging solver,
    /// the accumulated DRAT log is replayed once by the independent checker,
    /// and each UNSAT obligation is certified by its terminal step — the
    /// clause over that obligation's negated assumptions.  SAT obligations
    /// get the same model validation as [`Verifier::check_certified`].
    ///
    /// # Errors
    ///
    /// Returns a [`CertifyError`] when any obligation's evidence fails.
    pub fn check_shared_certified(
        &self,
        shared: &SharedTranslation,
        config: CdclConfig,
        certify: &CertifyOptions,
        budget: Budget,
    ) -> Result<SharedCertifiedOutcome, CertifyError> {
        certify::check_shared_certified(shared, config, certify, budget)
    }

    /// End-to-end certified verification: translate, check, certify.
    ///
    /// # Errors
    ///
    /// See [`Verifier::check_certified`].
    pub fn verify_certified(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        config: CdclConfig,
        certify: &CertifyOptions,
        budget: Budget,
    ) -> Result<(CertifiedVerdict, RefinementStats), CertifyError> {
        let translation = self.translate(implementation, specification);
        self.check_certified(&translation, config, certify, budget)
    }

    /// Checks a translation with the BDD back end.
    ///
    /// Lazily encoded translations are refused (see [`race_backends`]): the
    /// BDD build cannot iterate the refinement loop, so its falsifiable
    /// answers could be spurious.
    pub fn check_with_bdds(&self, translation: &Translation, node_limit: usize) -> Verdict {
        if translation.lazy_transitivity {
            return Verdict::Unknown(
                "lazy transitivity requires the refinement loop; \
                 use a SAT back end or Verifier::check_incremental"
                    .to_owned(),
            );
        }
        let translation = translation.clone();
        std::thread::Builder::new()
            .name("velv-bdd-backend".to_owned())
            .stack_size(256 * 1024 * 1024)
            .spawn(move || Self::check_with_bdds_impl(&translation, node_limit))
            .expect("spawning the BDD back-end thread succeeds")
            .join()
            .expect("the BDD back-end thread does not panic")
    }

    fn check_with_bdds_impl(translation: &Translation, node_limit: usize) -> Verdict {
        let outcome = check_validity_with_bdds(
            &translation.ctx,
            translation.encoded,
            translation.side_constraints,
            node_limit,
        );
        bdd_verdict(translation, outcome)
    }

    /// Checks a translation with any [`Backend`]: a SAT preset, the BDD back
    /// end, or a portfolio racing several of them.
    pub fn check_with_backend(
        &self,
        translation: &Translation,
        backend: &Backend,
        budget: Budget,
    ) -> Verdict {
        match backend {
            Backend::Sat(kind) => {
                let mut solver = kind.build();
                self.check(translation, solver.as_mut(), budget)
            }
            // A single-member "race": the collector loop is what forwards the
            // budget's deadline and outer cancel token into the BDD build, so
            // a stand-alone BDD check honours the budget exactly like the
            // portfolio path does.
            Backend::Bdd { .. } => {
                self.check_portfolio(translation, std::slice::from_ref(backend), budget)
                    .verdict
            }
            Backend::Portfolio(members) => {
                self.check_portfolio(translation, members, budget).verdict
            }
        }
    }

    /// Races the given back ends against one translated obligation; the first
    /// decided verdict wins and the losers are cancelled cooperatively.
    pub fn check_portfolio(
        &self,
        translation: &Translation,
        members: &[Backend],
        budget: Budget,
    ) -> PortfolioOutcome {
        race_backends(translation, members, budget)
    }

    /// End-to-end verification with an arbitrary [`Backend`].
    pub fn verify_with_backend(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        backend: &Backend,
        budget: Budget,
    ) -> Verdict {
        let translation = self.translate(implementation, specification);
        self.check_with_backend(&translation, backend, budget)
    }

    /// End-to-end portfolio verification: translates once, then races the
    /// back ends (CDCL presets against the BDD build, in the default
    /// configuration) and reports the winner alongside the per-member runs.
    pub fn verify_portfolio(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        members: &[Backend],
        budget: Budget,
    ) -> PortfolioOutcome {
        let translation = self.translate(implementation, specification);
        self.check_portfolio(&translation, members, budget)
    }

    /// End-to-end verification with a SAT back end and no resource limits.
    pub fn verify(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        solver: &mut dyn Solver,
    ) -> Verdict {
        self.verify_with_budget(implementation, specification, solver, Budget::unlimited())
    }

    /// End-to-end verification with a SAT back end and a resource budget.
    pub fn verify_with_budget(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        solver: &mut dyn Solver,
        budget: Budget,
    ) -> Verdict {
        let translation = self.translate(implementation, specification);
        self.check(&translation, solver, budget)
    }

    /// Convenience: decomposed verification.  Returns the per-obligation
    /// verdicts; the design is correct when every obligation is correct, and
    /// buggy as soon as one obligation is falsified.
    pub fn verify_decomposed(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        max_obligations: usize,
        mut make_solver: impl FnMut() -> Box<dyn Solver>,
        budget: Budget,
    ) -> (Verdict, Vec<(String, Verdict)>) {
        let problem = self.build_problem(implementation, specification);
        let translations = self.translate_obligations(&problem, max_obligations);
        let mut results = Vec::new();
        let mut overall = Verdict::Correct;
        for translation in &translations {
            let mut solver = make_solver();
            let verdict = self.check(translation, solver.as_mut(), budget.clone());
            if verdict.is_buggy() && !overall.is_buggy() {
                overall = verdict.clone();
            }
            if let Verdict::Unknown(reason) = &verdict {
                if overall.is_correct() {
                    overall = Verdict::Unknown(reason.clone());
                }
            }
            results.push((translation.name.clone(), verdict));
        }
        (overall, results)
    }

    /// Decomposed verification on one shared solver instance: the weak
    /// criteria are translated into a single CNF
    /// ([`Verifier::translate_obligations_shared`]) and checked by one
    /// persistent incremental engine ([`Verifier::check_shared`]), so the
    /// clauses and learned facts common to the obligations are processed
    /// once instead of once per obligation.
    pub fn verify_decomposed_shared(
        &self,
        implementation: &dyn Processor,
        specification: &dyn Processor,
        max_obligations: usize,
        config: CdclConfig,
        budget: Budget,
    ) -> (Verdict, Vec<(String, Verdict)>) {
        let problem = self.build_problem(implementation, specification);
        let shared = self.translate_obligations_shared(&problem, max_obligations);
        let (overall, results, _) = self.check_shared(&shared, config, budget);
        (overall, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_models::{PipelinedToy, ToyBug, ToySpec};
    use velv_sat::cdcl::CdclSolver;

    #[test]
    fn correct_design_verifies() {
        let verifier = Verifier::new(TranslationOptions::default());
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&PipelinedToy::correct(), &ToySpec, &mut solver);
        assert!(verdict.is_correct(), "got {verdict:?}");
    }

    #[test]
    fn buggy_designs_are_refuted_with_counterexamples() {
        let verifier = Verifier::new(TranslationOptions::default());
        for bug in [ToyBug::ForwardingIgnoresValid, ToyBug::WritesWrongData] {
            let mut solver = CdclSolver::chaff();
            let verdict = verifier.verify(&PipelinedToy::buggy(bug), &ToySpec, &mut solver);
            assert!(verdict.is_buggy(), "bug {bug:?}: got {verdict:?}");
            assert!(verdict.counterexample().is_some());
        }
    }

    #[test]
    fn translation_reports_statistics() {
        let verifier = Verifier::new(TranslationOptions::default());
        let translation = verifier.translate(&PipelinedToy::correct(), &ToySpec);
        assert!(translation.stats.cnf_vars > 0);
        assert!(translation.stats.cnf_clauses > 0);
        assert!(translation.stats.eufm_equations > 0);
        assert!(translation.stats.primary_bool_vars > 0);
        assert!(translation.stats.uf_applications > 0);
    }

    #[test]
    fn all_structural_variations_agree_on_the_verdict() {
        for (name, options) in TranslationOptions::structural_variations() {
            let verifier = Verifier::new(options);
            let mut solver = CdclSolver::chaff();
            let ok = verifier.verify(&PipelinedToy::correct(), &ToySpec, &mut solver);
            assert!(ok.is_correct(), "variation {name}: {ok:?}");
            let mut solver = CdclSolver::chaff();
            let bad = verifier.verify(
                &PipelinedToy::buggy(ToyBug::ForwardingIgnoresValid),
                &ToySpec,
                &mut solver,
            );
            assert!(bad.is_buggy(), "variation {name}: {bad:?}");
        }
    }

    #[test]
    fn both_encodings_agree_on_the_verdict() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_small_domain(),
        ] {
            let verifier = Verifier::new(options);
            let mut solver = CdclSolver::chaff();
            assert!(verifier
                .verify(&PipelinedToy::correct(), &ToySpec, &mut solver)
                .is_correct());
            let mut solver = CdclSolver::chaff();
            assert!(verifier
                .verify(
                    &PipelinedToy::buggy(ToyBug::WritesWrongData),
                    &ToySpec,
                    &mut solver
                )
                .is_buggy());
        }
    }

    #[test]
    fn disabling_positive_equality_preserves_the_verdict() {
        let verifier = Verifier::new(TranslationOptions::default().without_positive_equality());
        let mut solver = CdclSolver::chaff();
        assert!(verifier
            .verify(&PipelinedToy::correct(), &ToySpec, &mut solver)
            .is_correct());
        let mut solver = CdclSolver::chaff();
        assert!(verifier
            .verify(
                &PipelinedToy::buggy(ToyBug::WritesWrongData),
                &ToySpec,
                &mut solver
            )
            .is_buggy());
    }

    #[test]
    fn disabling_positive_equality_increases_primary_variables() {
        let with = Verifier::new(TranslationOptions::default());
        let without = Verifier::new(TranslationOptions::default().without_positive_equality());
        let t_with = with.translate(&PipelinedToy::correct(), &ToySpec);
        let t_without = without.translate(&PipelinedToy::correct(), &ToySpec);
        assert!(
            t_without.stats.eij_vars > t_with.stats.eij_vars,
            "treating every term variable as general must add eij variables ({} vs {})",
            t_without.stats.eij_vars,
            t_with.stats.eij_vars
        );
    }

    #[test]
    fn bdd_back_end_agrees() {
        let verifier = Verifier::new(TranslationOptions::default());
        let good = verifier.translate(&PipelinedToy::correct(), &ToySpec);
        assert!(verifier.check_with_bdds(&good, 1 << 22).is_correct());
        let bad = verifier.translate(&PipelinedToy::buggy(ToyBug::WritesWrongData), &ToySpec);
        assert!(verifier.check_with_bdds(&bad, 1 << 22).is_buggy());
    }

    #[test]
    fn lazy_transitivity_agrees_with_eager_on_the_toy_models() {
        let eager = Verifier::new(TranslationOptions::default());
        let lazy = Verifier::new(TranslationOptions::default().with_lazy_transitivity());
        let mut solver = CdclSolver::chaff();
        assert!(lazy
            .verify(&PipelinedToy::correct(), &ToySpec, &mut solver)
            .is_correct());
        for bug in [ToyBug::ForwardingIgnoresValid, ToyBug::WritesWrongData] {
            let eager_translation = eager.translate(&PipelinedToy::buggy(bug), &ToySpec);
            let lazy_translation = lazy.translate(&PipelinedToy::buggy(bug), &ToySpec);
            assert!(!eager_translation.lazy_transitivity);
            assert!(lazy_translation.lazy_transitivity);
            assert!(
                lazy_translation.stats.transitivity_triangles == 0,
                "lazy encoding emits no triangles"
            );
            let mut solver = CdclSolver::chaff();
            let eager_verdict = eager.check(
                &eager_translation,
                &mut solver,
                velv_sat::Budget::unlimited(),
            );
            let mut solver = CdclSolver::chaff();
            let lazy_verdict = lazy.check(
                &lazy_translation,
                &mut solver,
                velv_sat::Budget::unlimited(),
            );
            assert_eq!(
                eager_verdict.is_buggy(),
                lazy_verdict.is_buggy(),
                "bug {bug:?}"
            );
            assert!(lazy_verdict.is_buggy(), "bug {bug:?}: {lazy_verdict:?}");
        }
    }

    #[test]
    fn lazy_incremental_check_agrees_and_reports_stats() {
        let lazy = Verifier::new(
            TranslationOptions::default()
                .without_positive_equality()
                .with_lazy_transitivity(),
        );
        let good = lazy.translate(&PipelinedToy::correct(), &ToySpec);
        let (verdict, stats) = lazy.check_incremental(
            &good,
            velv_sat::cdcl::CdclConfig::chaff(),
            velv_sat::Budget::unlimited(),
        );
        assert!(verdict.is_correct(), "{verdict:?}");
        assert!(stats.iterations >= 1);
        let bad = lazy.translate(&PipelinedToy::buggy(ToyBug::WritesWrongData), &ToySpec);
        let (verdict, _) = lazy.check_incremental(
            &bad,
            velv_sat::cdcl::CdclConfig::chaff(),
            velv_sat::Budget::unlimited(),
        );
        assert!(verdict.is_buggy(), "{verdict:?}");
        assert!(verdict.counterexample().is_some());
    }

    #[test]
    fn shared_decomposition_matches_per_obligation_decomposition() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_lazy_transitivity(),
        ] {
            let verifier = Verifier::new(options);
            let (overall, parts) = verifier.verify_decomposed_shared(
                &PipelinedToy::correct(),
                &ToySpec,
                8,
                velv_sat::cdcl::CdclConfig::chaff(),
                Budget::unlimited(),
            );
            assert!(overall.is_correct(), "got {overall:?}");
            assert!(!parts.is_empty());
            assert!(parts.iter().all(|(_, v)| v.is_correct()));
            let (overall, parts) = verifier.verify_decomposed_shared(
                &PipelinedToy::buggy(ToyBug::WritesWrongData),
                &ToySpec,
                8,
                velv_sat::cdcl::CdclConfig::chaff(),
                Budget::unlimited(),
            );
            assert!(overall.is_buggy(), "got {overall:?}");
            assert!(parts.iter().any(|(_, v)| v.is_buggy()));
        }
    }

    #[test]
    fn shared_translation_is_definitional() {
        // With no obligation asserted the shared CNF must be satisfiable —
        // it contains Tseitin definitions only.
        let verifier = Verifier::new(TranslationOptions::default());
        let problem = verifier.build_problem(&PipelinedToy::correct(), &ToySpec);
        let shared = verifier.translate_obligations_shared(&problem, 8);
        assert!(!shared.obligations.is_empty());
        let mut solver = CdclSolver::chaff();
        assert!(solver.solve(&shared.cnf).is_sat());
        // And the obligations must cover at least the coverage obligation
        // plus one group per instruction count.
        assert!(shared.obligations[0].name.contains("coverage"));
        assert!(shared.stats.cnf_clauses > 0);
    }

    #[test]
    fn batch_shared_translation_matches_per_problem_checks() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_lazy_transitivity(),
        ] {
            let verifier = Verifier::new(options);
            let problems = [
                verifier.build_problem(&PipelinedToy::correct(), &ToySpec),
                verifier.build_problem(&PipelinedToy::buggy(ToyBug::WritesWrongData), &ToySpec),
                verifier.build_problem(
                    &PipelinedToy::buggy(ToyBug::ForwardingIgnoresValid),
                    &ToySpec,
                ),
                // A duplicate of the first entry: its obligation must reuse
                // the shared structure and agree with it.
                verifier.build_problem(&PipelinedToy::correct(), &ToySpec),
            ];
            let refs: Vec<&VerificationProblem> = problems.iter().collect();
            let shared = verifier.translate_batch_shared(&refs);
            assert_eq!(shared.obligations.len(), problems.len());
            let mut solver = IncrementalSolver::with_formula(CdclConfig::chaff(), &shared.cnf);
            let budgets = vec![Budget::unlimited(); problems.len()];
            let (results, _) = verifier.check_shared_each(&shared, &mut solver, &budgets);
            assert!(results[0].1.is_correct(), "{:?}", results[0]);
            assert!(results[1].1.is_buggy(), "{:?}", results[1]);
            assert!(results[2].1.is_buggy(), "{:?}", results[2]);
            assert!(results[3].1.is_correct(), "{:?}", results[3]);
        }
    }

    #[test]
    fn batch_entries_share_translated_structure() {
        // Two catalog variants of the same design share most of their
        // pipeline logic; the batch CNF must be far smaller than the sum of
        // the two independent translations.
        let verifier = Verifier::new(TranslationOptions::default());
        let good = verifier.build_problem(&PipelinedToy::correct(), &ToySpec);
        let bad = verifier.build_problem(&PipelinedToy::buggy(ToyBug::WritesWrongData), &ToySpec);
        let solo_good = verifier.translate_batch_shared(&[&good]);
        let solo_bad = verifier.translate_batch_shared(&[&bad]);
        let shared = verifier.translate_batch_shared(&[&good, &bad]);
        let solo_sum = solo_good.stats.cnf_clauses + solo_bad.stats.cnf_clauses;
        assert!(
            shared.stats.cnf_clauses < solo_sum,
            "shared batch CNF ({}) must undercut the independent sum ({})",
            shared.stats.cnf_clauses,
            solo_sum
        );
        // A cancelled per-entry budget skips only that entry.
        let token = velv_sat::CancelToken::new();
        token.cancel();
        let mut solver = IncrementalSolver::with_formula(CdclConfig::chaff(), &shared.cnf);
        let budgets = vec![Budget::unlimited().with_cancel(token), Budget::unlimited()];
        let (results, _) = verifier.check_shared_each(&shared, &mut solver, &budgets);
        assert!(matches!(results[0].1, Verdict::Unknown(_)));
        assert!(results[1].1.is_buggy());
    }

    #[test]
    fn decomposed_verification_matches_monolithic() {
        let verifier = Verifier::new(TranslationOptions::default());
        let (overall, parts) = verifier.verify_decomposed(
            &PipelinedToy::correct(),
            &ToySpec,
            8,
            || Box::new(CdclSolver::chaff()),
            Budget::unlimited(),
        );
        assert!(overall.is_correct(), "got {overall:?}");
        assert!(!parts.is_empty());
        let (overall, _) = verifier.verify_decomposed(
            &PipelinedToy::buggy(ToyBug::WritesWrongData),
            &ToySpec,
            8,
            || Box::new(CdclSolver::chaff()),
            Budget::unlimited(),
        );
        assert!(overall.is_buggy());
    }
}
