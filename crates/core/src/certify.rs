//! Certified verdicts: every answer of the verification flow backed by an
//! independently checkable artifact.
//!
//! The paper's thesis is that SAT procedures can be *trusted* to discharge
//! the Burch–Dill correctness formulas — but a bare `Correct`/`Buggy` verdict
//! still asks the user to trust the CDCL engine, the incremental session and
//! the whole *e*ij/lazy-transitivity translation machinery.  This module
//! closes the gap on both poles:
//!
//! * **UNSAT (the design is correct).**  The solver runs with a DRAT sink
//!   attached (see `velv_sat::proof`), and the recorded proof is replayed by
//!   the independent forward RUP checker of `velv_proof` against the *exact*
//!   CNF that was solved: the translation's clauses plus every transitivity
//!   clause asserted by the lazy refinement loop (captured through the
//!   solver's iCNF trace).  A monolithic refutation must end in the empty
//!   clause; an assumption-selected obligation of a shared translation must
//!   end in a clause over its negated assumptions.
//! * **SAT (the design is buggy).**  The model is checked against every
//!   clause handed to the solver, its *e*ij assignment is re-checked for
//!   transitivity consistency (so it lifts to a genuine equality
//!   interpretation — the Bryant–German–Velev direction: one value per
//!   connected component of true equality edges), and the counterexample is
//!   lifted into a `velv_eufm` interpretation (the primary-variable
//!   assignment of [`Counterexample::from_model`] plus one term value per
//!   equality class) under which the encoded correctness formula must
//!   evaluate to *false* while the side constraints evaluate to *true*.
//!
//! What remains trusted is deliberately small: the EUFM → CNF translation
//! capture, the tiny RUP checker and the EUFM evaluator.  The search — with
//! its heuristics, restarts, clause database management, garbage collection
//! and incremental scope machinery — is entirely outside the trusted base.

use crate::counterexample::Counterexample;
use crate::flow::{SharedTranslation, Translation, Verdict};
use crate::options::CertifyOptions;
use crate::refine::{self, IncrementalDriver};
use crate::stats::RefinementStats;
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};
use velv_eufm::{Context, FormulaId, Interpretation, Symbol};
use velv_proof::{check_proof, CheckOptions, Proof};
use velv_sat::cdcl::CdclConfig;
use velv_sat::dimacs::{clause_to_dimacs_i32, cnf_to_dimacs_i32, IcnfEvent};
use velv_sat::solver::verify_model;
use velv_sat::{Budget, CnfFormula, IncrementalSolver, Lit, Model, SatResult, Var};

/// The evidence attached to a certified verdict.
#[derive(Clone, Debug)]
pub enum Certificate {
    /// An UNSAT verdict with its proof replayed by the independent checker.
    Unsat(ProofCertificate),
    /// A SAT verdict with its model validated against the original formula.
    Sat(ModelCertificate),
    /// Nothing was checked (undecided verdict, or the corresponding
    /// [`CertifyOptions`] switch is off); the string says why.
    Unchecked(String),
}

impl Certificate {
    /// Whether this certificate carries checked evidence.
    pub fn is_checked(&self) -> bool {
        !matches!(self, Certificate::Unchecked(_))
    }
}

/// Evidence of a checked refutation.
#[derive(Clone, Debug)]
pub struct ProofCertificate {
    /// Steps of the recorded DRAT proof.
    pub proof_steps: usize,
    /// Clauses the proof was checked against (translation CNF plus clauses
    /// added during refinement).
    pub checked_clauses: usize,
    /// Clauses asserted by the lazy transitivity refinement loop (part of
    /// `checked_clauses`).
    pub refinement_clauses: usize,
    /// Index of this verdict's terminal proof step (the empty clause, or the
    /// clause over the negated obligation assumptions).
    pub terminal_step: usize,
    /// Size of the used input-clause core (with
    /// [`CertifyOptions::trim_proofs`]).  For shared runs the core is
    /// session-wide: the union over every obligation's terminal step.
    pub input_core_size: Option<usize>,
    /// Addition steps surviving backward trimming (with
    /// [`CertifyOptions::trim_proofs`]).
    pub trimmed_steps: Option<usize>,
    /// Wall-clock time the checker spent replaying the proof.
    pub check_time: Duration,
}

/// Evidence of a validated counterexample.
#[derive(Clone, Debug)]
pub struct ModelCertificate {
    /// Clauses of the solved CNF the model was checked against.
    pub checked_clauses: usize,
    /// Primary variables assigned by the counterexample.
    pub primary_assignments: usize,
    /// Equality classes of the lifted interpretation (connected components of
    /// the true *e*ij edges).
    pub equality_classes: usize,
    /// Wall-clock time of the validation.
    pub check_time: Duration,
}

/// A verdict together with its certification evidence.
#[derive(Clone, Debug)]
pub struct CertifiedVerdict {
    /// The verdict.
    pub verdict: Verdict,
    /// The evidence backing it.
    pub certificate: Certificate,
}

/// One certified obligation of a shared (assumption-selected) run.
#[derive(Clone, Debug)]
pub struct CertifiedObligation {
    /// Obligation name (`problem::obligation`).
    pub name: String,
    /// The certified verdict of this obligation.
    pub certified: CertifiedVerdict,
}

/// Outcome of a certified shared-decomposition run.
#[derive(Clone, Debug)]
pub struct SharedCertifiedOutcome {
    /// Overall verdict: correct iff every obligation is correct, buggy as
    /// soon as one obligation is falsified.
    pub overall: Verdict,
    /// The per-obligation certified verdicts.
    pub obligations: Vec<CertifiedObligation>,
    /// Aggregate refinement statistics.
    pub stats: RefinementStats,
}

/// Why certification failed.  A failure means the verdict could *not* be
/// backed by evidence — either the solver produced a bogus artifact or the
/// translation layers disagree — and must not be trusted.
#[derive(Clone, Debug)]
pub enum CertifyError {
    /// The independent checker rejected the recorded proof.
    ProofRejected {
        /// Name of the translation or obligation being certified.
        name: String,
        /// The checker's complaint.
        detail: String,
    },
    /// The proof checked, but its terminal step does not certify this
    /// verdict (no empty clause, or a terminal clause not over the negated
    /// assumptions of the obligation).
    TerminalMismatch {
        /// Name of the translation or obligation being certified.
        name: String,
        /// What was wrong with the terminal step.
        detail: String,
    },
    /// A SAT model failed validation: it does not satisfy the solved CNF, is
    /// transitivity-inconsistent, or does not falsify the encoded
    /// correctness formula under true side constraints.
    SpuriousModel {
        /// Name of the translation or obligation being certified.
        name: String,
        /// What was wrong with the model.
        detail: String,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::ProofRejected { name, detail } => {
                write!(f, "{name}: UNSAT proof rejected: {detail}")
            }
            CertifyError::TerminalMismatch { name, detail } => {
                write!(f, "{name}: proof does not certify the verdict: {detail}")
            }
            CertifyError::SpuriousModel { name, detail } => {
                write!(f, "{name}: counterexample rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// The clauses added to the solver after its initial formula, recovered from
/// the iCNF trace (lazy transitivity constraints, in certification runs).
fn trace_additions(solver: &IncrementalSolver) -> Vec<Vec<Lit>> {
    solver
        .trace()
        .unwrap_or(&[])
        .iter()
        .filter_map(|event| match event {
            IcnfEvent::AddClause(lits) => Some(lits.clone()),
            IcnfEvent::Solve(_) => None,
        })
        .collect()
}

/// Replays `proof` against `base` plus `added` and validates the terminal
/// step: the empty clause when `assumptions` is empty, otherwise a clause
/// whose literals all negate assumptions.
fn check_unsat_proof(
    name: &str,
    base: &CnfFormula,
    added: &[Vec<Lit>],
    proof: &Proof,
    terminal_step: usize,
    assumptions: &[Lit],
    certify: &CertifyOptions,
) -> Result<ProofCertificate, CertifyError> {
    let _span = velv_obs::span_fields(
        "certify.replay",
        &[
            ("formula", name.into()),
            ("proof_steps", proof.len().into()),
        ],
    );
    let mut clauses = cnf_to_dimacs_i32(base);
    clauses.extend(added.iter().map(|c| clause_to_dimacs_i32(c)));
    let start = Instant::now();
    let options = CheckOptions {
        trim: certify.trim_proofs,
        trim_seeds: vec![terminal_step],
    };
    let report =
        check_proof(&clauses, proof, &options).map_err(|e| CertifyError::ProofRejected {
            name: name.to_owned(),
            detail: e.to_string(),
        })?;
    let check_time = start.elapsed();
    if assumptions.is_empty() && !report.derived_empty {
        return Err(CertifyError::TerminalMismatch {
            name: name.to_owned(),
            detail: "the proof never derives the empty clause".to_owned(),
        });
    }
    validate_terminal(name, proof, terminal_step, assumptions)?;
    Ok(ProofCertificate {
        proof_steps: proof.len(),
        checked_clauses: clauses.len(),
        refinement_clauses: added.len(),
        terminal_step,
        input_core_size: report.input_core.as_ref().map(Vec::len),
        trimmed_steps: report.trimmed_additions,
        check_time,
    })
}

/// Validates that the terminal step of a verified proof certifies *this*
/// verdict: an addition whose literals all negate the obligation's
/// assumptions (the empty clause trivially qualifies and certifies
/// unconditional unsatisfiability).
fn validate_terminal(
    name: &str,
    proof: &Proof,
    terminal_step: usize,
    assumptions: &[Lit],
) -> Result<(), CertifyError> {
    let terminal = proof
        .step(terminal_step)
        .ok_or_else(|| CertifyError::TerminalMismatch {
            name: name.to_owned(),
            detail: format!("terminal step {terminal_step} out of range"),
        })?;
    if !terminal.is_addition() {
        return Err(CertifyError::TerminalMismatch {
            name: name.to_owned(),
            detail: "terminal step is a deletion".to_owned(),
        });
    }
    let negated: Vec<i32> = assumptions
        .iter()
        .map(|a| -(a.to_dimacs() as i32))
        .collect();
    if let Some(&l) = terminal.lits().iter().find(|l| !negated.contains(l)) {
        return Err(CertifyError::TerminalMismatch {
            name: name.to_owned(),
            detail: format!(
                "terminal clause literal {l} does not negate an assumption of this obligation"
            ),
        });
    }
    Ok(())
}

/// Evaluates `root` on a dedicated thread with a large stack: the evaluator
/// recurses over the encoded correctness formula, whose depth on the wide
/// superscalar and VLIW designs overflows a default thread stack (the
/// translation pipeline uses the same bound).
fn evaluate_deep(ctx: &Context, interp: &Interpretation, root: FormulaId) -> bool {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("velv-certify-eval".to_owned())
            .stack_size(256 * 1024 * 1024)
            .spawn_scoped(scope, || velv_eufm::evaluate(ctx, interp, root))
            .expect("spawning the evaluation thread succeeds")
            .join()
            .expect("the evaluation thread does not panic")
    })
}

/// Union-find over the *e*ij endpoints under `model`: every symbol gets the
/// id of its equality class (connected component of true edges).
fn equality_classes(
    pairs: &[(Symbol, Symbol, Var)],
    model: &Model,
) -> (HashMap<Symbol, usize>, usize) {
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    for &(x, y, _) in pairs {
        let n = index.len();
        index.entry(x).or_insert(n);
        let n = index.len();
        index.entry(y).or_insert(n);
    }
    let mut parent: Vec<usize> = (0..index.len()).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for &(x, y, v) in pairs {
        if v.index() < model.len() && model.value(v) {
            let (rx, ry) = (find(&mut parent, index[&x]), find(&mut parent, index[&y]));
            parent[rx] = ry;
        }
    }
    let mut roots: HashMap<usize, usize> = HashMap::new();
    let mut classes: HashMap<Symbol, usize> = HashMap::new();
    for (&sym, &i) in &index {
        let root = find(&mut parent, i);
        let n = roots.len();
        let class = *roots.entry(root).or_insert(n);
        classes.insert(sym, class);
    }
    (classes, roots.len())
}

/// Validates a SAT model as a genuine counterexample of one obligation.
#[allow(clippy::too_many_arguments)]
fn validate_model(
    name: &str,
    ctx: &Context,
    primary_vars: &std::collections::BTreeMap<Symbol, Var>,
    eij_pairs: &[(Symbol, Symbol, Var)],
    encoded: FormulaId,
    side_constraints: FormulaId,
    solved: &CnfFormula,
    added: &[Vec<Lit>],
    assumptions: &[Lit],
    model: &Model,
) -> Result<(Counterexample, ModelCertificate), CertifyError> {
    let start = Instant::now();
    let spurious = |detail: String| CertifyError::SpuriousModel {
        name: name.to_owned(),
        detail,
    };
    // 1. Propositional level: the model satisfies every clause the solver was
    //    given, and the assumptions that select this obligation.
    if !verify_model(solved, model) {
        return Err(spurious("the model does not satisfy the solved CNF".into()));
    }
    let satisfies = |clause: &[Lit]| {
        clause
            .iter()
            .any(|&l| l.var().index() < model.len() && model.value(l.var()) == l.is_positive())
    };
    if !added.iter().all(|clause| satisfies(clause)) {
        return Err(spurious(
            "the model does not satisfy a clause added during refinement".into(),
        ));
    }
    for &a in assumptions {
        if a.var().index() >= model.len() || model.value(a.var()) != a.is_positive() {
            return Err(spurious(format!("the model violates the assumption {a}")));
        }
    }
    // 2. Equality level: the eij assignment must be transitivity-consistent,
    //    so one value per connected component lifts it to a real equality
    //    interpretation.
    if !refine::transitivity_violations(eij_pairs, model).is_empty() {
        return Err(spurious(
            "the eij assignment violates transitivity (spurious model)".into(),
        ));
    }
    let (classes, num_classes) = equality_classes(eij_pairs, model);
    // 3. EUFM level: lift the counterexample into an interpretation and
    //    re-evaluate the encoded correctness formula.  The interpretation is
    //    built symbol-keyed straight from the primary-variable map — the same
    //    assignment `Counterexample::to_interpretation` produces by name,
    //    without cloning the hash-consed context for the interning round-trip.
    let cex = Counterexample::from_model(ctx, primary_vars, model);
    let mut interp = Interpretation::new();
    for (&sym, &var) in primary_vars {
        if var.index() < model.len() {
            interp.prop_vars.insert(sym, model.value(var));
        }
    }
    for (&sym, &class) in &classes {
        // Distinct small values per equality class witness the lifting.
        interp.term_vars.insert(sym, 1 + class as u64);
    }
    if !evaluate_deep(ctx, &interp, side_constraints) {
        return Err(spurious(
            "the side constraints evaluate to false under the model".into(),
        ));
    }
    if evaluate_deep(ctx, &interp, encoded) {
        return Err(spurious(
            "the encoded correctness formula still evaluates to true under the model".into(),
        ));
    }
    let certificate = ModelCertificate {
        checked_clauses: solved.num_clauses() + added.len(),
        primary_assignments: cex.len(),
        equality_classes: num_classes,
        check_time: start.elapsed(),
    };
    Ok((cex, certificate))
}

/// Certified check of one translation: runs the (refining, incremental)
/// check and certifies the outcome per [`CertifyOptions`].
pub(crate) fn check_certified(
    translation: &Translation,
    config: CdclConfig,
    certify: &CertifyOptions,
    budget: Budget,
) -> Result<(CertifiedVerdict, RefinementStats), CertifyError> {
    let _span = velv_obs::span_fields("certify", &[("formula", translation.name.as_str().into())]);
    velv_obs::global()
        .counter(
            "velv_core_certifications_total",
            "Certified verification runs started.",
        )
        .inc();
    let mut solver = IncrementalSolver::with_formula(config, &translation.cnf);
    solver.enable_trace();
    let proof = certify.check_unsat_proofs.then(|| solver.enable_proof());
    let mut stats = RefinementStats::default();
    let result = {
        let mut driver = IncrementalDriver {
            solver: &mut solver,
            assumptions: Vec::new(),
        };
        // Certified checking refines *eager* translations too: the sparse
        // triangulation connects large elimination neighbourhoods along a
        // path (the paper's Section-6 scheme), which is not chordal, so an
        // eager model may still assign the eij variables transitivity-
        // inconsistently.  Running the violation check for both modes
        // asserts the (valid) path clauses and re-solves until the model
        // lifts to a genuine equality interpretation — certification closes
        // that gap instead of reporting an unliftable counterexample.
        refine::refinement_loop(
            &translation.eij_pairs,
            true,
            &budget,
            &mut stats,
            &mut driver,
        )
    };
    let added = trace_additions(&solver);
    let certified = match result {
        SatResult::Unsat => {
            let certificate = match &proof {
                Some(handle) => {
                    // No further solving happens: take the proof instead of cloning it.
                    let recorded = handle.take();
                    let terminal = recorded.len().saturating_sub(1);
                    Certificate::Unsat(check_unsat_proof(
                        &translation.name,
                        &translation.cnf,
                        &added,
                        &recorded,
                        terminal,
                        &[],
                        certify,
                    )?)
                }
                None => Certificate::Unchecked("proof logging disabled".to_owned()),
            };
            CertifiedVerdict {
                verdict: Verdict::Correct,
                certificate,
            }
        }
        SatResult::Sat(model) => {
            if certify.validate_counterexamples {
                let (cex, certificate) = validate_model(
                    &translation.name,
                    &translation.ctx,
                    &translation.primary_vars,
                    &translation.eij_pairs,
                    translation.encoded,
                    translation.side_constraints,
                    &translation.cnf,
                    &added,
                    &[],
                    &model,
                )?;
                CertifiedVerdict {
                    verdict: Verdict::Buggy(cex),
                    certificate: Certificate::Sat(certificate),
                }
            } else {
                CertifiedVerdict {
                    verdict: Verdict::Buggy(Counterexample::from_model(
                        &translation.ctx,
                        &translation.primary_vars,
                        &model,
                    )),
                    certificate: Certificate::Unchecked("model validation disabled".to_owned()),
                }
            }
        }
        other => CertifiedVerdict {
            verdict: Verdict::undecided(&other),
            certificate: Certificate::Unchecked("the solver did not decide".to_owned()),
        },
    };
    Ok((certified, stats))
}

/// Certified check of every obligation of a shared translation on one
/// persistent proof-logging solver.  The DRAT log accumulates across the
/// obligations and is replayed *once* at the end; each UNSAT obligation is
/// then certified by its terminal step (the clause over its negated
/// assumptions), and each SAT obligation by model validation.
pub(crate) fn check_shared_certified(
    shared: &SharedTranslation,
    config: CdclConfig,
    certify: &CertifyOptions,
    budget: Budget,
) -> Result<SharedCertifiedOutcome, CertifyError> {
    let _span = velv_obs::span_fields(
        "certify",
        &[
            ("formula", shared.name.as_str().into()),
            ("obligations", shared.obligations.len().into()),
        ],
    );
    velv_obs::global()
        .counter(
            "velv_core_certifications_total",
            "Certified verification runs started.",
        )
        .inc();
    let mut solver = IncrementalSolver::with_formula(config, &shared.cnf);
    solver.enable_trace();
    let proof = certify.check_unsat_proofs.then(|| solver.enable_proof());
    let mut resolved = budget.started();
    resolved.max_time = None;
    let mut stats = RefinementStats::default();
    let mut overall = Verdict::Correct;
    // Per obligation: the verdict plus, for UNSAT ones, the terminal step.
    let mut outcomes: Vec<(String, CertifiedVerdict, Option<usize>)> = Vec::new();
    // The trace's clause additions are append-only: keep an incrementally
    // extended copy instead of re-collecting the full trace per obligation.
    let mut added: Vec<Vec<Lit>> = Vec::new();
    let mut consumed_events = 0usize;
    for obligation in &shared.obligations {
        let result = {
            let mut driver = IncrementalDriver {
                solver: &mut solver,
                assumptions: obligation.assumptions.clone(),
            };
            // Violations are checked for eager translations too — see
            // `check_certified`: the sparse triangulation alone does not
            // guarantee liftable models.
            refine::refinement_loop(&shared.eij_pairs, true, &resolved, &mut stats, &mut driver)
        };
        let events = solver.trace().unwrap_or(&[]);
        for event in &events[consumed_events..] {
            if let IcnfEvent::AddClause(lits) = event {
                added.push(lits.clone());
            }
        }
        consumed_events = events.len();
        let (certified, terminal) = match result {
            SatResult::Unsat => {
                let terminal = proof.as_ref().map(|p| p.len().saturating_sub(1));
                (
                    CertifiedVerdict {
                        verdict: Verdict::Correct,
                        // Filled in after the whole-session proof check.
                        certificate: Certificate::Unchecked("proof logging disabled".to_owned()),
                    },
                    terminal,
                )
            }
            SatResult::Sat(model) => {
                if certify.validate_counterexamples {
                    let (cex, certificate) = validate_model(
                        &obligation.name,
                        &shared.ctx,
                        &shared.primary_vars,
                        &shared.eij_pairs,
                        obligation.encoded,
                        obligation.side_constraints,
                        &shared.cnf,
                        &added,
                        &obligation.assumptions,
                        &model,
                    )?;
                    (
                        CertifiedVerdict {
                            verdict: Verdict::Buggy(cex),
                            certificate: Certificate::Sat(certificate),
                        },
                        None,
                    )
                } else {
                    (
                        CertifiedVerdict {
                            verdict: Verdict::Buggy(Counterexample::from_model(
                                &shared.ctx,
                                &shared.primary_vars,
                                &model,
                            )),
                            certificate: Certificate::Unchecked(
                                "model validation disabled".to_owned(),
                            ),
                        },
                        None,
                    )
                }
            }
            other => (
                CertifiedVerdict {
                    verdict: Verdict::undecided(&other),
                    certificate: Certificate::Unchecked("the solver did not decide".to_owned()),
                },
                None,
            ),
        };
        if certified.verdict.is_buggy() && !overall.is_buggy() {
            overall = certified.verdict.clone();
        }
        if let Verdict::Unknown(reason) = &certified.verdict {
            if overall.is_correct() {
                overall = Verdict::Unknown(reason.clone());
            }
        }
        outcomes.push((obligation.name.clone(), certified, terminal));
    }
    // One replay of the accumulated proof certifies every UNSAT obligation:
    // the checker validates all steps, then each obligation's terminal step
    // must be a clause over that obligation's negated assumptions.
    if let Some(handle) = &proof {
        // No further solving happens: take the proof instead of cloning it.
        let recorded = handle.take();
        let mut clauses = cnf_to_dimacs_i32(&shared.cnf);
        clauses.extend(added.iter().map(|c| clause_to_dimacs_i32(c)));
        let start = Instant::now();
        // Seed the backward trim with *every* obligation's terminal step, so
        // the reported core covers all refutations of the session (the
        // per-obligation certificates share this session-wide core).
        let options = CheckOptions {
            trim: certify.trim_proofs,
            trim_seeds: outcomes
                .iter()
                .filter_map(|(_, _, terminal)| *terminal)
                .collect(),
        };
        let report = check_proof(&clauses, &recorded, &options).map_err(|e| {
            CertifyError::ProofRejected {
                name: shared.name.clone(),
                detail: e.to_string(),
            }
        })?;
        let check_time = start.elapsed();
        for (index, obligation) in shared.obligations.iter().enumerate() {
            let (_, certified, terminal) = &mut outcomes[index];
            if let Some(terminal_step) = *terminal {
                validate_terminal(
                    &obligation.name,
                    &recorded,
                    terminal_step,
                    &obligation.assumptions,
                )?;
                certified.certificate = Certificate::Unsat(ProofCertificate {
                    proof_steps: recorded.len(),
                    checked_clauses: clauses.len(),
                    refinement_clauses: added.len(),
                    terminal_step,
                    input_core_size: report.input_core.as_ref().map(Vec::len),
                    trimmed_steps: report.trimmed_additions,
                    check_time,
                });
            }
        }
    }
    Ok(SharedCertifiedOutcome {
        overall,
        obligations: outcomes
            .into_iter()
            .map(|(name, certified, _)| CertifiedObligation { name, certified })
            .collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Verifier;
    use crate::options::TranslationOptions;
    use crate::test_models::{PipelinedToy, ToyBug, ToySpec};

    fn certified(
        options: TranslationOptions,
        implementation: &PipelinedToy,
    ) -> Result<(CertifiedVerdict, RefinementStats), CertifyError> {
        let verifier = Verifier::new(options);
        let translation = verifier.translate(implementation, &ToySpec);
        verifier.check_certified(
            &translation,
            CdclConfig::chaff(),
            &CertifyOptions::full().with_trimming(),
            Budget::unlimited(),
        )
    }

    #[test]
    fn correct_toy_design_certifies_eager_and_lazy() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_lazy_transitivity(),
            TranslationOptions::default()
                .without_positive_equality()
                .with_lazy_transitivity(),
        ] {
            let (outcome, _) = certified(options, &PipelinedToy::correct()).unwrap();
            assert!(outcome.verdict.is_correct(), "{:?}", outcome.verdict);
            match outcome.certificate {
                Certificate::Unsat(proof) => {
                    assert!(proof.proof_steps > 0);
                    assert!(proof.checked_clauses > 0);
                    assert!(proof.input_core_size.is_some());
                }
                other => panic!("expected a proof certificate, got {other:?}"),
            }
        }
    }

    #[test]
    fn buggy_toy_designs_yield_validated_counterexamples() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_lazy_transitivity(),
        ] {
            for bug in [ToyBug::ForwardingIgnoresValid, ToyBug::WritesWrongData] {
                let (outcome, _) = certified(options.clone(), &PipelinedToy::buggy(bug)).unwrap();
                assert!(outcome.verdict.is_buggy(), "{bug:?}: {:?}", outcome.verdict);
                match outcome.certificate {
                    Certificate::Sat(model) => {
                        assert!(model.primary_assignments > 0, "{bug:?}");
                        assert!(model.checked_clauses > 0, "{bug:?}");
                    }
                    other => panic!("{bug:?}: expected a model certificate, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn shared_toy_decomposition_certifies_every_obligation() {
        for options in [
            TranslationOptions::default(),
            TranslationOptions::default().with_lazy_transitivity(),
        ] {
            let verifier = Verifier::new(options);
            let problem = verifier.build_problem(&PipelinedToy::correct(), &ToySpec);
            let shared = verifier.translate_obligations_shared(&problem, 8);
            let outcome = verifier
                .check_shared_certified(
                    &shared,
                    CdclConfig::chaff(),
                    &CertifyOptions::default(),
                    Budget::unlimited(),
                )
                .unwrap();
            assert!(outcome.overall.is_correct(), "{:?}", outcome.overall);
            assert!(!outcome.obligations.is_empty());
            for obligation in &outcome.obligations {
                assert!(
                    obligation.certified.verdict.is_correct(),
                    "{}",
                    obligation.name
                );
                assert!(
                    matches!(obligation.certified.certificate, Certificate::Unsat(_)),
                    "{}: every UNSAT obligation carries a proof certificate",
                    obligation.name
                );
            }
        }
    }

    #[test]
    fn disabled_switches_leave_verdicts_unchecked() {
        let verifier = Verifier::new(TranslationOptions::default());
        let translation = verifier.translate(&PipelinedToy::correct(), &ToySpec);
        let off = CertifyOptions {
            check_unsat_proofs: false,
            validate_counterexamples: false,
            trim_proofs: false,
        };
        let (outcome, _) = verifier
            .check_certified(&translation, CdclConfig::chaff(), &off, Budget::unlimited())
            .unwrap();
        assert!(outcome.verdict.is_correct());
        assert!(!outcome.certificate.is_checked());
    }
}
