//! Lazy transitivity refinement (Bryant & Velev, "Boolean Satisfiability
//! with Transitivity Constraints").
//!
//! A lazily encoded translation ([`crate::TransitivityMode::Lazy`]) carries
//! *no* transitivity constraints: the CNF is a relaxation whose UNSAT answers
//! are final (fewer constraints ⇒ unsatisfiability still holds with them),
//! while SAT answers may be *spurious* — the model can set `e(x,y)` and
//! `e(y,z)` true but `e(x,z)` false, which no actual equality interpretation
//! allows.  The refinement loop closes the gap:
//!
//! 1. solve the relaxed CNF;
//! 2. on SAT, look at the *e*ij assignment as a graph (one vertex per g-term
//!    variable, the true edges connect them) and find every *e*ij variable
//!    assigned false whose endpoints are nevertheless connected by true
//!    edges;
//! 3. for each violation, assert the valid clause
//!    `¬e(p₁) ∨ … ∨ ¬e(pₖ) ∨ e(x,z)` along the connecting path and re-solve;
//! 4. a model with no violations extends to a genuine equality
//!    interpretation (give every connected component its own value) and is a
//!    real counterexample.
//!
//! The loop terminates: each added clause eliminates the current model, the
//! model space is finite, and every added clause is *valid* for equality, so
//! no real counterexample is ever excluded.
//!
//! This is exactly the workload the incremental solver is built for — the
//! constraint clauses land in a live engine that keeps all learned clauses —
//! but a monolithic fallback ([`check_with_refinement_monolithic`]) re-solves
//! a growing CNF with any [`Solver`], which is also the baseline the
//! `satbench` harness measures the incremental win against.

use crate::counterexample::Counterexample;
use crate::flow::{Translation, Verdict};
use crate::stats::RefinementStats;
use std::collections::HashMap;
use velv_eufm::Symbol;
use velv_sat::cdcl::CdclConfig;
use velv_sat::{Budget, CnfFormula, IncrementalSolver, Lit, Model, SatResult, Solver, Var};

/// Detects transitivity violations of `model` over the *e*ij `pairs` and
/// returns one correcting clause per violated pair.
///
/// A pair `(x, y, v)` with `model[v] = false` is violated when `x` and `y`
/// are connected in the graph of true *e*ij edges; the clause disjoins the
/// negations of one connecting path with the violated variable.  Returns an
/// empty vector iff the *e*ij assignment is transitivity-consistent (and the
/// model therefore lifts to a genuine equality interpretation).
pub fn transitivity_violations(pairs: &[(Symbol, Symbol, Var)], model: &Model) -> Vec<Vec<Lit>> {
    // Index the vertices.
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    for &(x, y, _) in pairs {
        let n = index.len();
        index.entry(x).or_insert(n);
        let n = index.len();
        index.entry(y).or_insert(n);
    }
    let num_vertices = index.len();
    // Adjacency over the true edges, remembering each edge's variable.
    let mut adjacency: Vec<Vec<(usize, Var)>> = vec![Vec::new(); num_vertices];
    let mut false_pairs: Vec<(usize, usize, Var)> = Vec::new();
    for &(x, y, v) in pairs {
        if v.index() >= model.len() {
            // The pair's variable never reached the CNF (its equation was
            // simplified away); it is unconstrained and cannot be violated.
            continue;
        }
        let (xi, yi) = (index[&x], index[&y]);
        if model.value(v) {
            adjacency[xi].push((yi, v));
            adjacency[yi].push((xi, v));
        } else {
            false_pairs.push((xi, yi, v));
        }
    }
    if false_pairs.is_empty() {
        return Vec::new();
    }
    // One BFS forest over the true edges: component id + parent edge per
    // vertex, so any two connected vertices have a path through their
    // component's root.
    let mut component = vec![usize::MAX; num_vertices];
    let mut parent: Vec<Option<(usize, Var)>> = vec![None; num_vertices];
    let mut queue = Vec::new();
    for root in 0..num_vertices {
        if component[root] != usize::MAX {
            continue;
        }
        component[root] = root;
        queue.clear();
        queue.push(root);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &(w, var) in &adjacency[u] {
                if component[w] == usize::MAX {
                    component[w] = root;
                    parent[w] = Some((u, var));
                    queue.push(w);
                }
            }
        }
    }
    let path_to_root = |mut u: usize, edges: &mut Vec<Var>| {
        while let Some((p, var)) = parent[u] {
            edges.push(var);
            u = p;
        }
    };
    let mut clauses = Vec::new();
    for (xi, yi, v) in false_pairs {
        if component[xi] != component[yi] {
            continue; // consistent: the endpoints are genuinely unequal
        }
        // Walk both endpoints to the shared root; the union of the two walks
        // is a set of true edges connecting x and y (edges past the meeting
        // point appear in both walks and are deduplicated).
        let mut edges = Vec::new();
        path_to_root(xi, &mut edges);
        path_to_root(yi, &mut edges);
        edges.sort_unstable();
        edges.dedup();
        let mut clause: Vec<Lit> = edges.into_iter().map(Lit::negative).collect();
        clause.push(Lit::positive(v));
        clauses.push(clause);
    }
    clauses
}

fn sat_model_verdict(translation: &Translation, model: &Model) -> Verdict {
    Verdict::Buggy(Counterexample::from_model(
        &translation.ctx,
        &translation.primary_vars,
        model,
    ))
}

/// One back end inside the refinement loop: something that can re-solve the
/// current formula (reporting the steps the attempt consumed) and accept a
/// violated-transitivity clause for the next round.
pub(crate) trait RefineDriver {
    /// Solves the current formula under `budget`; returns the result and the
    /// conflicts/decisions *this attempt* consumed.
    fn solve(&mut self, budget: Budget) -> (SatResult, velv_sat::SolverStats);
    /// Permanently asserts a (valid) transitivity constraint clause.
    fn assert_clause(&mut self, clause: &[Lit]);
}

/// An [`IncrementalSolver`] under fixed assumptions: constraint clauses land
/// in the live engine, step usage is the delta of its cumulative statistics.
pub(crate) struct IncrementalDriver<'a> {
    pub solver: &'a mut IncrementalSolver,
    pub assumptions: Vec<Lit>,
}

impl RefineDriver for IncrementalDriver<'_> {
    fn solve(&mut self, budget: Budget) -> (SatResult, velv_sat::SolverStats) {
        let before = self.solver.stats();
        let result = self.solver.solve_assuming(&self.assumptions, budget);
        let after = self.solver.stats();
        (
            result,
            velv_sat::SolverStats {
                conflicts: after.conflicts - before.conflicts,
                decisions: after.decisions - before.decisions,
                ..after
            },
        )
    }

    fn assert_clause(&mut self, clause: &[Lit]) {
        self.solver.add_clause(clause);
    }
}

/// Any [`Solver`] re-solving a growing copy of the CNF from scratch.
pub(crate) struct MonolithicDriver<'a> {
    pub solver: &'a mut dyn Solver,
    pub cnf: CnfFormula,
}

impl RefineDriver for MonolithicDriver<'_> {
    fn solve(&mut self, budget: Budget) -> (SatResult, velv_sat::SolverStats) {
        let result = self.solver.solve_with_budget(&self.cnf, budget);
        // `Solver::stats` reports the most recent call only.
        (result, self.solver.stats())
    }

    fn assert_clause(&mut self, clause: &[Lit]) {
        self.cnf.add_clause(clause.to_vec());
    }
}

/// The generic solve → detect-violations → assert → re-solve loop shared by
/// the incremental, monolithic and shared-decomposition checks.
///
/// The caller's budget bounds the *whole loop*: the relative time limit is
/// resolved into one deadline up front, and the conflict/decision budgets are
/// charged with each iteration's consumption so a step-bounded check cannot
/// do unbounded total work across refinement rounds.  Returns the final
/// result: a validated `Sat` model, `Unsat`, or `Unknown`.
pub(crate) fn refinement_loop(
    eij_pairs: &[(Symbol, Symbol, Var)],
    lazy: bool,
    budget: &Budget,
    stats: &mut RefinementStats,
    driver: &mut dyn RefineDriver,
) -> SatResult {
    let rounds = velv_obs::global().counter(
        "velv_core_refine_rounds_total",
        "Solver calls made by the lazy-transitivity refinement loop.",
    );
    let constraints = velv_obs::global().counter(
        "velv_core_refine_constraints_total",
        "Transitivity constraints asserted by the refinement loop.",
    );
    let mut budget = budget.started();
    budget.max_time = None; // the deadline above now carries the time limit
    loop {
        stats.iterations += 1;
        rounds.inc();
        let round_span =
            velv_obs::span_fields("refine_round", &[("round", stats.iterations.into())]);
        let (result, used) = driver.solve(budget.clone());
        match result {
            SatResult::Sat(model) => {
                let clauses = if lazy {
                    transitivity_violations(eij_pairs, &model)
                } else {
                    Vec::new()
                };
                if clauses.is_empty() {
                    return SatResult::Sat(model);
                }
                stats.constraints_added += clauses.len();
                constraints.add(clauses.len() as u64);
                for clause in &clauses {
                    driver.assert_clause(clause);
                }
                drop(round_span);
            }
            other => return other,
        }
        // Charge this iteration's steps against the loop-wide budget.
        if let Some(max_conflicts) = &mut budget.max_conflicts {
            *max_conflicts = max_conflicts.saturating_sub(used.conflicts);
            if *max_conflicts == 0 {
                return SatResult::Unknown(velv_sat::StopReason::ConflictLimit);
            }
        }
        if let Some(max_decisions) = &mut budget.max_decisions {
            *max_decisions = max_decisions.saturating_sub(used.decisions);
            if *max_decisions == 0 {
                return SatResult::Unknown(velv_sat::StopReason::DecisionLimit);
            }
        }
    }
}

/// Checks a lazily encoded translation with an [`IncrementalSolver`]: solve,
/// assert the transitivity constraints violated by the model, re-solve, until
/// the verdict is stable.  The solver keeps its learned clauses across the
/// iterations (and may already contain the translation's CNF plus constraints
/// from earlier runs — constraint clauses are valid, so they can only help).
///
/// Works for eager translations too (no *e*ij pairs are ever violated after
/// the side constraints are part of the CNF): the loop then exits after one
/// solver call, which makes this the uniform incremental check.
pub fn check_with_refinement(
    translation: &Translation,
    solver: &mut IncrementalSolver,
    budget: Budget,
) -> (Verdict, RefinementStats) {
    let mut stats = RefinementStats::default();
    let mut driver = IncrementalDriver {
        solver,
        assumptions: Vec::new(),
    };
    let result = refinement_loop(
        &translation.eij_pairs,
        translation.lazy_transitivity,
        &budget,
        &mut stats,
        &mut driver,
    );
    let verdict = match &result {
        SatResult::Unsat => Verdict::Correct,
        SatResult::Sat(model) => sat_model_verdict(translation, model),
        other => Verdict::undecided(other),
    };
    (verdict, stats)
}

/// Convenience wrapper: builds a fresh [`IncrementalSolver`] with `config`,
/// loads the translation's CNF and runs [`check_with_refinement`].
pub fn check_incremental(
    translation: &Translation,
    config: CdclConfig,
    budget: Budget,
) -> (Verdict, RefinementStats) {
    let mut solver = IncrementalSolver::with_formula(config, &translation.cnf);
    check_with_refinement(translation, &mut solver, budget)
}

/// The monolithic fallback: the same refinement loop, but each iteration
/// re-solves a growing copy of the CNF from scratch with an arbitrary
/// [`Solver`].  This keeps lazily encoded translations sound for every
/// back end (including the portfolio), and serves as the baseline the
/// incremental path is benchmarked against.
pub fn check_with_refinement_monolithic(
    translation: &Translation,
    solver: &mut dyn Solver,
    budget: Budget,
) -> (Verdict, RefinementStats) {
    let mut stats = RefinementStats::default();
    let mut driver = MonolithicDriver {
        solver,
        cnf: translation.cnf.clone(),
    };
    let result = refinement_loop(
        &translation.eij_pairs,
        translation.lazy_transitivity,
        &budget,
        &mut stats,
        &mut driver,
    );
    let verdict = match &result {
        SatResult::Unsat => Verdict::Correct,
        SatResult::Sat(model) => sat_model_verdict(translation, model),
        other => Verdict::undecided(other),
    };
    (verdict, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(ctx: &mut velv_eufm::Context, name: &str) -> Symbol {
        ctx.symbol(name)
    }

    #[test]
    fn consistent_assignment_has_no_violations() {
        let mut ctx = velv_eufm::Context::new();
        let (x, y, z) = (sym(&mut ctx, "x"), sym(&mut ctx, "y"), sym(&mut ctx, "z"));
        let pairs = vec![
            (x, y, Var::new(0)),
            (y, z, Var::new(1)),
            (x, z, Var::new(2)),
        ];
        // All equal: fine.
        assert!(transitivity_violations(&pairs, &Model::new(vec![true, true, true])).is_empty());
        // x=y, z apart: fine.
        assert!(transitivity_violations(&pairs, &Model::new(vec![true, false, false])).is_empty());
        // All apart: fine.
        assert!(transitivity_violations(&pairs, &Model::new(vec![false, false, false])).is_empty());
    }

    #[test]
    fn violated_triangle_yields_the_transitivity_clause() {
        let mut ctx = velv_eufm::Context::new();
        let (x, y, z) = (sym(&mut ctx, "x"), sym(&mut ctx, "y"), sym(&mut ctx, "z"));
        let pairs = vec![
            (x, y, Var::new(0)),
            (y, z, Var::new(1)),
            (x, z, Var::new(2)),
        ];
        // x=y and y=z but x≠z: violated.
        let clauses = transitivity_violations(&pairs, &Model::new(vec![true, true, false]));
        assert_eq!(clauses.len(), 1);
        let mut clause = clauses[0].clone();
        clause.sort_unstable();
        let mut expected = vec![
            Lit::negative(Var::new(0)),
            Lit::negative(Var::new(1)),
            Lit::positive(Var::new(2)),
        ];
        expected.sort_unstable();
        assert_eq!(clause, expected);
    }

    #[test]
    fn violations_found_across_longer_paths() {
        // A chain x0=x1=...=x4 with e(x0,x4) false: the violation spans the
        // whole path, not just one triangle.
        let mut ctx = velv_eufm::Context::new();
        let syms: Vec<Symbol> = (0..5).map(|i| sym(&mut ctx, &format!("x{i}"))).collect();
        let mut pairs = Vec::new();
        for i in 0..4 {
            pairs.push((syms[i], syms[i + 1], Var::new(i as u32)));
        }
        pairs.push((syms[0], syms[4], Var::new(4)));
        let model = Model::new(vec![true, true, true, true, false]);
        let clauses = transitivity_violations(&pairs, &model);
        assert_eq!(clauses.len(), 1);
        let clause = &clauses[0];
        assert_eq!(clause.len(), 5, "four path edges plus the violated pair");
        assert!(clause.contains(&Lit::positive(Var::new(4))));
    }

    #[test]
    fn step_budget_bounds_the_whole_refinement_loop() {
        // A driver that keeps returning transitivity-violating models: the
        // loop must stop once the *cumulative* conflict budget is spent, not
        // re-grant it every iteration.
        struct Stubborn {
            pairs_model: Model,
            calls: usize,
        }
        impl RefineDriver for Stubborn {
            fn solve(&mut self, _budget: Budget) -> (SatResult, velv_sat::SolverStats) {
                self.calls += 1;
                (
                    SatResult::Sat(self.pairs_model.clone()),
                    velv_sat::SolverStats {
                        conflicts: 40,
                        decisions: 40,
                        ..Default::default()
                    },
                )
            }
            fn assert_clause(&mut self, _clause: &[Lit]) {}
        }
        let mut ctx = velv_eufm::Context::new();
        let (x, y, z) = (sym(&mut ctx, "x"), sym(&mut ctx, "y"), sym(&mut ctx, "z"));
        let pairs = vec![
            (x, y, Var::new(0)),
            (y, z, Var::new(1)),
            (x, z, Var::new(2)),
        ];
        let mut driver = Stubborn {
            // x=y, y=z, x≠z: always violated (the stub ignores the clauses).
            pairs_model: Model::new(vec![true, true, false]),
            calls: 0,
        };
        let mut stats = RefinementStats::default();
        let result = refinement_loop(
            &pairs,
            true,
            &Budget::step_limit(100),
            &mut stats,
            &mut driver,
        );
        assert!(
            matches!(result, SatResult::Unknown(_)),
            "the loop must give up: {result:?}"
        );
        assert!(
            driver.calls <= 3,
            "100 conflicts at 40 per call allow at most 3 calls, got {}",
            driver.calls
        );
    }

    #[test]
    fn pairs_without_cnf_variables_are_ignored() {
        let mut ctx = velv_eufm::Context::new();
        let (x, y) = (sym(&mut ctx, "x"), sym(&mut ctx, "y"));
        // Variable index beyond the model: the pair never reached the CNF.
        let pairs = vec![(x, y, Var::new(40))];
        assert!(transitivity_violations(&pairs, &Model::new(vec![true])).is_empty());
    }
}
