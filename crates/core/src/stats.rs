//! Statistics of one EUFM → CNF translation (the quantities reported in
//! Tables 4 and the prose of Section 4 of the paper).

use std::fmt;

/// Size statistics of a translated correctness formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Primary Boolean variables: propositional variables of the encoded
    /// formula (control variables, *e*ij variables, indexing variables,
    /// predicate-elimination variables).
    pub primary_bool_vars: usize,
    /// Fresh *e*ij variables introduced by the eij encoding.
    pub eij_vars: usize,
    /// Fresh indexing variables introduced by the small-domain encoding.
    pub indexing_vars: usize,
    /// Distinct pairs of g-term variables compared by the formula.
    pub g_pairs: usize,
    /// Transitivity triangles constrained.
    pub transitivity_triangles: usize,
    /// Variables of the generated CNF (primary + auxiliary).
    pub cnf_vars: usize,
    /// Clauses of the generated CNF.
    pub cnf_clauses: usize,
    /// Equation nodes in the EUFM correctness formula before encoding.
    pub eufm_equations: usize,
    /// Uninterpreted-function applications eliminated.
    pub uf_applications: usize,
}

impl fmt::Display for TranslationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "primary={} (eij={}, idx={}), cnf_vars={}, cnf_clauses={}, g_pairs={}, triangles={}",
            self.primary_bool_vars,
            self.eij_vars,
            self.indexing_vars,
            self.cnf_vars,
            self.cnf_clauses,
            self.g_pairs,
            self.transitivity_triangles
        )
    }
}

/// Statistics of one lazy-transitivity refinement run (or of a shared-solver
/// decomposition check, where the counters aggregate over all obligations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefinementStats {
    /// Solver calls made, including the final one that produced the verdict
    /// (1 for an eager or UNSAT-first-try run).
    pub iterations: usize,
    /// Transitivity constraint clauses asserted during refinement.
    pub constraints_added: usize,
}

impl fmt::Display for RefinementStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iterations={}, constraints_added={}",
            self.iterations, self.constraints_added
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_stats_display() {
        let stats = RefinementStats {
            iterations: 3,
            constraints_added: 7,
        };
        assert_eq!(format!("{stats}"), "iterations=3, constraints_added=7");
    }

    #[test]
    fn display_is_informative() {
        let stats = TranslationStats {
            primary_bool_vars: 10,
            cnf_vars: 42,
            cnf_clauses: 100,
            ..Default::default()
        };
        let text = format!("{stats}");
        assert!(text.contains("primary=10"));
        assert!(text.contains("cnf_vars=42"));
        assert!(text.contains("cnf_clauses=100"));
    }

    #[test]
    fn default_is_zeroed() {
        let stats = TranslationStats::default();
        assert_eq!(stats.primary_bool_vars, 0);
        assert_eq!(stats.cnf_clauses, 0);
    }
}
