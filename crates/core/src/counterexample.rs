//! Lifting SAT models back to the level of the encoded correctness formula.

use std::collections::BTreeMap;
use std::fmt;
use velv_eufm::{Context, Interpretation, Symbol};
use velv_sat::{Model, Var};

/// A counterexample: an assignment to the primary Boolean variables of the
/// encoded correctness formula (control variables, *e*ij equalities, indexing
/// variables) that falsifies the correctness criterion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counterexample {
    assignments: BTreeMap<String, bool>,
}

impl Counterexample {
    /// Builds a counterexample from a SAT model and the primary-variable map of
    /// the CNF translation.
    pub fn from_model(ctx: &Context, primary_vars: &BTreeMap<Symbol, Var>, model: &Model) -> Self {
        let mut assignments = BTreeMap::new();
        for (&sym, &var) in primary_vars {
            if var.index() < model.len() {
                assignments.insert(ctx.symbol_name(sym).to_owned(), model.value(var));
            }
        }
        Counterexample { assignments }
    }

    /// Rebuilds a counterexample from explicit `(name, value)` assignments —
    /// the deserialization path of persisted buggy verdicts, inverse of
    /// [`Counterexample::iter`].
    pub fn from_assignments(assignments: BTreeMap<String, bool>) -> Self {
        Counterexample { assignments }
    }

    /// The value of a primary variable, if it is part of the counterexample.
    pub fn value(&self, name: &str) -> Option<bool> {
        self.assignments.get(name).copied()
    }

    /// Lifts the counterexample into an EUFM [`Interpretation`] over its
    /// primary propositional variables (by name, interning into `ctx`), so a
    /// reported counterexample — including one parsed back from a serialized
    /// artifact — can be replayed against any formula with `velv_eufm::eval`.
    /// [`crate::certify`] performs the same lift symbol-keyed straight from
    /// the primary-variable map (avoiding the interning round-trip) and adds
    /// one term value per *e*ij equality class.
    pub fn to_interpretation(&self, ctx: &mut Context) -> Interpretation {
        let mut interp = Interpretation::new();
        for (name, &value) in &self.assignments {
            interp.set_prop_var(ctx, name, value);
        }
        interp
    }

    /// Iterates over `(variable name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, bool)> {
        self.assignments.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of assigned primary variables.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the counterexample is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The variables assigned `true` — for g-equation (*e*ij) variables these
    /// are the equalities the counterexample relies on, which is usually the
    /// most useful part when diagnosing a bug.
    pub fn true_assignments(&self) -> Vec<&str> {
        self.assignments
            .iter()
            .filter_map(|(k, &v)| v.then_some(k.as_str()))
            .collect()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample over {} primary variables:",
            self.assignments.len()
        )?;
        for (name, value) in &self.assignments {
            if *value {
                writeln!(f, "  {name} = 1")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_sat::Var;

    #[test]
    fn lifts_model_values_by_name() {
        let mut ctx = Context::new();
        let p = ctx.symbol("squash_taken");
        let q = ctx.symbol("e!rs1=rd");
        let mut primary = BTreeMap::new();
        primary.insert(p, Var::new(0));
        primary.insert(q, Var::new(1));
        let model = Model::new(vec![true, false]);
        let cex = Counterexample::from_model(&ctx, &primary, &model);
        assert_eq!(cex.value("squash_taken"), Some(true));
        assert_eq!(cex.value("e!rs1=rd"), Some(false));
        assert_eq!(cex.value("missing"), None);
        assert_eq!(cex.len(), 2);
        assert_eq!(cex.true_assignments(), vec!["squash_taken"]);
        assert!(format!("{cex}").contains("squash_taken = 1"));
    }

    #[test]
    fn empty_counterexample() {
        let cex = Counterexample::default();
        assert!(cex.is_empty());
        assert_eq!(cex.iter().count(), 0);
    }

    #[test]
    fn lifts_to_an_interpretation_that_replays_the_assignment() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("squash_taken");
        let q = ctx.prop_var("e!rs1=rd");
        let p_sym = ctx.symbol("squash_taken");
        let q_sym = ctx.symbol("e!rs1=rd");
        let mut primary = BTreeMap::new();
        primary.insert(p_sym, Var::new(0));
        primary.insert(q_sym, Var::new(1));
        let model = Model::new(vec![true, false]);
        let cex = Counterexample::from_model(&ctx, &primary, &model);
        let interp = cex.to_interpretation(&mut ctx);
        assert!(velv_eufm::evaluate(&ctx, &interp, p));
        let not_q = ctx.not(q);
        assert!(velv_eufm::evaluate(&ctx, &interp, not_q));
    }
}
