//! Translation of propositional formulas into CNF.
//!
//! Follows Section 4 of the paper: one auxiliary Boolean variable per `∧`, `∨`
//! and `ITE` operator, constrained to equal the operator's value (Fig. 5);
//! negations are *not* given variables — they are absorbed into the polarity
//! of the literal of their argument (Fig. 6).  The final CNF asserts the
//! required value of each root with a unit clause.

use std::collections::{BTreeMap, HashMap};
use velv_eufm::{Context, Formula, FormulaId, Symbol};
use velv_sat::{CnfFormula, Lit, Var};

/// Result of CNF generation.
#[derive(Clone, Debug)]
pub struct CnfTranslation {
    /// The generated CNF formula.
    pub cnf: CnfFormula,
    /// CNF variable of every primary (propositional) variable of the source formula.
    pub primary_vars: BTreeMap<Symbol, Var>,
    /// Number of auxiliary variables introduced for operators.
    pub num_aux_vars: usize,
}

impl CnfTranslation {
    /// Number of primary Boolean variables (propositional variables of the
    /// source formula, including *e*ij and indexing variables).
    pub fn num_primary_vars(&self) -> usize {
        self.primary_vars.len()
    }
}

/// Translates the given roots to one CNF formula.  Each entry `(f, value)`
/// asserts that formula `f` must evaluate to `value`; asserting the encoded
/// correctness formula to `false` together with its side constraints to `true`
/// yields the satisfiability problem whose solutions are counterexamples.
///
/// # Panics
///
/// Panics if a root still contains equations, uninterpreted predicates or
/// term-level structure (the encoding stage must run first).
pub fn formula_to_cnf(ctx: &Context, roots: &[(FormulaId, bool)]) -> CnfTranslation {
    let mut builder = CnfBuilder::new();
    let mut units = Vec::new();
    for &(root, value) in roots {
        let lit = builder.literal(ctx, root);
        units.push(if value { lit } else { !lit });
    }
    for unit in units {
        builder.assert_lit(unit);
    }
    builder.finish()
}

/// A persistent Tseitin translator: formulas from one [`Context`] are turned
/// into definitional clauses (one auxiliary variable per `∧`/`∨`/`ITE` node,
/// negations absorbed into literal polarity), with the memo table shared
/// across calls.
///
/// Because the emitted clauses are purely *definitional* — each auxiliary
/// variable is constrained to equal its operator's value, never asserted —
/// the clause set stays satisfiable no matter how many formulas are
/// translated into it.  Roots are asserted separately, either with unit
/// clauses ([`CnfBuilder::assert_lit`]) or, for the shared-solver
/// decomposition, as per-obligation *assumptions* over the root literals:
/// obligations translated into one builder share every common subformula's
/// clauses, which is what lets one incremental solver carry its learned
/// clauses across all of them.
#[derive(Clone, Debug, Default)]
pub struct CnfBuilder {
    cnf: CnfFormula,
    primary_vars: BTreeMap<Symbol, Var>,
    memo: HashMap<FormulaId, Lit>,
    constant_true: Option<Lit>,
    num_aux_vars: usize,
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CnfBuilder::default()
    }

    /// The CNF accumulated so far.
    pub fn cnf(&self) -> &CnfFormula {
        &self.cnf
    }

    /// CNF variables of the primary (propositional) variables seen so far.
    pub fn primary_vars(&self) -> &BTreeMap<Symbol, Var> {
        &self.primary_vars
    }

    /// Asserts a literal with a unit clause.
    pub fn assert_lit(&mut self, lit: Lit) {
        self.cnf.add_clause(vec![lit]);
    }

    /// Consumes the builder into a [`CnfTranslation`].
    pub fn finish(self) -> CnfTranslation {
        CnfTranslation {
            cnf: self.cnf,
            primary_vars: self.primary_vars,
            num_aux_vars: self.num_aux_vars,
        }
    }

    fn fresh_aux(&mut self) -> Lit {
        self.num_aux_vars += 1;
        Lit::positive(self.cnf.new_var())
    }

    fn constant_true_lit(&mut self) -> Lit {
        if let Some(l) = self.constant_true {
            return l;
        }
        let lit = Lit::positive(self.cnf.new_var());
        self.cnf.add_clause(vec![lit]);
        self.constant_true = Some(lit);
        lit
    }

    /// The CNF literal representing formula `f`, emitting definitional
    /// clauses for every operator node not yet translated.
    ///
    /// # Panics
    ///
    /// Panics if `f` still contains equations or uninterpreted predicates
    /// (the encoding stage must run first).
    pub fn literal(&mut self, ctx: &Context, f: FormulaId) -> Lit {
        if let Some(&l) = self.memo.get(&f) {
            return l;
        }
        let lit = match ctx.formula(f).clone() {
            Formula::True => self.constant_true_lit(),
            Formula::False => !self.constant_true_lit(),
            Formula::Var(sym) => {
                let var = *self
                    .primary_vars
                    .entry(sym)
                    .or_insert_with(|| self.cnf.new_var());
                Lit::positive(var)
            }
            Formula::Not(a) => {
                let la = self.literal(ctx, a);
                !la
            }
            Formula::And(a, b) => {
                let la = self.literal(ctx, a);
                let lb = self.literal(ctx, b);
                let v = self.fresh_aux();
                // v ↔ (a ∧ b)
                self.cnf.add_clause(vec![!v, la]);
                self.cnf.add_clause(vec![!v, lb]);
                self.cnf.add_clause(vec![v, !la, !lb]);
                v
            }
            Formula::Or(a, b) => {
                let la = self.literal(ctx, a);
                let lb = self.literal(ctx, b);
                let v = self.fresh_aux();
                // v ↔ (a ∨ b)
                self.cnf.add_clause(vec![!v, la, lb]);
                self.cnf.add_clause(vec![v, !la]);
                self.cnf.add_clause(vec![v, !lb]);
                v
            }
            Formula::Ite(c, t, e) => {
                let lc = self.literal(ctx, c);
                let lt = self.literal(ctx, t);
                let le = self.literal(ctx, e);
                let v = self.fresh_aux();
                // v ↔ ITE(c, t, e)
                self.cnf.add_clause(vec![!v, !lc, lt]);
                self.cnf.add_clause(vec![!v, lc, le]);
                self.cnf.add_clause(vec![v, !lc, !lt]);
                self.cnf.add_clause(vec![v, lc, !le]);
                // Redundant but propagation-friendly clauses.
                self.cnf.add_clause(vec![!v, lt, le]);
                self.cnf.add_clause(vec![v, !lt, !le]);
                v
            }
            Formula::Eq(_, _) | Formula::Up(_, _) => {
                panic!("equations and predicates must be encoded before CNF generation")
            }
        };
        self.memo.insert(f, lit);
        lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_sat::cdcl::CdclSolver;
    use velv_sat::{SatResult, Solver};

    fn is_sat(cnf: &CnfFormula) -> bool {
        CdclSolver::chaff().solve(cnf).is_sat()
    }

    #[test]
    fn tautology_negation_is_unsat() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let np = ctx.not(p);
        let taut = ctx.or(p, np);
        let translation = formula_to_cnf(&ctx, &[(taut, false)]);
        assert!(!is_sat(&translation.cnf), "¬(p ∨ ¬p) must be unsatisfiable");
        assert_eq!(translation.num_primary_vars(), 1);
    }

    #[test]
    fn satisfiable_formula_yields_model_on_primary_vars() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let nq = ctx.not(q);
        let formula = ctx.and(p, nq);
        let translation = formula_to_cnf(&ctx, &[(formula, true)]);
        match CdclSolver::chaff().solve(&translation.cnf) {
            SatResult::Sat(model) => {
                let p_sym = ctx.symbols().lookup("p").unwrap();
                let q_sym = ctx.symbols().lookup("q").unwrap();
                assert!(model.value(translation.primary_vars[&p_sym]));
                assert!(!model.value(translation.primary_vars[&q_sym]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn multiple_roots_are_conjoined() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        // Assert p = true and q = false simultaneously; then (p ∧ q) asserted
        // true makes it unsatisfiable.
        let pq = ctx.and(p, q);
        let translation = formula_to_cnf(&ctx, &[(p, true), (q, false), (pq, true)]);
        assert!(!is_sat(&translation.cnf));
        let translation_ok = formula_to_cnf(&ctx, &[(p, true), (q, false), (pq, false)]);
        assert!(is_sat(&translation_ok.cnf));
    }

    #[test]
    fn ite_semantics_preserved() {
        let mut ctx = Context::new();
        let c = ctx.prop_var("c");
        let t = ctx.prop_var("t");
        let e = ctx.prop_var("e");
        let ite = ctx.ite_formula(c, t, e);
        // ITE(c,t,e) ∧ c ∧ ¬t is unsatisfiable.
        let translation = formula_to_cnf(&ctx, &[(ite, true), (c, true), (t, false)]);
        assert!(!is_sat(&translation.cnf));
        // ITE(c,t,e) ∧ ¬c ∧ e is satisfiable.
        let translation = formula_to_cnf(&ctx, &[(ite, true), (c, false), (e, true)]);
        assert!(is_sat(&translation.cnf));
    }

    #[test]
    fn constants_are_handled() {
        let ctx = Context::new();
        let t = ctx.true_id();
        let translation = formula_to_cnf(&ctx, &[(t, true)]);
        assert!(is_sat(&translation.cnf));
        let translation = formula_to_cnf(&ctx, &[(t, false)]);
        assert!(!is_sat(&translation.cnf));
    }

    #[test]
    fn negation_does_not_create_aux_vars() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let conj = ctx.and(p, q);
        let neg = ctx.not(conj);
        let with_neg = formula_to_cnf(&ctx, &[(neg, true)]);
        let without_neg = formula_to_cnf(&ctx, &[(conj, false)]);
        assert_eq!(
            with_neg.num_aux_vars, without_neg.num_aux_vars,
            "negation is absorbed into literal polarity"
        );
    }
}
