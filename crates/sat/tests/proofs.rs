//! End-to-end certification suite for DRAT proof logging: refutations
//! recorded by the CDCL engine must replay through the independent checker in
//! `velv_proof`, across presets, assumptions, incremental sessions and
//! deletion-heavy runs — and corrupted proofs must be rejected.

use velv_proof::{check_proof, CheckOptions, Proof, ProofStep};
use velv_sat::cdcl::CdclSolver;
use velv_sat::generators::{pigeonhole, random_3sat};
use velv_sat::incremental::IncrementalSolver;
use velv_sat::{Budget, CnfFormula, Lit, Solver, Var};

use velv_sat::dimacs::cnf_to_dimacs_i32 as dimacs_clauses;

fn lit(i: i64) -> Lit {
    Lit::from_dimacs(i)
}

#[test]
fn every_preset_refutation_of_pigeonhole_checks() {
    let cnf = pigeonhole(5);
    let clauses = dimacs_clauses(&cnf);
    for mut solver in [
        CdclSolver::chaff(),
        CdclSolver::berkmin(),
        CdclSolver::grasp(),
        CdclSolver::sato(), // exercises the oversize purge's deletions
    ] {
        let name = solver.name().to_owned();
        let (result, proof) = solver.solve_recording_proof(&cnf, &[], Budget::unlimited());
        assert!(result.is_unsat(), "{name}");
        assert!(!proof.is_empty(), "{name}: refutations have steps");
        assert_eq!(
            proof.last().map(|s| s.lits().is_empty()),
            Some(true),
            "{name}: the terminal step is the empty clause"
        );
        let report = check_proof(&clauses, &proof, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{name}: proof rejected: {e}"));
        assert!(report.derived_empty, "{name}");
    }
}

#[test]
fn deletion_heavy_chaff_run_still_checks() {
    // PHP(8, 7) under chaff crosses the database-reduction threshold, so the
    // proof interleaves additions with real deletions.
    let cnf = pigeonhole(7);
    let (result, proof) = CdclSolver::chaff().solve_recording_proof(&cnf, &[], Budget::unlimited());
    assert!(result.is_unsat());
    let deletions = proof
        .steps()
        .iter()
        .filter(|s| matches!(s, ProofStep::Delete(_)))
        .count();
    let report = check_proof(&dimacs_clauses(&cnf), &proof, &CheckOptions::default())
        .expect("deletion-heavy proof checks");
    assert!(report.derived_empty);
    assert_eq!(report.deletions, deletions);
}

#[test]
fn unsat_random_3sat_proofs_check_with_trimming() {
    let mut checked = 0;
    for seed in 1..=6u64 {
        let cnf = random_3sat(40, 180, seed); // ratio 4.5: usually UNSAT
        let (result, proof) =
            CdclSolver::chaff().solve_recording_proof(&cnf, &[], Budget::unlimited());
        if !result.is_unsat() {
            continue;
        }
        let report = check_proof(
            &dimacs_clauses(&cnf),
            &proof,
            &CheckOptions {
                trim: true,
                ..Default::default()
            },
        )
        .expect("seeded refutation checks");
        assert!(report.derived_empty, "seed {seed}");
        let core = report.input_core.expect("trim reports a core");
        assert!(!core.is_empty(), "seed {seed}");
        assert!(core.len() <= cnf.num_clauses(), "seed {seed}");
        assert!(
            report.trimmed_additions.unwrap() <= report.additions,
            "seed {seed}"
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected several UNSAT instances, got {checked}"
    );
}

#[test]
fn assumption_refutations_end_with_the_negated_core_clause() {
    // x1 → x2 → x3: UNSAT under {x1, ¬x3}, and the terminal proof step is a
    // clause over the negated assumptions.
    let mut cnf = CnfFormula::new(3);
    cnf.add_clause(vec![lit(-1), lit(2)]);
    cnf.add_clause(vec![lit(-2), lit(3)]);
    let assumptions = [lit(1), lit(-3)];
    let (result, proof) =
        CdclSolver::chaff().solve_recording_proof(&cnf, &assumptions, Budget::unlimited());
    assert!(result.is_unsat());
    let terminal = proof.last().expect("the proof is non-empty");
    assert!(terminal.is_addition());
    let negated: Vec<i32> = assumptions
        .iter()
        .map(|a| -(a.to_dimacs() as i32))
        .collect();
    assert!(
        terminal.lits().iter().all(|l| negated.contains(l)),
        "terminal clause {:?} over the negated assumptions {negated:?}",
        terminal.lits()
    );
    check_proof(&dimacs_clauses(&cnf), &proof, &CheckOptions::default())
        .expect("the assumption refutation checks");
}

#[test]
fn incremental_session_proof_checks_against_all_added_clauses() {
    // A session with clause additions between solves: the proof accumulates
    // across queries and must check against the *union* of everything added.
    let mut solver = IncrementalSolver::chaff();
    let proof = solver.enable_proof();
    solver.add_clause(&[lit(1), lit(2)]);
    solver.add_clause(&[lit(-1), lit(3)]);
    assert!(solver
        .solve_assuming(&[lit(-2), lit(-3)], Budget::unlimited())
        .is_unsat());
    let first_len = proof.len();
    assert!(first_len > 0, "the failing query leaves a terminal clause");
    solver.add_clause(&[lit(-3), lit(2)]);
    assert!(solver.solve(Budget::unlimited()).is_sat());
    solver.add_clause(&[lit(-2)]);
    solver.add_clause(&[lit(3)]);
    assert!(solver.solve(Budget::unlimited()).is_unsat());
    let axioms: Vec<Vec<i32>> = vec![vec![1, 2], vec![-1, 3], vec![-3, 2], vec![-2], vec![3]];
    let recorded = proof.snapshot();
    let report = check_proof(&axioms, &recorded, &CheckOptions::default())
        .expect("the session proof checks");
    assert!(report.derived_empty, "the final query is a root refutation");
}

#[test]
fn pigeonhole_core_proofs_recertify() {
    // The selector-guarded pigeonhole of the incremental suite: the UNSAT
    // core's negation must appear as the terminal proof step and the whole
    // proof must check.
    let holes = 4;
    let pigeons = holes + 1;
    let base = pigeonhole(holes);
    let mut cnf = CnfFormula::new(base.num_vars() + pigeons);
    let selector = |p: usize| Var::new((base.num_vars() + p) as u32);
    for (i, clause) in base.clauses().iter().enumerate() {
        if i < pigeons {
            let mut guarded = clause.clone();
            guarded.push(Lit::negative(selector(i)));
            cnf.add_clause(guarded);
        } else {
            cnf.add_clause(clause.clone());
        }
    }
    let mut solver = IncrementalSolver::chaff();
    let proof = solver.enable_proof();
    solver.add_formula(&cnf);
    let assumptions: Vec<Lit> = (0..pigeons).map(|p| Lit::positive(selector(p))).collect();
    assert!(solver
        .solve_assuming(&assumptions, Budget::unlimited())
        .is_unsat());
    let core = solver.unsat_core().to_vec();
    assert!(!core.is_empty());
    let recorded = proof.snapshot();
    let report = check_proof(&dimacs_clauses(&cnf), &recorded, &CheckOptions::default())
        .expect("the core-producing refutation checks");
    assert!(!report.derived_empty, "UNSAT only under the assumptions");
    // The terminal step is the clause over the negated core.
    let negated: Vec<i32> = core.iter().map(|a| -(a.to_dimacs() as i32)).collect();
    let terminal = recorded.last().unwrap();
    assert!(terminal.is_addition());
    let mut terminal_lits = terminal.lits().to_vec();
    terminal_lits.sort_unstable();
    let mut expected = negated.clone();
    expected.sort_unstable();
    assert_eq!(terminal_lits, expected, "terminal clause = negated core");
}

#[test]
fn corrupted_proofs_are_rejected() {
    let cnf = pigeonhole(4);
    let clauses = dimacs_clauses(&cnf);
    let (result, proof) = CdclSolver::chaff().solve_recording_proof(&cnf, &[], Budget::unlimited());
    assert!(result.is_unsat());
    check_proof(&clauses, &proof, &CheckOptions::default()).expect("the honest proof checks");

    // Mutation 1: flip one literal of the first multi-literal learned clause.
    let mut flipped = proof.clone();
    let target = flipped
        .steps()
        .iter()
        .position(|s| s.is_addition() && s.lits().len() >= 2)
        .expect("a real refutation learns multi-literal clauses");
    if let Some(ProofStep::Add(lits)) = flipped.step_mut(target) {
        lits[0] = -lits[0];
    }
    assert!(
        check_proof(&clauses, &flipped, &CheckOptions::default()).is_err(),
        "flipping a learned clause's literal must break the replay"
    );

    // Mutation 2: replace a learned clause by a unit over a fresh variable —
    // never RUP, so the checker must reject at exactly that step.
    let mut foreign = proof.clone();
    let fresh = cnf.num_vars() as i32 + 10;
    if let Some(ProofStep::Add(lits)) = foreign.step_mut(target) {
        *lits = vec![fresh];
    }
    match check_proof(&clauses, &foreign, &CheckOptions::default()) {
        Err(velv_proof::CheckError::StepNotRup { step, .. }) => assert_eq!(step, target),
        other => panic!("expected StepNotRup at {target}, got {other:?}"),
    }

    // Mutation 3: claim the empty clause right away.
    let mut eager = Proof::new();
    eager.add(vec![]);
    assert!(check_proof(&clauses, &eager, &CheckOptions::default()).is_err());
}
