//! Differential suite for the rearchitected CDCL engine.
//!
//! The engine rewrite (flat clause arena, blocker watches, indexed VSIDS
//! heap, allocation-free analysis) must be behavior-compatible with the
//! previous engine: same verdicts from all four presets, models that verify,
//! and prompt cooperative cancellation from the new propagation loop.
//! Instances are larger than the brute-force property tests — seeded random
//! 3-SAT near the phase transition, the pigeonhole family — with the plain
//! DPLL solver (an independent implementation) as the reference verdict.

use std::time::{Duration, Instant};
use velv_sat::cdcl::CdclSolver;
use velv_sat::dpll::DpllSolver;
use velv_sat::generators::{pigeonhole, random_3sat};
use velv_sat::solver::verify_model;
use velv_sat::{Budget, CancelToken, CnfFormula, Lit, SatResult, Solver, StopReason, Var};

fn presets() -> Vec<CdclSolver> {
    vec![
        CdclSolver::chaff(),
        CdclSolver::berkmin(),
        CdclSolver::grasp(),
        CdclSolver::sato(),
    ]
}

/// Solves with every preset and checks they agree with the expected verdict;
/// SAT models must satisfy the formula.
fn assert_all_presets(cnf: &CnfFormula, expected_sat: bool, label: &str) {
    for mut solver in presets() {
        match solver.solve(cnf) {
            SatResult::Sat(model) => {
                assert!(
                    expected_sat,
                    "{label}: {} found SAT, expected UNSAT",
                    solver.name()
                );
                assert!(
                    verify_model(cnf, &model),
                    "{label}: {} returned a bogus model",
                    solver.name()
                );
            }
            SatResult::Unsat => {
                assert!(
                    !expected_sat,
                    "{label}: {} found UNSAT, expected SAT",
                    solver.name()
                );
            }
            SatResult::Unknown(reason) => {
                panic!("{label}: {} gave up: {reason:?}", solver.name());
            }
        }
    }
}

#[test]
fn presets_agree_with_dpll_on_phase_transition_3sat() {
    // 60 variables at ratios straddling the phase transition: large enough
    // that the arena, watch lists and heap all do real work, small enough
    // that DPLL (the independent reference implementation) still finishes.
    for seed in 1..=8u64 {
        let num_vars = 60;
        let ratio = if seed % 2 == 0 { 4.0 } else { 4.6 };
        let num_clauses = (num_vars as f64 * ratio) as usize;
        let cnf = random_3sat(num_vars, num_clauses, seed);
        let reference = DpllSolver::new().solve(&cnf);
        let expected_sat = match reference {
            SatResult::Sat(ref model) => {
                assert!(verify_model(&cnf, model), "DPLL reference model invalid");
                true
            }
            SatResult::Unsat => false,
            SatResult::Unknown(reason) => panic!("DPLL reference gave up: {reason:?}"),
        };
        assert_all_presets(&cnf, expected_sat, &format!("r3sat seed {seed}"));
    }
}

#[test]
fn presets_agree_on_the_pigeonhole_family() {
    for holes in 3..=5 {
        assert_all_presets(
            &pigeonhole(holes),
            false,
            &format!("php({}, {holes})", holes + 1),
        );
    }
}

#[test]
fn presets_agree_on_satisfiable_structured_instances() {
    // Chained implications with a sprinkle of redundant clauses: SAT with a
    // forced model, so every preset must find and verify it.
    let n = 200;
    let mut cnf = CnfFormula::new(n);
    cnf.add_clause(vec![Lit::positive(Var::new(0))]);
    for i in 0..n - 1 {
        cnf.add_clause(vec![
            Lit::negative(Var::new(i as u32)),
            Lit::positive(Var::new((i + 1) as u32)),
        ]);
        if i % 7 == 0 {
            cnf.add_clause(vec![
                Lit::positive(Var::new(i as u32)),
                Lit::positive(Var::new((i + 1) as u32)),
            ]);
        }
    }
    assert_all_presets(&cnf, true, "implication chain");
}

#[test]
fn cancellation_is_prompt_in_the_new_propagation_loop() {
    // A hard instance no preset finishes quickly; the solver must observe the
    // cancel token from its hot loop and return well before the instance is
    // actually decided.
    let cnf = pigeonhole(9);
    let token = CancelToken::new();
    let budget = Budget::unlimited().with_cancel(token.clone());
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
    });
    let start = Instant::now();
    let result = CdclSolver::chaff().solve_with_budget(&cnf, budget);
    let elapsed = start.elapsed();
    handle.join().unwrap();
    assert_eq!(result, SatResult::Unknown(StopReason::Cancelled));
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation was not prompt: {elapsed:?}"
    );
}
