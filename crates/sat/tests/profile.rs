//! Solve-profiler integration: the per-conflict decision-level histogram
//! must track conflicts (not heartbeats), and an installed solve recorder
//! must receive a usable time-series from plain, incremental and portfolio
//! solves — including budget-aborted runs that never reach a heartbeat.

use velv_sat::cdcl::CdclSolver;
use velv_sat::{Budget, CnfFormula, Lit, Solver};

fn lit(i: i64) -> Lit {
    Lit::from_dimacs(i)
}

/// Pigeonhole PHP(n+1, n): small, UNSAT, and conflict-rich.
fn pigeonhole(holes: i64) -> CnfFormula {
    let pigeons = holes + 1;
    let mut cnf = CnfFormula::new(0);
    let var = |p: i64, h: i64| lit(1 + (p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| var(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    cnf
}

fn histogram_count(snapshot: &velv_obs::Snapshot, preset: &str) -> u64 {
    snapshot
        .get("velv_sat_decision_level", &[("preset", preset)])
        .map(|s| match &s.value {
            velv_obs::MetricValue::Histogram(h) => h.count,
            _ => 0,
        })
        .unwrap_or(0)
}

#[test]
fn decision_level_histogram_counts_conflicts_not_heartbeats() {
    // A unique preset label isolates this test's series on the shared
    // process-global registry.
    let preset = "chaff-levels-test";
    let before = histogram_count(&velv_obs::global().snapshot(), preset);
    let mut solver = CdclSolver::chaff_with(|c| c.name = preset.to_string());
    assert!(solver.solve(&pigeonhole(6)).is_unsat());
    let conflicts = solver.stats().conflicts;
    assert!(
        conflicts > 100,
        "pigeonhole should force real conflicts, got {conflicts}"
    );
    let observed = histogram_count(&velv_obs::global().snapshot(), preset) - before;
    // Every conflict lands in the histogram — the old heartbeat-sampled
    // version would have observed conflicts/1024 values here.
    assert_eq!(
        observed, conflicts,
        "histogram count must equal the conflict count"
    );
}

#[test]
fn recorder_captures_series_and_final_sample_on_abort() {
    let preset = "chaff-recorder-test";
    let recorder = velv_obs::shared_recorder();
    {
        let _guard = velv_sat::install_solve_recorder(recorder.clone());
        let mut solver = CdclSolver::chaff_with(|c| c.name = preset.to_string());
        // A conflict budget below the heartbeat interval: the run aborts
        // before any heartbeat, so the series must be closed by the
        // end-of-solve sample alone.
        let budget = Budget {
            max_conflicts: Some(50),
            ..Budget::default()
        };
        let result = solver.solve_with_budget(&pigeonhole(8), budget);
        assert!(!result.is_decided());
    }
    let rec = recorder.lock().unwrap();
    let series = rec.series();
    assert!(
        !series.is_empty(),
        "aborted run must still close its series"
    );
    let last = series.last().unwrap();
    assert_eq!(last.label, preset);
    assert!(last.conflicts >= 50, "final sample carries final counters");
    assert_eq!(rec.markers()[0].kind, "solve");
    assert_eq!(rec.markers()[0].detail, preset);
}

#[test]
fn recorder_sees_heartbeats_and_monotone_series() {
    let recorder = velv_obs::shared_recorder();
    {
        let _guard = velv_sat::install_solve_recorder(recorder.clone());
        let mut solver = CdclSolver::chaff();
        assert!(solver.solve(&pigeonhole(8)).is_unsat());
        let conflicts = solver.stats().conflicts;
        let rec = recorder.lock().unwrap();
        let series = rec.series();
        // One sample per heartbeat plus the closing sample.
        let expected_min = (conflicts / 1024).min(rec.cap() as u64 / 2) + 1;
        assert!(
            series.len() as u64 >= expected_min,
            "expected at least {expected_min} samples, got {}",
            series.len()
        );
        assert!(series.windows(2).all(|w| w[0].conflicts <= w[1].conflicts));
        assert!(series.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert_eq!(series.last().unwrap().conflicts, conflicts);
    }
}

#[test]
fn incremental_solves_share_one_recorder_with_markers() {
    let recorder = velv_obs::shared_recorder();
    {
        let _guard = velv_sat::install_solve_recorder(recorder.clone());
        let mut solver = velv_sat::IncrementalSolver::chaff();
        solver.add_clause(&[lit(1), lit(2)]);
        solver.add_clause(&[lit(-1), lit(2)]);
        assert!(solver.solve(Budget::unlimited()).is_sat());
        assert!(solver
            .solve_assuming(&[lit(-2)], Budget::unlimited())
            .is_unsat());
    }
    let rec = recorder.lock().unwrap();
    let solves = rec.markers().iter().filter(|m| m.kind == "solve").count();
    assert!(
        solves >= 2,
        "each incremental query must mark a solve boundary, got {solves}"
    );
    assert!(!rec.series().is_empty());
}

#[test]
fn portfolio_members_feed_the_installed_recorder() {
    let recorder = velv_obs::shared_recorder();
    {
        let _guard = velv_sat::install_solve_recorder(recorder.clone());
        let mut solver = velv_sat::PortfolioSolver::new()
            .with_kind(velv_sat::presets::SolverKind::Chaff)
            .with_kind(velv_sat::presets::SolverKind::Grasp);
        assert!(solver.solve(&pigeonhole(6)).is_unsat());
    }
    let rec = recorder.lock().unwrap();
    let labels: std::collections::BTreeSet<&str> = rec
        .markers()
        .iter()
        .filter(|m| m.kind == "solve")
        .map(|m| m.detail.as_str())
        .collect();
    assert!(
        labels.contains("chaff") && labels.contains("grasp"),
        "both members must mark their solves, got {labels:?}"
    );
}
