//! Differential property tests: all complete solvers must agree with a
//! brute-force truth-table check on small random formulas, every model
//! returned by any solver must actually satisfy the formula, and the parallel
//! portfolio must agree with its member engines.
//!
//! The random instances are generated with the crate's own deterministic
//! [`SmallRng`] (seeded per test), so failures reproduce exactly.

use velv_sat::cdcl::CdclSolver;
use velv_sat::dpll::DpllSolver;
use velv_sat::local_search::{DlmSolver, WalkSatSolver};
use velv_sat::portfolio::PortfolioSolver;
use velv_sat::preprocess::preprocess;
use velv_sat::presets::SolverKind;
use velv_sat::rng::SmallRng;
use velv_sat::solver::verify_model;
use velv_sat::{Budget, CnfFormula, Lit, SatResult, Solver, Var};

/// Brute force satisfiability over at most 16 variables.
fn brute_force_sat(cnf: &CnfFormula) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force limited to 16 variables");
    for bits in 0u32..(1 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if cnf.is_satisfied_by(&assignment) {
            return true;
        }
    }
    // The empty assignment satisfies a formula with no clauses.
    n == 0 && cnf.num_clauses() == 0
}

/// A random CNF over `max_vars` variables with up to `max_clauses` clauses of
/// 1..=3 literals — the same distribution the original proptest strategy used.
fn random_cnf(rng: &mut SmallRng, max_vars: u32, max_clauses: usize) -> CnfFormula {
    let mut cnf = CnfFormula::new(max_vars as usize);
    let num_clauses = rng.gen_range(0..max_clauses + 1);
    for _ in 0..num_clauses {
        let len = rng.gen_range(1..4);
        let clause: Vec<Lit> = (0..len)
            .map(|_| {
                let v = rng.gen_range(0..max_vars as usize) as u32;
                Lit::new(Var::new(v), rng.gen_bool(0.5))
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

const CASES: usize = 96;

#[test]
fn cdcl_presets_agree_with_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xC4AFF);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 8, 24);
        let expected = brute_force_sat(&cnf);
        for mut solver in [
            CdclSolver::chaff(),
            CdclSolver::berkmin(),
            CdclSolver::grasp(),
            CdclSolver::sato(),
        ] {
            match solver.solve(&cnf) {
                SatResult::Sat(model) => {
                    assert!(
                        expected,
                        "case {case}: {} claimed SAT on an unsatisfiable formula",
                        solver.name()
                    );
                    assert!(verify_model(&cnf, &model), "case {case}");
                }
                SatResult::Unsat => assert!(
                    !expected,
                    "case {case}: {} claimed UNSAT on a satisfiable formula",
                    solver.name()
                ),
                SatResult::Unknown(reason) => panic!("case {case}: unexpected stop: {reason:?}"),
            }
        }
    }
}

#[test]
fn dpll_agrees_with_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xD9_11);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 8, 20);
        let expected = brute_force_sat(&cnf);
        match DpllSolver::new().solve(&cnf) {
            SatResult::Sat(model) => {
                assert!(expected, "case {case}");
                assert!(verify_model(&cnf, &model), "case {case}");
            }
            SatResult::Unsat => assert!(!expected, "case {case}"),
            SatResult::Unknown(reason) => panic!("case {case}: unexpected stop: {reason:?}"),
        }
    }
}

#[test]
fn local_search_models_are_valid() {
    let mut rng = SmallRng::seed_from_u64(0x10_CA1);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 8, 16);
        let budget = Budget::step_limit(50_000);
        for result in [
            WalkSatSolver::new().solve_with_budget(&cnf, budget.clone()),
            DlmSolver::new().solve_with_budget(&cnf, budget),
        ] {
            if let SatResult::Sat(model) = result {
                assert!(verify_model(&cnf, &model), "case {case}");
                assert!(brute_force_sat(&cnf), "case {case}");
            }
        }
    }
}

#[test]
fn preprocessing_preserves_satisfiability() {
    let mut rng = SmallRng::seed_from_u64(0x9E9);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 8, 20);
        let expected = brute_force_sat(&cnf);
        let pre = preprocess(&cnf, true);
        let simplified = if pre.stats.proved_unsat {
            false
        } else {
            CdclSolver::chaff().solve(&pre.cnf).is_sat()
        };
        assert_eq!(expected, simplified, "case {case}");
    }
}

#[test]
fn dimacs_roundtrip_preserves_clauses() {
    let mut rng = SmallRng::seed_from_u64(0xD1_AC5);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 10, 24);
        let text = velv_sat::dimacs::to_dimacs_string(&cnf);
        let parsed = velv_sat::dimacs::parse_dimacs(&text).unwrap();
        assert_eq!(parsed.num_vars(), cnf.num_vars(), "case {case}");
        assert_eq!(parsed.clauses(), cnf.clauses(), "case {case}");
    }
}

/// The racing portfolio must never contradict a complete member engine: on
/// every random CNF its verdict equals the brute-force answer (a decided
/// answer is guaranteed because the portfolio contains complete engines and
/// runs without a budget).
#[test]
fn portfolio_agrees_with_member_engines() {
    let mut rng = SmallRng::seed_from_u64(0xF0_110);
    for case in 0..48 {
        let cnf = random_cnf(&mut rng, 8, 24);
        let expected = brute_force_sat(&cnf);
        let mut portfolio = PortfolioSolver::of_kinds(&[
            SolverKind::Chaff,
            SolverKind::BerkMin,
            SolverKind::Dpll,
            SolverKind::WalkSat,
        ]);
        match portfolio.solve(&cnf) {
            SatResult::Sat(model) => {
                assert!(
                    expected,
                    "case {case}: portfolio claimed SAT on an UNSAT formula"
                );
                assert!(verify_model(&cnf, &model), "case {case}");
            }
            SatResult::Unsat => {
                assert!(
                    !expected,
                    "case {case}: portfolio claimed UNSAT on a SAT formula"
                )
            }
            SatResult::Unknown(reason) => panic!("case {case}: unexpected stop: {reason:?}"),
        }
        let report = portfolio.report().expect("race report");
        assert!(report.winner.is_some(), "case {case}: somebody must win");
        // No engine may contradict the brute-force answer even as a loser.
        for engine in &report.engines {
            match &engine.result {
                SatResult::Sat(model) => {
                    assert!(expected, "case {case}: {} lied", engine.name);
                    assert!(verify_model(&cnf, model), "case {case}: {}", engine.name);
                }
                SatResult::Unsat => assert!(!expected, "case {case}: {} lied", engine.name),
                SatResult::Unknown(_) => {}
            }
        }
    }
}
