//! Differential property tests: all complete solvers must agree with a
//! brute-force truth-table check on small random formulas, and every model
//! returned by any solver must actually satisfy the formula.

use proptest::prelude::*;
use velv_sat::cdcl::CdclSolver;
use velv_sat::dpll::DpllSolver;
use velv_sat::local_search::{DlmSolver, WalkSatSolver};
use velv_sat::preprocess::preprocess;
use velv_sat::solver::verify_model;
use velv_sat::{Budget, CnfFormula, Lit, SatResult, Solver, Var};

/// Brute force satisfiability over at most 16 variables.
fn brute_force_sat(cnf: &CnfFormula) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force limited to 16 variables");
    for bits in 0u32..(1 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if cnf.is_satisfied_by(&assignment) {
            return true;
        }
    }
    // The empty assignment satisfies a formula with no clauses.
    n == 0 && cnf.num_clauses() == 0
}

fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    let clause = prop::collection::vec((0..max_vars, any::<bool>()), 1..4);
    prop::collection::vec(clause, 0..max_clauses).prop_map(move |clauses| {
        let mut cnf = CnfFormula::new(max_vars as usize);
        for c in clauses {
            cnf.add_clause(
                c.into_iter()
                    .map(|(v, sign)| Lit::new(Var::new(v), sign))
                    .collect(),
            );
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cdcl_presets_agree_with_brute_force(cnf in arb_cnf(8, 24)) {
        let expected = brute_force_sat(&cnf);
        for mut solver in [CdclSolver::chaff(), CdclSolver::berkmin(), CdclSolver::grasp(), CdclSolver::sato()] {
            match solver.solve(&cnf) {
                SatResult::Sat(model) => {
                    prop_assert!(expected, "{} claimed SAT on an unsatisfiable formula", solver.name());
                    prop_assert!(verify_model(&cnf, &model));
                }
                SatResult::Unsat => prop_assert!(!expected, "{} claimed UNSAT on a satisfiable formula", solver.name()),
                SatResult::Unknown(reason) => prop_assert!(false, "unexpected stop: {reason:?}"),
            }
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force(cnf in arb_cnf(8, 20)) {
        let expected = brute_force_sat(&cnf);
        match DpllSolver::new().solve(&cnf) {
            SatResult::Sat(model) => {
                prop_assert!(expected);
                prop_assert!(verify_model(&cnf, &model));
            }
            SatResult::Unsat => prop_assert!(!expected),
            SatResult::Unknown(reason) => prop_assert!(false, "unexpected stop: {reason:?}"),
        }
    }

    #[test]
    fn local_search_models_are_valid(cnf in arb_cnf(8, 16)) {
        let budget = Budget::step_limit(50_000);
        for result in [
            WalkSatSolver::new().solve_with_budget(&cnf, budget),
            DlmSolver::new().solve_with_budget(&cnf, budget),
        ] {
            if let SatResult::Sat(model) = result {
                prop_assert!(verify_model(&cnf, &model));
                prop_assert!(brute_force_sat(&cnf));
            }
        }
    }

    #[test]
    fn preprocessing_preserves_satisfiability(cnf in arb_cnf(8, 20)) {
        let expected = brute_force_sat(&cnf);
        let pre = preprocess(&cnf, true);
        let simplified = if pre.stats.proved_unsat {
            false
        } else {
            CdclSolver::chaff().solve(&pre.cnf).is_sat()
        };
        prop_assert_eq!(expected, simplified);
    }

    #[test]
    fn dimacs_roundtrip_preserves_clauses(cnf in arb_cnf(10, 24)) {
        let text = velv_sat::dimacs::to_dimacs_string(&cnf);
        let parsed = velv_sat::dimacs::parse_dimacs(&text).unwrap();
        prop_assert_eq!(parsed.num_vars(), cnf.num_vars());
        prop_assert_eq!(parsed.clauses(), cnf.clauses());
    }
}
