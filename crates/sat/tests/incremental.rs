//! Differential and core-soundness suite for the incremental subsystem.
//!
//! * `solve_assuming` verdicts must agree with one-shot solving of the
//!   assumption-augmented formula, across seeded random instances and across
//!   every preset's `Solver::solve_assuming` (native or default).
//! * Every UNSAT core must itself re-solve UNSAT: the formula plus the core
//!   as unit clauses is unsatisfiable.
//! * Recorded iCNF sessions must replay to the same verdicts.

use velv_sat::cdcl::{CdclConfig, CdclSolver};
use velv_sat::dimacs::{parse_icnf, to_icnf_string};
use velv_sat::generators::{pigeonhole, random_3sat};
use velv_sat::incremental::{replay_icnf, IncrementalSolver};
use velv_sat::presets::SolverKind;
use velv_sat::rng::SmallRng;
use velv_sat::solver::verify_model;
use velv_sat::{Budget, CnfFormula, Lit, SatResult, Solver, Var};

/// Seeded random assumption set over the formula's variables.
fn random_assumptions(rng: &mut SmallRng, num_vars: usize, count: usize) -> Vec<Lit> {
    let mut assumptions = Vec::new();
    while assumptions.len() < count {
        let v = rng.gen_range(0..num_vars) as u32;
        let lit = Lit::new(Var::new(v), rng.gen_bool(0.5));
        if !assumptions.contains(&lit) && !assumptions.contains(&!lit) {
            assumptions.push(lit);
        }
    }
    assumptions
}

/// One-shot reference: the formula with the assumptions as unit clauses.
fn reference_verdict(cnf: &CnfFormula, assumptions: &[Lit]) -> bool {
    let mut augmented = cnf.clone();
    for &lit in assumptions {
        augmented.add_clause(vec![lit]);
    }
    match CdclSolver::chaff().solve(&augmented) {
        SatResult::Sat(_) => true,
        SatResult::Unsat => false,
        SatResult::Unknown(reason) => panic!("reference gave up: {reason:?}"),
    }
}

/// Checks that `core` is a subset of `assumptions`, that the formula is
/// unsatisfiable under the core alone, and that the re-solve's DRAT proof
/// replays through the independent checker (the core *re-certifies*).
fn assert_core_sound(cnf: &CnfFormula, assumptions: &[Lit], core: &[Lit], label: &str) {
    assert!(
        core.iter().all(|l| assumptions.contains(l)),
        "{label}: core {core:?} is not a subset of the assumptions"
    );
    let mut augmented = cnf.clone();
    for &lit in core {
        augmented.add_clause(vec![lit]);
    }
    let (result, proof) =
        CdclSolver::chaff().solve_recording_proof(&augmented, &[], Budget::unlimited());
    assert!(
        result.is_unsat(),
        "{label}: core {core:?} does not re-solve UNSAT"
    );
    let clauses = velv_sat::dimacs::cnf_to_dimacs_i32(&augmented);
    let report = velv_proof::check_proof(&clauses, &proof, &velv_proof::CheckOptions::default())
        .unwrap_or_else(|e| panic!("{label}: core refutation proof rejected: {e}"));
    assert!(
        report.derived_empty,
        "{label}: the core refutation derives the empty clause"
    );
}

#[test]
fn incremental_verdicts_match_one_shot_on_random_3sat() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for seed in 1..=6u64 {
        let num_vars = 40;
        let cnf = random_3sat(num_vars, 168, seed); // ratio 4.2
        let mut solver = IncrementalSolver::chaff();
        solver.add_formula(&cnf);
        // A sequence of queries against the same persistent solver.
        for round in 0..8 {
            let assumptions = random_assumptions(&mut rng, num_vars, 1 + round % 5);
            let expected_sat = reference_verdict(&cnf, &assumptions);
            match solver.solve_assuming(&assumptions, Budget::unlimited()) {
                SatResult::Sat(model) => {
                    assert!(expected_sat, "seed {seed} round {round}: expected UNSAT");
                    assert!(verify_model(&cnf, &model), "seed {seed} round {round}");
                    for &a in &assumptions {
                        assert_eq!(
                            model.value(a.var()),
                            a.is_positive(),
                            "seed {seed} round {round}: assumption {a:?} not honoured"
                        );
                    }
                }
                SatResult::Unsat => {
                    assert!(!expected_sat, "seed {seed} round {round}: expected SAT");
                    assert_core_sound(
                        &cnf,
                        &assumptions,
                        solver.unsat_core(),
                        &format!("seed {seed} round {round}"),
                    );
                }
                SatResult::Unknown(reason) => {
                    panic!("seed {seed} round {round}: gave up: {reason:?}")
                }
            }
        }
    }
}

#[test]
fn every_preset_solve_assuming_agrees_with_the_reference() {
    // The trait-level `solve_assuming` (native for CDCL, unit-clause default
    // for DPLL and the local searches) must agree with one-shot solving —
    // the incomplete searches may return Unknown but must never contradict.
    let mut rng = SmallRng::seed_from_u64(0xA55);
    for seed in 1..=3u64 {
        let num_vars = 25;
        let cnf = random_3sat(num_vars, 95, seed);
        for _ in 0..4 {
            let assumptions = random_assumptions(&mut rng, num_vars, 3);
            let expected_sat = reference_verdict(&cnf, &assumptions);
            for kind in SolverKind::all() {
                let mut solver = kind.build();
                let budget = Budget::step_limit(200_000);
                match solver.solve_assuming(&cnf, &assumptions, budget) {
                    SatResult::Sat(model) => {
                        assert!(expected_sat, "{}: expected UNSAT", kind.label());
                        for &a in &assumptions {
                            assert_eq!(
                                model.value(a.var()),
                                a.is_positive(),
                                "{}: assumption {a:?} not honoured",
                                kind.label()
                            );
                        }
                    }
                    SatResult::Unsat => {
                        assert!(!expected_sat, "{}: expected SAT", kind.label());
                    }
                    SatResult::Unknown(_) => {
                        assert!(
                            !solver.is_complete(),
                            "{}: a complete solver gave up within the budget",
                            kind.label()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn unsat_cores_on_structured_instances_re_solve_unsat() {
    // Implication ladders: assuming the bottom true and the top false is
    // unsatisfiable, and the core must say so on re-solving.
    let n = 30;
    let mut cnf = CnfFormula::new(n);
    for i in 0..n - 1 {
        cnf.add_clause(vec![
            Lit::negative(Var::new(i as u32)),
            Lit::positive(Var::new((i + 1) as u32)),
        ]);
    }
    let mut solver = IncrementalSolver::chaff();
    solver.add_formula(&cnf);
    for top in [5usize, 12, n - 1] {
        let assumptions = vec![
            Lit::positive(Var::new(0)),
            Lit::negative(Var::new(top as u32)),
        ];
        assert!(solver
            .solve_assuming(&assumptions, Budget::unlimited())
            .is_unsat());
        let core = solver.unsat_core().to_vec();
        assert_core_sound(&cnf, &assumptions, &core, &format!("ladder top {top}"));
        assert_eq!(core.len(), 2, "both endpoints are needed: {core:?}");
    }
    // The solver is still usable and satisfiable afterwards.
    assert!(solver.solve(Budget::unlimited()).is_sat());
}

#[test]
fn cores_from_pigeonhole_slices_re_solve_unsat() {
    // PHP(n+1, n) with each pigeon's placement clause replaced by an
    // assumption-selectable activation: assuming all pigeons in gives the
    // full (UNSAT) instance and the core must cover enough pigeons to
    // re-derive unsatisfiability.
    let holes = 4;
    let pigeons = holes + 1;
    let base = pigeonhole(holes);
    // Selector variable s_p per pigeon: s_p -> (pigeon p placed somewhere).
    let mut cnf = CnfFormula::new(base.num_vars() + pigeons);
    let selector = |p: usize| Var::new((base.num_vars() + p) as u32);
    for (i, clause) in base.clauses().iter().enumerate() {
        if i < pigeons {
            // The first `pigeons` clauses of the generator are the placement
            // clauses, in pigeon order.
            let mut guarded = clause.clone();
            guarded.push(Lit::negative(selector(i)));
            cnf.add_clause(guarded);
        } else {
            cnf.add_clause(clause.clone());
        }
    }
    let mut solver = IncrementalSolver::chaff();
    solver.add_formula(&cnf);
    let assumptions: Vec<Lit> = (0..pigeons).map(|p| Lit::positive(selector(p))).collect();
    assert!(solver
        .solve_assuming(&assumptions, Budget::unlimited())
        .is_unsat());
    let core = solver.unsat_core().to_vec();
    assert_core_sound(&cnf, &assumptions, &core, "pigeonhole selectors");
    assert_eq!(
        core.len(),
        pigeons,
        "all pigeons are needed for PHP unsatisfiability: {core:?}"
    );
    // Dropping any one pigeon must be satisfiable.
    for skip in 0..pigeons {
        let partial: Vec<Lit> = assumptions
            .iter()
            .enumerate()
            .filter_map(|(p, &l)| (p != skip).then_some(l))
            .collect();
        assert!(
            solver
                .solve_assuming(&partial, Budget::unlimited())
                .is_sat(),
            "without pigeon {skip} the instance is satisfiable"
        );
    }
}

#[test]
fn portfolio_solve_assuming_races_all_engines() {
    // The portfolio inherits the trait-default `solve_assuming` (temporary
    // unit clauses), so assumption-based callers can race every preset —
    // including the incomplete local searches — without bespoke incremental
    // code per engine.
    use velv_sat::PortfolioSolver;
    let cnf = random_3sat(30, 126, 5);
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for _ in 0..3 {
        let assumptions = random_assumptions(&mut rng, 30, 2);
        let expected_sat = reference_verdict(&cnf, &assumptions);
        let mut portfolio = PortfolioSolver::default_presets();
        match portfolio.solve_assuming(&cnf, &assumptions, Budget::unlimited()) {
            SatResult::Sat(model) => {
                assert!(expected_sat, "portfolio: expected UNSAT");
                for &a in &assumptions {
                    assert_eq!(model.value(a.var()), a.is_positive());
                }
            }
            SatResult::Unsat => assert!(!expected_sat, "portfolio: expected SAT"),
            SatResult::Unknown(reason) => panic!("portfolio gave up: {reason:?}"),
        }
    }
}

#[test]
fn icnf_dump_of_a_session_replays_identically() {
    let cnf = random_3sat(30, 126, 11);
    let mut solver = IncrementalSolver::chaff();
    solver.enable_trace();
    solver.add_formula(&cnf);
    let mut rng = SmallRng::seed_from_u64(0x1C4F);
    let mut live = Vec::new();
    for round in 0..6 {
        let assumptions = random_assumptions(&mut rng, 30, 1 + round % 3);
        live.push(solver.solve_assuming(&assumptions, Budget::unlimited()));
        if round == 2 {
            // Mutate the formula mid-session.
            solver.add_clause(&[Lit::negative(Var::new(0)), Lit::negative(Var::new(1))]);
        }
    }
    let text = to_icnf_string(solver.trace().unwrap());
    let events = parse_icnf(&text).unwrap();
    let replayed = replay_icnf(&events, CdclConfig::chaff(), Budget::unlimited());
    assert_eq!(replayed.len(), live.len());
    for (i, (a, b)) in live.iter().zip(&replayed).enumerate() {
        assert_eq!(a.is_sat(), b.is_sat(), "round {i}");
        assert_eq!(a.is_unsat(), b.is_unsat(), "round {i}");
    }
}
