//! Tracing and registry integration for the SAT layer: incremental
//! push/pop scopes must produce properly nested spans, and portfolio races
//! must surface per-member statistics on the global registry.

use std::sync::{Arc, Mutex, OnceLock};
use velv_sat::presets::SolverKind;
use velv_sat::{Budget, CnfFormula, IncrementalSolver, Lit, PortfolioSolver, Solver};

/// Sink-installing tests serialize on this lock: the tracer's sink slot is
/// process-global.
fn tracer_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lit(i: i64) -> Lit {
    Lit::from_dimacs(i)
}

#[test]
fn incremental_push_pop_scopes_nest_as_spans() {
    let _guard = tracer_lock().lock().unwrap();
    let sink = Arc::new(velv_obs::MemorySink::new());
    velv_obs::install_sink(sink.clone());

    let mut solver = IncrementalSolver::chaff();
    solver.add_clause(&[lit(1), lit(2)]);
    solver.push();
    solver.add_clause(&[lit(-1)]);
    solver.push();
    solver.add_clause(&[lit(-2)]);
    assert!(solver.solve(Budget::unlimited()).is_unsat());
    solver.pop();
    assert!(solver.solve(Budget::unlimited()).is_sat());
    solver.pop();

    velv_obs::uninstall_sink();
    let text = sink.contents();
    let summary = velv_obs::check_trace(&text).expect("well-formed trace");
    assert_eq!(summary.unclosed, 0);

    let records: Vec<velv_obs::TraceRecord> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| velv_obs::parse_trace_line(l).unwrap())
        .collect();
    let scope_opens: Vec<&velv_obs::TraceRecord> = records
        .iter()
        .filter(|r| r.kind() == "span_open" && r.get("name") == Some("incr.scope"))
        .collect();
    assert_eq!(scope_opens.len(), 2);
    // The second scope opened inside the first: parent chain reflects it.
    assert_eq!(
        scope_opens[1].get_u64("parent"),
        scope_opens[0].get_u64("id")
    );
    assert_eq!(scope_opens[0].get("depth"), Some("1"));
    assert_eq!(scope_opens[1].get("depth"), Some("2"));
    // Both solves happened inside the innermost open scope at the time.
    let solve_opens: Vec<&velv_obs::TraceRecord> = records
        .iter()
        .filter(|r| r.kind() == "span_open" && r.get("name") == Some("incr.solve"))
        .collect();
    assert_eq!(solve_opens.len(), 2);
    assert_eq!(
        solve_opens[0].get_u64("parent"),
        scope_opens[1].get_u64("id")
    );
    assert_eq!(
        solve_opens[1].get_u64("parent"),
        scope_opens[0].get_u64("id")
    );
}

#[test]
fn engine_work_reaches_the_global_registry() {
    // A pigeonhole-style UNSAT instance forces real conflicts; the
    // preset-labelled global counters must strictly grow.  Other tests run
    // concurrently against the same registry, so assert monotone growth
    // rather than exact counts.
    let before = velv_obs::global()
        .snapshot()
        .get("velv_sat_conflicts_total", &[("preset", "chaff")])
        .and_then(|s| s.value.as_u64())
        .unwrap_or(0);

    let mut cnf = CnfFormula::new(0);
    // 4 pigeons, 3 holes.
    let var = |p: i64, h: i64| lit(1 + (p * 3 + h));
    for p in 0..4 {
        cnf.add_clause((0..3).map(|h| var(p, h)).collect());
    }
    for h in 0..3 {
        for p1 in 0..4 {
            for p2 in (p1 + 1)..4 {
                cnf.add_clause(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    let mut solver = velv_sat::cdcl::CdclSolver::chaff();
    assert!(solver.solve(&cnf).is_unsat());

    let after = velv_obs::global()
        .snapshot()
        .get("velv_sat_conflicts_total", &[("preset", "chaff")])
        .and_then(|s| s.value.as_u64())
        .unwrap_or(0);
    assert!(
        after > before,
        "chaff conflict counter did not grow: {before} -> {after}"
    );
}

#[test]
fn portfolio_race_surfaces_per_member_counters() {
    let mut solver = PortfolioSolver::new()
        .with_kind(SolverKind::Chaff)
        .with_kind(SolverKind::Grasp);
    let mut cnf = CnfFormula::new(0);
    cnf.add_clause(vec![lit(1), lit(2)]);
    cnf.add_clause(vec![lit(-1), lit(2)]);
    assert!(solver.solve(&cnf).is_sat());

    let snapshot = velv_obs::global().snapshot();
    let runs = |preset: &str| {
        snapshot
            .get("velv_sat_portfolio_runs_total", &[("preset", preset)])
            .and_then(|s| s.value.as_u64())
            .unwrap_or(0)
    };
    assert!(runs("chaff") >= 1);
    assert!(runs("grasp") >= 1);
    let report = solver.report().expect("race report");
    assert!(report.winner.is_some());
    let wins: u64 = ["chaff", "grasp"]
        .iter()
        .map(|preset| {
            snapshot
                .get("velv_sat_portfolio_wins_total", &[("preset", preset)])
                .and_then(|s| s.value.as_u64())
                .unwrap_or(0)
        })
        .sum();
    assert!(wins >= 1);
}
