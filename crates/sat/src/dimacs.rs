//! Reading and writing CNF formulas in the DIMACS format.

use crate::cnf::{CnfFormula, Lit};
use std::fmt;
use std::io::{self, BufRead, Write};

/// An error produced while parsing a DIMACS file.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// An I/O error from the underlying reader.
    Io(io::Error),
    /// The problem line or a clause was malformed.
    Malformed(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error while reading DIMACS: {e}"),
            ParseDimacsError::Malformed(msg) => write!(f, "malformed DIMACS input: {msg}"),
        }
    }
}

impl std::error::Error for ParseDimacsError {}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// Parses a DIMACS CNF problem from `reader`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if the input is not a well-formed DIMACS
/// problem or the reader fails.
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<CnfFormula, ParseDimacsError> {
    let mut cnf = CnfFormula::new(0);
    let mut declared_vars = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_problem_line = false;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            let format = parts.next().unwrap_or("");
            if format != "cnf" {
                return Err(ParseDimacsError::Malformed(format!(
                    "unsupported problem format `{format}`"
                )));
            }
            declared_vars = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseDimacsError::Malformed("missing variable count".into()))?;
            saw_problem_line = true;
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError::Malformed(format!("invalid literal `{token}`")))?;
            if value == 0 {
                cnf.add_clause(std::mem::take(&mut current));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !saw_problem_line {
        return Err(ParseDimacsError::Malformed("missing problem line".into()));
    }
    if !current.is_empty() {
        cnf.add_clause(current);
    }
    cnf.ensure_vars(declared_vars);
    Ok(cnf)
}

/// Parses a DIMACS CNF problem from a string.
///
/// # Errors
///
/// See [`read_dimacs`].
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, ParseDimacsError> {
    read_dimacs(input.as_bytes())
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dimacs<W: Write>(mut writer: W, cnf: &CnfFormula) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders `cnf` as a DIMACS string.
pub fn to_dimacs_string(cnf: &CnfFormula) -> String {
    let mut out = Vec::new();
    write_dimacs(&mut out, cnf).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("DIMACS output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    #[test]
    fn parse_simple_problem() {
        let input = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(input).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn roundtrip() {
        let mut cnf = CnfFormula::new(3);
        let a = Lit::positive(Var::new(0));
        let b = Lit::negative(Var::new(1));
        let c = Lit::positive(Var::new(2));
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![c]);
        let text = to_dimacs_string(&cnf);
        let parsed = parse_dimacs(&text).unwrap();
        assert_eq!(parsed.num_vars(), cnf.num_vars());
        assert_eq!(parsed.num_clauses(), cnf.num_clauses());
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(parse_dimacs("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_bad_format() {
        assert!(parse_dimacs("p sat 3 2\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf x y\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n1 junk 0\n").is_err());
    }

    #[test]
    fn clause_spanning_lines_and_trailing_clause() {
        let input = "p cnf 3 2\n1 2\n3 0\n-1 -2 -3\n";
        let cnf = parse_dimacs(input).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].len(), 3);
        assert_eq!(cnf.clauses()[1].len(), 3);
    }
}
