//! Reading and writing CNF formulas in the DIMACS format, incremental
//! sessions in the iCNF format, and DRAT proofs in their text and binary
//! encodings.

use crate::cnf::{CnfFormula, Lit};
use std::fmt;
use std::io::{self, BufRead, Write};
use velv_proof::drat::{self, ParseDratError};
use velv_proof::Proof;

/// An error produced while parsing a DIMACS file.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// An I/O error from the underlying reader.
    Io(io::Error),
    /// The problem line or a clause was malformed.
    Malformed(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error while reading DIMACS: {e}"),
            ParseDimacsError::Malformed(msg) => write!(f, "malformed DIMACS input: {msg}"),
        }
    }
}

impl std::error::Error for ParseDimacsError {}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// Parses a DIMACS CNF problem from `reader`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if the input is not a well-formed DIMACS
/// problem or the reader fails.
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<CnfFormula, ParseDimacsError> {
    let mut cnf = CnfFormula::new(0);
    let mut declared_vars = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_problem_line = false;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            // SATLIB end-of-file marker ("%" followed by a stray "0" line):
            // everything after it is padding, not clauses.
            break;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            let format = parts.next().unwrap_or("");
            if format != "cnf" {
                return Err(ParseDimacsError::Malformed(format!(
                    "unsupported problem format `{format}`"
                )));
            }
            declared_vars = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseDimacsError::Malformed("missing variable count".into()))?;
            saw_problem_line = true;
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError::Malformed(format!("invalid literal `{token}`")))?;
            if value == 0 {
                cnf.add_clause(std::mem::take(&mut current));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !saw_problem_line {
        return Err(ParseDimacsError::Malformed("missing problem line".into()));
    }
    if !current.is_empty() {
        cnf.add_clause(current);
    }
    cnf.ensure_vars(declared_vars);
    Ok(cnf)
}

/// Parses a DIMACS CNF problem from a string.
///
/// # Errors
///
/// See [`read_dimacs`].
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, ParseDimacsError> {
    read_dimacs(input.as_bytes())
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dimacs<W: Write>(mut writer: W, cnf: &CnfFormula) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders `cnf` as a DIMACS string.
pub fn to_dimacs_string(cnf: &CnfFormula) -> String {
    let mut out = Vec::new();
    write_dimacs(&mut out, cnf).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("DIMACS output is ASCII")
}

/// One event of an incremental solving session, in the order it happened.
///
/// The iCNF format (the `p inccnf` incremental-track format) interleaves
/// ordinary clause lines with *solve cues*: a line `a l1 l2 ... 0` asks for a
/// `solve_assuming(&[l1, l2, ...])` call under the clauses seen so far.
/// [`crate::incremental::IncrementalSolver`] can record its session as a list
/// of these events and [`crate::incremental::replay_icnf`] re-executes one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcnfEvent {
    /// A clause added to the formula.
    AddClause(Vec<Lit>),
    /// A `solve_assuming` call with the given assumption literals.
    Solve(Vec<Lit>),
}

/// Writes an incremental session in iCNF format: a `p inccnf` header, one
/// line per clause (terminated by `0`) and one `a <lits> 0` line per solve
/// cue, in event order.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_icnf<W: Write>(mut writer: W, events: &[IcnfEvent]) -> io::Result<()> {
    writeln!(writer, "p inccnf")?;
    for event in events {
        let lits = match event {
            IcnfEvent::AddClause(lits) => lits,
            IcnfEvent::Solve(lits) => {
                write!(writer, "a ")?;
                lits
            }
        };
        for lit in lits {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders an incremental session as an iCNF string.
pub fn to_icnf_string(events: &[IcnfEvent]) -> String {
    let mut out = Vec::new();
    write_icnf(&mut out, events).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("iCNF output is ASCII")
}

/// Parses an iCNF incremental session from `reader`.
///
/// Comments (`c`/`%`), blank lines and stray whitespace are tolerated, as in
/// [`read_dimacs`]; each clause or assumption line must be terminated by `0`
/// on the same line.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if the input is not a well-formed iCNF
/// session or the reader fails.
pub fn read_icnf<R: BufRead>(reader: R) -> Result<Vec<IcnfEvent>, ParseDimacsError> {
    let mut events = Vec::new();
    let mut saw_problem_line = false;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            // SATLIB-style end marker: everything after it (typically a
            // stray "0" line) is padding, not an empty clause.
            break;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let format = rest.split_whitespace().next().unwrap_or("");
            if format != "inccnf" {
                return Err(ParseDimacsError::Malformed(format!(
                    "unsupported problem format `{format}` (expected inccnf)"
                )));
            }
            saw_problem_line = true;
            continue;
        }
        if !saw_problem_line {
            return Err(ParseDimacsError::Malformed(
                "missing `p inccnf` problem line".into(),
            ));
        }
        let (is_solve, body) = match line.strip_prefix('a') {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for token in body.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError::Malformed(format!("invalid literal `{token}`")))?;
            if value == 0 {
                terminated = true;
                break;
            }
            lits.push(Lit::from_dimacs(value));
        }
        if !terminated {
            return Err(ParseDimacsError::Malformed(format!(
                "unterminated iCNF line `{line}`"
            )));
        }
        events.push(if is_solve {
            IcnfEvent::Solve(lits)
        } else {
            IcnfEvent::AddClause(lits)
        });
    }
    if !saw_problem_line {
        return Err(ParseDimacsError::Malformed(
            "missing `p inccnf` problem line".into(),
        ));
    }
    Ok(events)
}

/// Parses an iCNF incremental session from a string.
///
/// # Errors
///
/// See [`read_icnf`].
pub fn parse_icnf(input: &str) -> Result<Vec<IcnfEvent>, ParseDimacsError> {
    read_icnf(input.as_bytes())
}

/// DIMACS-codes one clause as the `i32` literals the `velv_proof` checker
/// consumes.
pub fn clause_to_dimacs_i32(clause: &[Lit]) -> Vec<i32> {
    clause.iter().map(|l| l.to_dimacs() as i32).collect()
}

/// DIMACS-codes every clause of `cnf` for the `velv_proof` checker.
pub fn cnf_to_dimacs_i32(cnf: &CnfFormula) -> Vec<Vec<i32>> {
    cnf.clauses()
        .iter()
        .map(|c| clause_to_dimacs_i32(c))
        .collect()
}

impl From<ParseDratError> for ParseDimacsError {
    fn from(e: ParseDratError) -> Self {
        match e {
            ParseDratError::Io(e) => ParseDimacsError::Io(e),
            ParseDratError::Malformed(msg) => ParseDimacsError::Malformed(msg),
        }
    }
}

/// Writes a DRAT proof in the text format (`1 -2 0`, deletions prefixed with
/// `d`), as produced by proof-logging solve calls (see [`crate::proof`]).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_drat_text<W: Write>(writer: W, proof: &Proof) -> io::Result<()> {
    drat::write_text(writer, proof)
}

/// Renders a DRAT proof as a text string.
pub fn to_drat_text_string(proof: &Proof) -> String {
    drat::to_text_string(proof)
}

/// Parses a text DRAT proof.
///
/// # Errors
///
/// Returns [`ParseDimacsError::Malformed`] on malformed input.
pub fn parse_drat_text(input: &str) -> Result<Proof, ParseDimacsError> {
    Ok(drat::parse_text(input)?)
}

/// Writes a DRAT proof in the binary format (step tags `a`/`d`, literals as
/// variable-length 7-bit integers `2·|lit| + (lit < 0)`).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_drat_binary<W: Write>(writer: W, proof: &Proof) -> io::Result<()> {
    drat::write_binary(writer, proof)
}

/// Serializes a DRAT proof in the binary format.
pub fn to_drat_binary(proof: &Proof) -> Vec<u8> {
    drat::to_binary(proof)
}

/// Parses a binary DRAT proof.
///
/// # Errors
///
/// Returns [`ParseDimacsError::Malformed`] on truncated or malformed input.
pub fn parse_drat_binary(input: &[u8]) -> Result<Proof, ParseDimacsError> {
    Ok(drat::parse_binary(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    #[test]
    fn parse_simple_problem() {
        let input = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(input).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn roundtrip() {
        let mut cnf = CnfFormula::new(3);
        let a = Lit::positive(Var::new(0));
        let b = Lit::negative(Var::new(1));
        let c = Lit::positive(Var::new(2));
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![c]);
        let text = to_dimacs_string(&cnf);
        let parsed = parse_dimacs(&text).unwrap();
        assert_eq!(parsed.num_vars(), cnf.num_vars());
        assert_eq!(parsed.num_clauses(), cnf.num_clauses());
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(parse_dimacs("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_bad_format() {
        assert!(parse_dimacs("p sat 3 2\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf x y\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n1 junk 0\n").is_err());
    }

    #[test]
    fn clause_spanning_lines_and_trailing_clause() {
        let input = "p cnf 3 2\n1 2\n3 0\n-1 -2 -3\n";
        let cnf = parse_dimacs(input).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].len(), 3);
        assert_eq!(cnf.clauses()[1].len(), 3);
    }

    #[test]
    fn tolerates_comments_blank_lines_and_trailing_whitespace() {
        // Comments before, between and after clauses; blank lines; trailing
        // spaces and tabs; CRLF endings; '%' end-of-file markers (SATLIB).
        let input = "c header comment\n\nc another\np cnf 3 2   \r\n  1 -2 0\t\n\n\
                     c between clauses\n   2 3 0   \n%\n0\n\n";
        let cnf = parse_dimacs(input).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        // The '%' marker ends the input: the stray "0" line after it must
        // not be parsed as an (unsatisfiable) empty clause.
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(
            cnf.clauses()[0],
            vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]
        );
    }

    #[test]
    fn icnf_roundtrip() {
        let events = vec![
            IcnfEvent::AddClause(vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]),
            IcnfEvent::Solve(vec![Lit::from_dimacs(2)]),
            IcnfEvent::AddClause(vec![Lit::from_dimacs(-1)]),
            IcnfEvent::Solve(vec![]),
            IcnfEvent::AddClause(vec![]),
        ];
        let text = to_icnf_string(&events);
        assert!(text.starts_with("p inccnf\n"));
        assert!(text.contains("a 2 0"));
        let parsed = parse_icnf(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn icnf_tolerates_comments_and_whitespace() {
        // The '%' end marker and its stray "0" line must not be parsed as an
        // (unsatisfiable) empty clause.
        let input = "c session dump\n\np inccnf   \r\n  1 -2 0  \nc solve now\n a 2 0\t\n%\n0\n";
        let parsed = parse_icnf(input).unwrap();
        assert_eq!(
            parsed,
            vec![
                IcnfEvent::AddClause(vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]),
                IcnfEvent::Solve(vec![Lit::from_dimacs(2)]),
            ]
        );
    }

    #[test]
    fn icnf_rejects_malformed_input() {
        assert!(parse_icnf("1 2 0\n").is_err(), "missing problem line");
        assert!(parse_icnf("p cnf 2 1\n1 0\n").is_err(), "wrong format");
        assert!(parse_icnf("p inccnf\n1 2\n").is_err(), "unterminated line");
        assert!(parse_icnf("p inccnf\na 1 junk 0\n").is_err(), "bad literal");
    }

    fn sample_proof() -> Proof {
        let mut proof = Proof::new();
        proof.add(vec![3, -1]);
        proof.delete(vec![2, 3]);
        proof.add(vec![-2]);
        proof.add(vec![]);
        proof
    }

    #[test]
    fn drat_text_roundtrip() {
        let proof = sample_proof();
        let text = to_drat_text_string(&proof);
        assert!(text.contains("3 -1 0"));
        assert!(text.contains("d 2 3 0"));
        let parsed = parse_drat_text(&text).unwrap();
        assert_eq!(parsed, proof);
    }

    #[test]
    fn drat_binary_roundtrip() {
        let proof = sample_proof();
        let bytes = to_drat_binary(&proof);
        let parsed = parse_drat_binary(&bytes).unwrap();
        assert_eq!(parsed, proof);
    }

    #[test]
    fn drat_text_and_binary_agree() {
        let proof = sample_proof();
        let via_text = parse_drat_text(&to_drat_text_string(&proof)).unwrap();
        let via_binary = parse_drat_binary(&to_drat_binary(&proof)).unwrap();
        assert_eq!(via_text, via_binary);
    }

    #[test]
    fn drat_parse_errors_surface_as_dimacs_errors() {
        assert!(parse_drat_text("1 2\n").is_err(), "unterminated step");
        assert!(parse_drat_binary(&[b'q', 0]).is_err(), "bad step tag");
    }

    #[test]
    fn recorded_engine_proof_roundtrips_through_both_encodings() {
        use crate::cdcl::CdclSolver;
        use crate::generators::pigeonhole;
        use crate::solver::Budget;
        let cnf = pigeonhole(4);
        let (result, proof) =
            CdclSolver::chaff().solve_recording_proof(&cnf, &[], Budget::unlimited());
        assert!(result.is_unsat());
        assert!(!proof.is_empty(), "a real refutation has steps");
        let text = parse_drat_text(&to_drat_text_string(&proof)).unwrap();
        assert_eq!(text, proof);
        let binary = parse_drat_binary(&to_drat_binary(&proof)).unwrap();
        assert_eq!(binary, proof);
    }
}
