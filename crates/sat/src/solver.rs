//! The common interface of all SAT procedures.

use crate::cnf::{CnfFormula, Var};
use std::time::Duration;

/// A satisfying assignment, indexed by variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Creates a model from per-variable values.
    pub fn new(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// The value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range for this model.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// The raw values, indexed by variable.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Number of variables covered by this model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Why a solver stopped without an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The conflict budget was exhausted.
    ConflictLimit,
    /// The decision/flip budget was exhausted.
    DecisionLimit,
    /// The wall-clock budget was exhausted.
    TimeLimit,
    /// The procedure is incomplete and gave up (e.g. local search on an
    /// unsatisfiable formula).
    Incomplete,
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula was proven unsatisfiable.
    Unsat,
    /// The solver stopped early.
    Unknown(StopReason),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Whether the solver gave a definite answer.
    pub fn is_decided(&self) -> bool {
        !matches!(self, SatResult::Unknown(_))
    }

    /// Returns the model if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Resource limits for one `solve` call.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of conflicts (CDCL) before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum number of decisions (DPLL) or flips (local search).
    pub max_decisions: Option<u64>,
    /// Wall-clock limit.
    pub max_time: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_conflicts: None, max_decisions: None, max_time: None }
    }
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A wall-clock limit only.
    pub fn time_limit(limit: Duration) -> Self {
        Budget { max_time: Some(limit), ..Budget::default() }
    }

    /// A conflict/flip limit only.
    pub fn step_limit(steps: u64) -> Self {
        Budget {
            max_conflicts: Some(steps),
            max_decisions: Some(steps),
            max_time: None,
        }
    }
}

/// Statistics of one `solve` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of propagated literals.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of learned clauses currently kept.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of variable flips (local search only).
    pub flips: u64,
}

/// A SAT procedure.
///
/// Implementations are stateful only across one [`Solver::solve_with_budget`]
/// call; calling `solve` again starts from scratch.
pub trait Solver {
    /// A short human-readable name ("chaff", "walksat", ...).
    fn name(&self) -> &str;

    /// Whether the procedure can prove unsatisfiability.
    fn is_complete(&self) -> bool;

    /// Solves `cnf` within `budget`.
    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult;

    /// Solves `cnf` without resource limits.
    fn solve(&mut self, cnf: &CnfFormula) -> SatResult {
        self.solve_with_budget(cnf, Budget::unlimited())
    }

    /// Statistics of the most recent `solve` call.
    fn stats(&self) -> SolverStats;
}

/// Checks that `model` satisfies `cnf`; used by tests and by the verification
/// flow before trusting a counterexample.
pub fn verify_model(cnf: &CnfFormula, model: &Model) -> bool {
    if model.len() < cnf.num_vars() {
        return false;
    }
    cnf.is_satisfied_by(model.values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    #[test]
    fn sat_result_helpers() {
        let model = Model::new(vec![true, false]);
        let sat = SatResult::Sat(model.clone());
        assert!(sat.is_sat() && sat.is_decided() && !sat.is_unsat());
        assert_eq!(sat.model(), Some(&model));
        assert!(SatResult::Unsat.is_unsat());
        assert!(!SatResult::Unknown(StopReason::TimeLimit).is_decided());
    }

    #[test]
    fn model_lookup() {
        let model = Model::new(vec![true, false, true]);
        assert!(model.value(Var::new(0)));
        assert!(!model.value(Var::new(1)));
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
    }

    #[test]
    fn verify_model_checks_all_clauses() {
        let mut cnf = CnfFormula::new(2);
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![!a]);
        assert!(verify_model(&cnf, &Model::new(vec![false, true])));
        assert!(!verify_model(&cnf, &Model::new(vec![true, false])));
        assert!(!verify_model(&cnf, &Model::new(vec![false])));
    }

    #[test]
    fn budget_constructors() {
        let b = Budget::step_limit(10);
        assert_eq!(b.max_conflicts, Some(10));
        assert_eq!(b.max_decisions, Some(10));
        assert!(b.max_time.is_none());
        let t = Budget::time_limit(Duration::from_millis(5));
        assert!(t.max_time.is_some());
    }
}
