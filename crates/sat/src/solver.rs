//! The common interface of all SAT procedures.

use crate::cnf::{CnfFormula, Lit, Var};
use crate::proof::SharedProof;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative cancellation flag.
///
/// Clones share the same flag: raising it on one clone is observed by all
/// others.  Engines poll the flag from their hot loops (every few hundred
/// steps, so the check is a single relaxed atomic load amortised to nothing)
/// and return [`StopReason::Cancelled`] instead of finishing their search —
/// this is how the portfolio stops the losing engines as soon as one engine
/// decides the formula.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, unraised token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag; every clone of this token observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw shared flag, for code that cannot depend on this crate
    /// (the BDD manager polls the same flag from its node-allocation path).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// A satisfying assignment, indexed by variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Creates a model from per-variable values.
    pub fn new(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// The value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range for this model.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// The raw values, indexed by variable.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Number of variables covered by this model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Why a solver stopped without an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The conflict budget was exhausted.
    ConflictLimit,
    /// The decision/flip budget was exhausted.
    DecisionLimit,
    /// The wall-clock budget was exhausted.
    TimeLimit,
    /// The procedure is incomplete and gave up (e.g. local search on an
    /// unsatisfiable formula).
    Incomplete,
    /// The shared [`CancelToken`] was raised (another portfolio engine won).
    Cancelled,
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula was proven unsatisfiable.
    Unsat,
    /// The solver stopped early.
    Unknown(StopReason),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Whether the solver gave a definite answer.
    pub fn is_decided(&self) -> bool {
        !matches!(self, SatResult::Unknown(_))
    }

    /// Returns the model if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Resource limits for one `solve` call.
///
/// Besides the classic conflict/decision/time bounds, a budget can carry a
/// shared [`CancelToken`] and an absolute `deadline`.  Engines resolve
/// `max_time` into a deadline once per solve with [`Budget::started`] and
/// then poll [`Budget::exceeded`] every few hundred steps, so neither
/// `Instant::now` nor the atomic load is on the per-iteration path.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum number of conflicts (CDCL) before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum number of decisions (DPLL) or flips (local search).
    pub max_decisions: Option<u64>,
    /// Wall-clock limit, relative to the start of the solve call.
    pub max_time: Option<Duration>,
    /// Absolute wall-clock deadline (combines with `max_time`: the earlier
    /// of the two wins once [`Budget::started`] has resolved them).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag shared with other engines.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A wall-clock limit only.
    pub fn time_limit(limit: Duration) -> Self {
        Budget {
            max_time: Some(limit),
            ..Budget::default()
        }
    }

    /// A conflict/flip limit only.
    pub fn step_limit(steps: u64) -> Self {
        Budget {
            max_conflicts: Some(steps),
            max_decisions: Some(steps),
            ..Budget::default()
        }
    }

    /// Attaches a shared cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Resolves the relative `max_time` into an absolute deadline, taken from
    /// a single `Instant::now()` call.  Engines call this once per solve so
    /// their hot loops only compare instants.
    pub fn started(&self) -> Budget {
        let mut resolved = self.clone();
        if let Some(limit) = resolved.max_time {
            let from_now = Instant::now() + limit;
            resolved.deadline = Some(match resolved.deadline {
                Some(existing) => existing.min(from_now),
                None => from_now,
            });
        }
        resolved
    }

    /// Cheap stop check for hot loops: the cancel flag is one relaxed atomic
    /// load, and the deadline costs one `Instant::now()` — call this every N
    /// steps, not every iteration.  Returns why the solver must stop, if it
    /// must.
    pub fn exceeded(&self) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::TimeLimit);
            }
        }
        None
    }

    /// Whether the budget demands an immediate stop (see [`Budget::exceeded`]).
    pub fn should_stop(&self) -> bool {
        self.exceeded().is_some()
    }
}

/// Statistics of one `solve` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of propagated literals.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of learned clauses currently kept.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of variable flips (local search only).
    pub flips: u64,
}

/// A SAT procedure.
///
/// Implementations are stateful only across one [`Solver::solve_with_budget`]
/// call; calling `solve` again starts from scratch.
pub trait Solver {
    /// A short human-readable name ("chaff", "walksat", ...).
    fn name(&self) -> &str;

    /// Whether the procedure can prove unsatisfiability.
    fn is_complete(&self) -> bool;

    /// Solves `cnf` within `budget`.
    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult;

    /// Solves `cnf` without resource limits.
    fn solve(&mut self, cnf: &CnfFormula) -> SatResult {
        self.solve_with_budget(cnf, Budget::unlimited())
    }

    /// Solves `cnf` under the given `assumptions` within `budget`: `Sat`
    /// models satisfy every assumption, `Unsat` means unsatisfiable *under
    /// the assumptions* (for a complete procedure).
    ///
    /// The default implementation adds the assumptions to a copy of the
    /// formula as temporary unit clauses, so every procedure — DPLL, the
    /// local searches, the portfolio — is assumption-capable without bespoke
    /// incremental code.  Engines with native assumption handling (the CDCL
    /// presets, [`crate::incremental::IncrementalSolver`]) override this with
    /// pseudo-decision assumptions, which additionally support UNSAT cores.
    fn solve_assuming(
        &mut self,
        cnf: &CnfFormula,
        assumptions: &[Lit],
        budget: Budget,
    ) -> SatResult {
        if assumptions.is_empty() {
            return self.solve_with_budget(cnf, budget);
        }
        let mut augmented = cnf.clone();
        for &lit in assumptions {
            augmented.add_clause(vec![lit]);
        }
        self.solve_with_budget(&augmented, budget)
    }

    /// Solves `cnf` under `assumptions` while logging a DRAT proof of every
    /// inference into `proof`, so that an `Unsat` answer can be replayed by
    /// the independent checker in `velv_proof`.  The terminal proof step of a
    /// refutation is the empty clause, or — under assumptions — the clause
    /// over the negated assumption subset responsible for the conflict.
    ///
    /// Returns `None` when the procedure cannot produce proofs; only the
    /// clause-learning engines override this (DPLL and the local searches
    /// perform inferences a clausal proof cannot capture cheaply, and the
    /// portfolio's winner is not known in advance).
    fn solve_with_proof(
        &mut self,
        cnf: &CnfFormula,
        assumptions: &[Lit],
        budget: Budget,
        proof: &SharedProof,
    ) -> Option<SatResult> {
        let _ = (cnf, assumptions, budget, proof);
        None
    }

    /// Statistics of the most recent `solve` call.
    fn stats(&self) -> SolverStats;
}

/// Checks that `model` satisfies `cnf`; used by tests and by the verification
/// flow before trusting a counterexample.
pub fn verify_model(cnf: &CnfFormula, model: &Model) -> bool {
    if model.len() < cnf.num_vars() {
        return false;
    }
    cnf.is_satisfied_by(model.values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    #[test]
    fn sat_result_helpers() {
        let model = Model::new(vec![true, false]);
        let sat = SatResult::Sat(model.clone());
        assert!(sat.is_sat() && sat.is_decided() && !sat.is_unsat());
        assert_eq!(sat.model(), Some(&model));
        assert!(SatResult::Unsat.is_unsat());
        assert!(!SatResult::Unknown(StopReason::TimeLimit).is_decided());
    }

    #[test]
    fn model_lookup() {
        let model = Model::new(vec![true, false, true]);
        assert!(model.value(Var::new(0)));
        assert!(!model.value(Var::new(1)));
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
    }

    #[test]
    fn verify_model_checks_all_clauses() {
        let mut cnf = CnfFormula::new(2);
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![!a]);
        assert!(verify_model(&cnf, &Model::new(vec![false, true])));
        assert!(!verify_model(&cnf, &Model::new(vec![true, false])));
        assert!(!verify_model(&cnf, &Model::new(vec![false])));
    }

    #[test]
    fn budget_constructors() {
        let b = Budget::step_limit(10);
        assert_eq!(b.max_conflicts, Some(10));
        assert_eq!(b.max_decisions, Some(10));
        assert!(b.max_time.is_none());
        let t = Budget::time_limit(Duration::from_millis(5));
        assert!(t.max_time.is_some());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        let budget = Budget::unlimited().with_cancel(clone);
        assert!(!budget.should_stop());
        token.cancel();
        assert_eq!(budget.exceeded(), Some(StopReason::Cancelled));
        // The raw flag view observes the same state.
        assert!(token.flag().load(std::sync::atomic::Ordering::Relaxed));
    }

    #[test]
    fn started_resolves_max_time_into_a_deadline() {
        let budget = Budget::time_limit(Duration::from_millis(1)).started();
        assert!(budget.deadline.is_some());
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(budget.exceeded(), Some(StopReason::TimeLimit));
        // An already-expired absolute deadline stops immediately.
        let expired = Budget::unlimited().with_deadline(Instant::now());
        assert!(expired.should_stop());
    }
}
