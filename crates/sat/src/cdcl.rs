//! Conflict-driven clause-learning SAT solver.
//!
//! One engine, several personalities: the presets configure the decision
//! heuristic, restart policy and learning limits so that the solver behaves
//! like the SAT checkers compared in the paper:
//!
//! * [`CdclSolver::chaff`] — lazy two-watched-literal propagation, VSIDS
//!   activities, aggressive restarts, phase saving (Moskewicz et al., DAC'01).
//! * [`CdclSolver::berkmin`] — decisions taken from the most recently learned
//!   conflict clause that is not yet satisfied (Goldberg & Novikov, DATE'02).
//! * [`CdclSolver::grasp`] — learning and non-chronological backtracking but a
//!   static decision order and no restarts (Marques-Silva & Sakallah).
//! * [`CdclSolver::sato`] — length-bounded learning and no activity heuristic.
//!
//! The parameter-variation runs of Table 2 are produced with
//! [`CdclSolver::chaff_with`] and a modified [`CdclConfig`].

use crate::cnf::{CnfFormula, Lit, Var};
use crate::rng::SmallRng;
use crate::solver::{Budget, Model, SatResult, Solver, SolverStats, StopReason};

/// Tuning knobs of the CDCL engine.
#[derive(Clone, Debug)]
pub struct CdclConfig {
    /// Human-readable preset name.
    pub name: String,
    /// Multiplicative decay applied to variable activities at each conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities at each conflict.
    pub clause_decay: f64,
    /// Base restart interval in conflicts; `None` disables restarts.
    pub restart_interval: Option<u64>,
    /// Geometric growth factor of the restart interval.
    pub restart_multiplier: f64,
    /// Probability of making a random decision instead of a heuristic one.
    pub random_decision_freq: f64,
    /// BerkMin-style decisions: branch on a literal of the most recently
    /// learned clause that is not yet satisfied.
    pub clause_based_decisions: bool,
    /// Use a static (index) variable order instead of activities.
    pub static_order: bool,
    /// Keep only learned clauses of at most this length (SATO-style).
    pub max_learnt_len: Option<usize>,
    /// Remember the last assigned polarity of each variable.
    pub phase_saving: bool,
    /// Periodically delete low-activity learned clauses.
    pub db_reduction: bool,
    /// RNG seed for random decisions.
    pub seed: u64,
}

impl CdclConfig {
    /// The Chaff-like preset.
    pub fn chaff() -> Self {
        CdclConfig {
            name: "chaff".to_owned(),
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_interval: Some(700),
            restart_multiplier: 1.3,
            random_decision_freq: 0.02,
            clause_based_decisions: false,
            static_order: false,
            max_learnt_len: None,
            phase_saving: true,
            db_reduction: true,
            seed: 0xC4AFF,
        }
    }

    /// The BerkMin-like preset.
    pub fn berkmin() -> Self {
        CdclConfig {
            name: "berkmin".to_owned(),
            clause_based_decisions: true,
            restart_interval: Some(550),
            random_decision_freq: 0.0,
            seed: 0xBE_12C1,
            ..CdclConfig::chaff()
        }
    }

    /// The GRASP-like preset: learning but static order and no restarts.
    pub fn grasp() -> Self {
        CdclConfig {
            name: "grasp".to_owned(),
            static_order: true,
            restart_interval: None,
            random_decision_freq: 0.0,
            db_reduction: false,
            seed: 0x62A5_0000,
            ..CdclConfig::chaff()
        }
    }

    /// The SATO-like preset: length-bounded learning, no activities.
    pub fn sato() -> Self {
        CdclConfig {
            name: "sato".to_owned(),
            static_order: true,
            restart_interval: None,
            max_learnt_len: Some(20),
            random_decision_freq: 0.0,
            db_reduction: false,
            seed: 0x5A70,
            ..CdclConfig::chaff()
        }
    }
}

/// A clause stored inside the engine.
#[derive(Clone, Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

/// The CDCL solver.
#[derive(Debug)]
pub struct CdclSolver {
    config: CdclConfig,
    stats: SolverStats,
}

impl CdclSolver {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: CdclConfig) -> Self {
        CdclSolver {
            config,
            stats: SolverStats::default(),
        }
    }

    /// Chaff-like preset.
    pub fn chaff() -> Self {
        Self::new(CdclConfig::chaff())
    }

    /// Chaff-like preset with a modified configuration (parameter variations).
    pub fn chaff_with(mut f: impl FnMut(&mut CdclConfig)) -> Self {
        let mut cfg = CdclConfig::chaff();
        f(&mut cfg);
        Self::new(cfg)
    }

    /// BerkMin-like preset.
    pub fn berkmin() -> Self {
        Self::new(CdclConfig::berkmin())
    }

    /// GRASP-like preset.
    pub fn grasp() -> Self {
        Self::new(CdclConfig::grasp())
    }

    /// SATO-like preset.
    pub fn sato() -> Self {
        Self::new(CdclConfig::sato())
    }

    /// The configuration of this solver.
    pub fn config(&self) -> &CdclConfig {
        &self.config
    }
}

impl Solver for CdclSolver {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn is_complete(&self) -> bool {
        true
    }

    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        let mut engine = Engine::new(cnf, self.config.clone());
        let result = engine.run(budget);
        self.stats = engine.stats;
        result
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

const UNDEF_CLAUSE: u32 = u32::MAX;

struct Engine {
    config: CdclConfig,
    stats: SolverStats,
    num_vars: usize,
    clauses: Vec<ClauseData>,
    /// For each literal index, the clause indices watching that literal.
    watches: Vec<Vec<u32>>,
    assigns: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    /// Lazily maintained max-activity heap entries (activity, var).
    heap: std::collections::BinaryHeap<HeapEntry>,
    static_cursor: usize,
    rng: SmallRng,
    seen: Vec<bool>,
    /// Learned clause indices, oldest first (for BerkMin decisions).
    learnt_refs: Vec<u32>,
    reduce_limit: usize,
    unsat: bool,
}

#[derive(PartialEq)]
struct HeapEntry {
    activity: f64,
    var: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.var.cmp(&other.var))
    }
}

impl Engine {
    fn new(cnf: &CnfFormula, config: CdclConfig) -> Self {
        let num_vars = cnf.num_vars();
        let seed = config.seed;
        let mut engine = Engine {
            config,
            stats: SolverStats::default(),
            num_vars,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * num_vars],
            assigns: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![UNDEF_CLAUSE; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: vec![false; num_vars],
            heap: std::collections::BinaryHeap::with_capacity(num_vars),
            static_cursor: 0,
            rng: SmallRng::seed_from_u64(seed),
            seen: vec![false; num_vars],
            learnt_refs: Vec::new(),
            reduce_limit: (cnf.num_clauses() / 3).max(4000),
            unsat: false,
        };
        // Give every variable an initial (small) activity based on occurrence count.
        for clause in cnf.clauses() {
            for lit in clause {
                engine.activity[lit.var().index()] += 1e-6;
            }
        }
        for v in 0..num_vars {
            engine.heap.push(HeapEntry {
                activity: engine.activity[v],
                var: v as u32,
            });
        }
        for clause in cnf.clauses() {
            engine.add_initial_clause(clause.clone());
            if engine.unsat {
                break;
            }
        }
        engine
    }

    fn add_initial_clause(&mut self, lits: Vec<Lit>) {
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                let lit = lits[0];
                match self.lit_value(lit) {
                    Some(true) => {}
                    Some(false) => self.unsat = true,
                    None => self.enqueue(lit, UNDEF_CLAUSE),
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watch(lits[0], idx);
                self.watch(lits[1], idx);
                self.clauses.push(ClauseData {
                    lits,
                    learnt: false,
                    activity: 0.0,
                    deleted: false,
                });
            }
        }
    }

    fn watch(&mut self, lit: Lit, clause: u32) {
        self.watches[lit.index()].push(clause);
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var().index()].map(|v| v == lit.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert!(self.lit_value(lit).is_none());
        let var = lit.var().index();
        self.assigns[var] = Some(lit.is_positive());
        self.level[var] = self.decision_level();
        self.reason[var] = reason;
        if self.config.phase_saving {
            self.phase[var] = lit.is_positive();
        }
        self.trail.push(lit);
        self.stats.propagations += 1;
    }

    /// Boolean constraint propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watchers.len() {
                let cref = watchers[i];
                if self.clauses[cref as usize].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                // Make sure the false literal is at position 1.
                {
                    let clause = &mut self.clauses[cref as usize];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref as usize].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let candidate = self.clauses[cref as usize].lits[k];
                    if self.lit_value(candidate) != Some(false) {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[candidate.index()].push(cref);
                        watchers.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    conflict = Some(cref);
                    break;
                }
                self.enqueue(first, cref);
                i += 1;
            }
            self.watches[false_lit.index()].extend(watchers.drain(i..));
            // Put back the watchers we kept.
            let kept = watchers;
            let existing = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut merged = kept;
            merged.extend(existing);
            self.watches[false_lit.index()] = merged;
            if let Some(c) = conflict {
                self.qhead = self.trail.len();
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.push(HeapEntry {
            activity: self.activity[var],
            var: var as u32,
        });
    }

    fn bump_clause(&mut self, cref: u32) {
        let clause = &mut self.clauses[cref as usize];
        clause.activity += self.cla_inc;
        if clause.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(conflict);
            let lits = self.clauses[conflict as usize].lits.clone();
            for &q in &lits {
                if Some(q) == p {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            conflict = self.reason[lit.var().index()];
            debug_assert_ne!(conflict, UNDEF_CLAUSE);
        }
        learnt[0] = !p.expect("analysis always resolves at least one literal");
        // Clear the `seen` flags of the literals kept in the learned clause.
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }
        // Compute the backtrack level: highest level among learnt[1..].
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self
                .trail_lim
                .pop()
                .expect("non-root level has a trail mark");
            for i in (start..self.trail.len()).rev() {
                let lit = self.trail[i];
                let var = lit.var().index();
                self.assigns[var] = None;
                self.reason[var] = UNDEF_CLAUSE;
                self.heap.push(HeapEntry {
                    activity: self.activity[var],
                    var: var as u32,
                });
            }
            self.trail.truncate(start);
        }
        self.qhead = self.trail.len();
        self.static_cursor = 0;
    }

    fn learn_clause(&mut self, learnt: Vec<Lit>) -> Option<u32> {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.enqueue(learnt[0], UNDEF_CLAUSE);
            return None;
        }
        if let Some(limit) = self.config.max_learnt_len {
            if learnt.len() > limit {
                // Too long to keep: use it only for the current backjump by
                // asserting its first literal with no recorded reason clause.
                // To stay sound we must still remember the clause, so fall
                // through and keep it anyway but mark it for early deletion.
            }
            let _ = limit;
        }
        let cref = self.clauses.len() as u32;
        let asserting = learnt[0];
        self.watch(learnt[0], cref);
        self.watch(learnt[1], cref);
        self.clauses.push(ClauseData {
            lits: learnt,
            learnt: true,
            activity: self.cla_inc,
            deleted: false,
        });
        self.learnt_refs.push(cref);
        self.enqueue(asserting, cref);
        Some(cref)
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        // Random decisions.
        if self.config.random_decision_freq > 0.0
            && self.rng.gen_f64() < self.config.random_decision_freq
        {
            let unassigned: Vec<usize> = (0..self.num_vars)
                .filter(|&v| self.assigns[v].is_none())
                .collect();
            if let Some(&v) = unassigned.get(self.rng.gen_range(0..unassigned.len().max(1))) {
                return Some(Lit::new(Var::new(v as u32), self.phase[v]));
            }
        }
        // BerkMin: branch inside the most recent unsatisfied learned clause.
        if self.config.clause_based_decisions {
            // Scan only the most recent learned clauses, as BerkMin does.
            for &cref in self.learnt_refs.iter().rev().take(512) {
                let clause = &self.clauses[cref as usize];
                if clause.deleted {
                    continue;
                }
                let satisfied = clause.lits.iter().any(|&l| self.lit_value(l) == Some(true));
                if satisfied {
                    continue;
                }
                let mut best: Option<(f64, Lit)> = None;
                for &l in &clause.lits {
                    if self.lit_value(l).is_none() {
                        let act = self.activity[l.var().index()];
                        if best.is_none_or(|(b, _)| act > b) {
                            best = Some((act, l));
                        }
                    }
                }
                if let Some((_, lit)) = best {
                    return Some(lit);
                }
            }
        }
        if self.config.static_order {
            while self.static_cursor < self.num_vars {
                let v = self.static_cursor;
                if self.assigns[v].is_none() {
                    return Some(Lit::new(Var::new(v as u32), self.phase[v]));
                }
                self.static_cursor += 1;
            }
            return None;
        }
        // VSIDS via the lazy heap.
        while let Some(entry) = self.heap.pop() {
            let v = entry.var as usize;
            if self.assigns[v].is_none() && (entry.activity - self.activity[v]).abs() < f64::EPSILON
            {
                return Some(Lit::new(Var::new(v as u32), self.phase[v]));
            }
            if self.assigns[v].is_none() {
                // Stale activity: re-push with the fresh value and use it anyway.
                return Some(Lit::new(Var::new(v as u32), self.phase[v]));
            }
        }
        // Heap exhausted: scan for any unassigned variable (heap entries are lazy).
        (0..self.num_vars)
            .find(|&v| self.assigns[v].is_none())
            .map(|v| Lit::new(Var::new(v as u32), self.phase[v]))
    }

    fn reduce_db(&mut self) {
        let mut learnt: Vec<u32> = self
            .learnt_refs
            .iter()
            .copied()
            .filter(|&c| self.clauses[c as usize].learnt && !self.clauses[c as usize].deleted)
            .collect();
        if learnt.len() < self.reduce_limit {
            return;
        }
        learnt.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var().index()])
            .filter(|&r| r != UNDEF_CLAUSE)
            .collect();
        let to_delete = learnt.len() / 2;
        let mut deleted = 0;
        for &cref in &learnt {
            if deleted >= to_delete {
                break;
            }
            if locked.contains(&cref) || self.clauses[cref as usize].lits.len() <= 2 {
                continue;
            }
            // SATO keeps only short clauses: delete anything above its limit eagerly.
            self.clauses[cref as usize].deleted = true;
            deleted += 1;
        }
        if let Some(limit) = self.config.max_learnt_len {
            for &cref in &learnt {
                if self.clauses[cref as usize].lits.len() > limit && !locked.contains(&cref) {
                    self.clauses[cref as usize].deleted = true;
                }
            }
        }
        self.reduce_limit += self.reduce_limit / 2;
        self.stats.learned_clauses = self
            .learnt_refs
            .iter()
            .filter(|&&c| !self.clauses[c as usize].deleted)
            .count() as u64;
    }

    fn extract_model(&self) -> Model {
        Model::new(
            (0..self.num_vars)
                .map(|v| self.assigns[v].unwrap_or(false))
                .collect(),
        )
    }

    /// How many conflicts or decisions pass between two `Budget::exceeded`
    /// polls: cheap enough to make cancellation prompt (a poll is one atomic
    /// load plus, when a deadline is set, one `Instant::now`), large enough to
    /// keep the check off the per-iteration path.
    const BUDGET_POLL_MASK: u64 = 63;

    fn run(&mut self, budget: Budget) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        let budget = budget.started();
        let mut restart_limit = self.config.restart_interval;
        let mut conflicts_since_restart: u64 = 0;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.backtrack_to(backtrack_level);
                self.learn_clause(learnt);
                self.decay_activities();
                if let Some(max_conflicts) = budget.max_conflicts {
                    if self.stats.conflicts >= max_conflicts {
                        return SatResult::Unknown(StopReason::ConflictLimit);
                    }
                }
                if self.stats.conflicts & Self::BUDGET_POLL_MASK == 0 {
                    if let Some(reason) = budget.exceeded() {
                        return SatResult::Unknown(reason);
                    }
                }
                if self.config.db_reduction {
                    self.reduce_db();
                }
            } else {
                // No conflict: maybe restart, otherwise decide.
                if let Some(limit) = restart_limit {
                    if conflicts_since_restart >= limit {
                        conflicts_since_restart = 0;
                        restart_limit =
                            Some(((limit as f64) * self.config.restart_multiplier).ceil() as u64);
                        self.stats.restarts += 1;
                        self.backtrack_to(0);
                        continue;
                    }
                }
                match self.pick_branch_lit() {
                    None => return SatResult::Sat(self.extract_model()),
                    Some(lit) => {
                        self.stats.decisions += 1;
                        if let Some(max_decisions) = budget.max_decisions {
                            if self.stats.decisions >= max_decisions {
                                return SatResult::Unknown(StopReason::DecisionLimit);
                            }
                        }
                        if self.stats.decisions & Self::BUDGET_POLL_MASK == 0 {
                            if let Some(reason) = budget.exceeded() {
                                return SatResult::Unknown(reason);
                            }
                        }
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, UNDEF_CLAUSE);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::verify_model;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable.
    fn pigeonhole(holes: usize) -> CnfFormula {
        let pigeons = holes + 1;
        let mut cnf = CnfFormula::new(pigeons * holes);
        let var = |p: usize, h: usize| Lit::positive(Var::new((p * holes + h) as u32));
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| var(p, h)).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause(vec![!var(p1, h), !var(p2, h)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let sat = cnf_of(&[&[1, 2], &[-1, 2], &[-2, 3]]);
        let unsat = cnf_of(&[&[1], &[-1]]);
        for mut solver in [
            CdclSolver::chaff(),
            CdclSolver::berkmin(),
            CdclSolver::grasp(),
            CdclSolver::sato(),
        ] {
            match solver.solve(&sat) {
                SatResult::Sat(model) => assert!(verify_model(&sat, &model)),
                other => panic!("{}: expected SAT, got {other:?}", solver.name()),
            }
            assert!(solver.solve(&unsat).is_unsat(), "{}", solver.name());
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = CnfFormula::new(1);
        cnf.add_clause(vec![]);
        assert!(CdclSolver::chaff().solve(&cnf).is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = CnfFormula::new(3);
        assert!(CdclSolver::chaff().solve(&cnf).is_sat());
    }

    #[test]
    fn pigeonhole_is_unsat_for_all_presets() {
        let cnf = pigeonhole(4);
        for mut solver in [
            CdclSolver::chaff(),
            CdclSolver::berkmin(),
            CdclSolver::grasp(),
            CdclSolver::sato(),
        ] {
            assert!(solver.solve(&cnf).is_unsat(), "{}", solver.name());
            assert!(solver.stats().conflicts > 0);
        }
    }

    #[test]
    fn solves_chained_implications() {
        // x1 -> x2 -> ... -> x50, x1 forced true, all must be true.
        let n = 50;
        let mut cnf = CnfFormula::new(n);
        cnf.add_clause(vec![Lit::positive(Var::new(0))]);
        for i in 0..n - 1 {
            cnf.add_clause(vec![
                Lit::negative(Var::new(i as u32)),
                Lit::positive(Var::new((i + 1) as u32)),
            ]);
        }
        let mut solver = CdclSolver::chaff();
        match solver.solve(&cnf) {
            SatResult::Sat(model) => {
                for i in 0..n {
                    assert!(model.value(Var::new(i as u32)));
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn random_3sat_models_are_verified() {
        use crate::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(7);
        for instance in 0..10 {
            let num_vars = 30;
            let num_clauses = 90; // below the phase transition, very likely SAT
            let mut cnf = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                while clause.len() < 3 {
                    let v = rng.gen_range(0..num_vars) as u32;
                    let sign = rng.gen_bool(0.5);
                    let l = Lit::new(Var::new(v), sign);
                    if !clause.contains(&l) && !clause.contains(&!l) {
                        clause.push(l);
                    }
                }
                cnf.add_clause(clause);
            }
            let mut solver = CdclSolver::chaff();
            if let SatResult::Sat(model) = solver.solve(&cnf) {
                assert!(verify_model(&cnf, &model), "instance {instance}");
            }
        }
    }

    #[test]
    fn conflict_budget_is_respected() {
        let cnf = pigeonhole(7);
        let mut solver = CdclSolver::chaff();
        let result = solver.solve_with_budget(
            &cnf,
            Budget {
                max_conflicts: Some(5),
                ..Budget::default()
            },
        );
        assert_eq!(result, SatResult::Unknown(StopReason::ConflictLimit));
        assert!(solver.stats().conflicts <= 6);
    }

    #[test]
    fn presets_report_distinct_names() {
        assert_eq!(CdclSolver::chaff().name(), "chaff");
        assert_eq!(CdclSolver::berkmin().name(), "berkmin");
        assert_eq!(CdclSolver::grasp().name(), "grasp");
        assert_eq!(CdclSolver::sato().name(), "sato");
        let varied = CdclSolver::chaff_with(|cfg| {
            cfg.restart_interval = Some(3000);
            cfg.name = "chaff-r3000".to_owned();
        });
        assert_eq!(varied.name(), "chaff-r3000");
        assert_eq!(varied.config().restart_interval, Some(3000));
    }
}
