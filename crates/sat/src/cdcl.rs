//! Conflict-driven clause-learning SAT solver.
//!
//! One engine, several personalities: the presets configure the decision
//! heuristic, restart policy and learning limits so that the solver behaves
//! like the SAT checkers compared in the paper:
//!
//! * [`CdclSolver::chaff`] — lazy two-watched-literal propagation, VSIDS
//!   activities, aggressive restarts, phase saving (Moskewicz et al., DAC'01).
//! * [`CdclSolver::berkmin`] — decisions taken from the most recently learned
//!   conflict clause that is not yet satisfied (Goldberg & Novikov, DATE'02).
//! * [`CdclSolver::grasp`] — learning and non-chronological backtracking but a
//!   static decision order and no restarts (Marques-Silva & Sakallah).
//! * [`CdclSolver::sato`] — length-bounded learning and no activity heuristic.
//!
//! The parameter-variation runs of Table 2 are produced with
//! [`CdclSolver::chaff_with`] and a modified [`CdclConfig`].
//!
//! # Engine internals
//!
//! The engine follows the MiniSat data layout, chosen so that the hot loops
//! (propagation and conflict analysis) touch contiguous memory and never
//! allocate:
//!
//! * **Flat clause arena** — all clauses live in one `Vec<u32>`; a clause is a
//!   two-word header (length + flags, packed activity) followed by its literal
//!   codes, addressed by a [`ClauseRef`] word offset.  Deletion marks the
//!   header and counts the waste; when enough of the arena is dead, a copying
//!   garbage collection compacts it and rewrites every watcher, reason and
//!   learned-clause reference.
//! * **Blocker-literal watch lists** — each watcher caches a *blocker*
//!   literal from the clause; if the blocker is already true the clause is
//!   skipped without touching the arena at all.  Watcher lists are filtered
//!   in place with a single read/write pass (no temporary lists, no
//!   re-merging).
//! * **Indexed activity heap** — VSIDS decisions come from a binary max-heap
//!   that tracks each variable's position, so an activity bump is a sift-up
//!   of that one entry instead of pushing a stale duplicate, and unassigned
//!   variables re-enter the heap exactly once on backtracking.
//! * **Allocation-free first-UIP analysis** — conflict resolution iterates
//!   arena clauses directly and accumulates the learned clause in a reusable
//!   buffer; nothing is cloned on the conflict path.
//! * **O(1) locked-clause checks** — a clause is locked exactly when it is
//!   the recorded reason of its first literal, so clause-database reduction
//!   asks the `reason` array instead of scanning the trail.

use crate::cnf::{CnfFormula, Lit, Var};
use crate::proof::{ProofWriter, SharedProof};
use crate::rng::SmallRng;
use crate::solver::{Budget, Model, SatResult, Solver, SolverStats, StopReason};

/// Tuning knobs of the CDCL engine.
#[derive(Clone, Debug)]
pub struct CdclConfig {
    /// Human-readable preset name.
    pub name: String,
    /// Multiplicative decay applied to variable activities at each conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities at each conflict.
    pub clause_decay: f64,
    /// Base restart interval in conflicts; `None` disables restarts.
    pub restart_interval: Option<u64>,
    /// Geometric growth factor of the restart interval.
    pub restart_multiplier: f64,
    /// Probability of making a random decision instead of a heuristic one.
    pub random_decision_freq: f64,
    /// BerkMin-style decisions: branch on a literal of the most recently
    /// learned clause that is not yet satisfied.
    pub clause_based_decisions: bool,
    /// Use a static (index) variable order instead of activities.
    pub static_order: bool,
    /// Keep only learned clauses of at most this length (SATO-style).
    pub max_learnt_len: Option<usize>,
    /// Remember the last assigned polarity of each variable.
    pub phase_saving: bool,
    /// Periodically delete low-activity learned clauses.
    pub db_reduction: bool,
    /// RNG seed for random decisions.
    pub seed: u64,
}

impl CdclConfig {
    /// The Chaff-like preset.
    pub fn chaff() -> Self {
        CdclConfig {
            name: "chaff".to_owned(),
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_interval: Some(700),
            restart_multiplier: 1.3,
            random_decision_freq: 0.02,
            clause_based_decisions: false,
            static_order: false,
            max_learnt_len: None,
            phase_saving: true,
            db_reduction: true,
            seed: 0xC4AFF,
        }
    }

    /// The BerkMin-like preset.
    pub fn berkmin() -> Self {
        CdclConfig {
            name: "berkmin".to_owned(),
            clause_based_decisions: true,
            restart_interval: Some(550),
            random_decision_freq: 0.0,
            seed: 0xBE_12C1,
            ..CdclConfig::chaff()
        }
    }

    /// The GRASP-like preset: learning but static order and no restarts.
    pub fn grasp() -> Self {
        CdclConfig {
            name: "grasp".to_owned(),
            static_order: true,
            restart_interval: None,
            random_decision_freq: 0.0,
            db_reduction: false,
            seed: 0x62A5_0000,
            ..CdclConfig::chaff()
        }
    }

    /// The SATO-like preset: length-bounded learning, no activities.
    pub fn sato() -> Self {
        CdclConfig {
            name: "sato".to_owned(),
            static_order: true,
            restart_interval: None,
            max_learnt_len: Some(20),
            random_decision_freq: 0.0,
            db_reduction: false,
            seed: 0x5A70,
            ..CdclConfig::chaff()
        }
    }
}

/// The CDCL solver.
#[derive(Debug)]
pub struct CdclSolver {
    config: CdclConfig,
    stats: SolverStats,
}

impl CdclSolver {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: CdclConfig) -> Self {
        CdclSolver {
            config,
            stats: SolverStats::default(),
        }
    }

    /// Chaff-like preset.
    pub fn chaff() -> Self {
        Self::new(CdclConfig::chaff())
    }

    /// Chaff-like preset with a modified configuration (parameter variations).
    pub fn chaff_with(mut f: impl FnMut(&mut CdclConfig)) -> Self {
        let mut cfg = CdclConfig::chaff();
        f(&mut cfg);
        Self::new(cfg)
    }

    /// BerkMin-like preset.
    pub fn berkmin() -> Self {
        Self::new(CdclConfig::berkmin())
    }

    /// GRASP-like preset.
    pub fn grasp() -> Self {
        Self::new(CdclConfig::grasp())
    }

    /// SATO-like preset.
    pub fn sato() -> Self {
        Self::new(CdclConfig::sato())
    }

    /// The configuration of this solver.
    pub fn config(&self) -> &CdclConfig {
        &self.config
    }

    /// Solves `cnf` under `assumptions` while streaming DRAT proof steps into
    /// `writer`: every learned clause and clause deletion is recorded, and an
    /// `Unsat` answer ends with the empty clause (no assumptions involved) or
    /// the clause over the negated final-core assumptions — exactly what the
    /// independent checker in `velv_proof` needs to replay the refutation.
    pub fn solve_with_proof_writer(
        &mut self,
        cnf: &CnfFormula,
        assumptions: &[Lit],
        budget: Budget,
        writer: Box<dyn ProofWriter>,
    ) -> SatResult {
        let mut engine = Engine::new(cnf, self.config.clone());
        engine.set_proof_writer(writer);
        let result = engine.search(assumptions, budget);
        self.stats = engine.stats;
        result
    }

    /// Convenience wrapper around [`CdclSolver::solve_with_proof_writer`]
    /// that records into a fresh in-memory proof and returns it.
    pub fn solve_recording_proof(
        &mut self,
        cnf: &CnfFormula,
        assumptions: &[Lit],
        budget: Budget,
    ) -> (SatResult, velv_proof::Proof) {
        let shared = SharedProof::new();
        let result =
            self.solve_with_proof_writer(cnf, assumptions, budget, Box::new(shared.clone()));
        (result, shared.take())
    }
}

impl Solver for CdclSolver {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn is_complete(&self) -> bool {
        true
    }

    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        let mut engine = Engine::new(cnf, self.config.clone());
        let result = engine.run(budget);
        self.stats = engine.stats;
        result
    }

    /// Native assumption handling: assumptions are treated as pseudo-decisions
    /// by the engine instead of being copied into the formula as unit clauses
    /// (`Unsat` then means "unsatisfiable under the assumptions").
    fn solve_assuming(
        &mut self,
        cnf: &CnfFormula,
        assumptions: &[Lit],
        budget: Budget,
    ) -> SatResult {
        let mut engine = Engine::new(cnf, self.config.clone());
        let result = engine.search(assumptions, budget);
        self.stats = engine.stats;
        result
    }

    /// CDCL is a proof-producing procedure: the search is re-run with the
    /// shared proof attached as the engine's DRAT sink.
    fn solve_with_proof(
        &mut self,
        cnf: &CnfFormula,
        assumptions: &[Lit],
        budget: Budget,
        proof: &SharedProof,
    ) -> Option<SatResult> {
        Some(self.solve_with_proof_writer(cnf, assumptions, budget, Box::new(proof.clone())))
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

/// Word offset of a clause header in the arena.
type ClauseRef = u32;

const UNDEF_CLAUSE: ClauseRef = u32::MAX;

/// Header flag: the clause was learned (has a meaningful activity).
const FLAG_LEARNT: u32 = 0b001;
/// Header flag: the clause is dead; watchers drop it lazily, GC reclaims it.
const FLAG_DELETED: u32 = 0b010;
/// Header flag (GC only): the activity word holds the relocated reference.
const FLAG_RELOCATED: u32 = 0b100;
/// Words before the literals: `[len << 3 | flags, activity_bits]`.
const HEADER_WORDS: usize = 2;

/// All clauses in one flat `Vec<u32>`: a two-word header followed by the
/// literal codes, addressed by word offset.
#[derive(Debug, Default)]
struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by deleted clauses; drives garbage collection.
    wasted: usize,
}

impl ClauseArena {
    fn with_capacity(words: usize) -> Self {
        ClauseArena {
            data: Vec::with_capacity(words),
            wasted: 0,
        }
    }

    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        // ClauseRef is a u32 word offset: fail loudly rather than wrap once a
        // run (e.g. grasp, which never deletes) outgrows the address space.
        assert!(
            self.data.len() + HEADER_WORDS + lits.len() < UNDEF_CLAUSE as usize,
            "clause arena exceeds the u32 address space"
        );
        let cref = self.data.len() as ClauseRef;
        let flags = if learnt { FLAG_LEARNT } else { 0 };
        self.data.push((lits.len() as u32) << 3 | flags);
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.index() as u32));
        cref
    }

    #[inline]
    fn len(&self, c: ClauseRef) -> usize {
        (self.data[c as usize] >> 3) as usize
    }

    #[inline]
    fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & FLAG_LEARNT != 0
    }

    #[inline]
    fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & FLAG_DELETED != 0
    }

    fn delete(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        let words = HEADER_WORDS + self.len(c);
        self.data[c as usize] |= FLAG_DELETED;
        self.wasted += words;
    }

    #[inline]
    fn lit(&self, c: ClauseRef, k: usize) -> Lit {
        Lit::from_index(self.data[c as usize + HEADER_WORDS + k] as usize)
    }

    #[inline]
    fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = c as usize + HEADER_WORDS;
        self.data.swap(base + i, base + j);
    }

    #[inline]
    fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c as usize + 1])
    }

    #[inline]
    fn set_activity(&mut self, c: ClauseRef, activity: f32) {
        self.data[c as usize + 1] = activity.to_bits();
    }

    /// Words currently in use (live clauses plus garbage).
    fn len_words(&self) -> usize {
        self.data.len()
    }

    /// Moves the clause into `to` (once; later calls return the forward
    /// reference stashed in the old header).
    fn reloc(&mut self, c: ClauseRef, to: &mut ClauseArena) -> ClauseRef {
        if self.data[c as usize] & FLAG_RELOCATED != 0 {
            return self.data[c as usize + 1];
        }
        debug_assert!(!self.is_deleted(c));
        let words = HEADER_WORDS + self.len(c);
        let nref = to.data.len() as ClauseRef;
        to.data
            .extend_from_slice(&self.data[c as usize..c as usize + words]);
        self.data[c as usize] |= FLAG_RELOCATED;
        self.data[c as usize + 1] = nref;
        nref
    }
}

impl velv_obs::MemFootprint for ClauseArena {
    /// The arena's heap bytes: the full backing capacity (slack included —
    /// that memory is held either way), measured from the arena's own
    /// bookkeeping.
    fn measured_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u32>()
    }
}

/// One entry of a literal's watch list.  The blocker is some other literal of
/// the clause: if it is already true the clause is satisfied and propagation
/// skips it without loading the clause from the arena.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Binary max-heap over variable activities with position tracking, so bumps
/// are a sift-up of one known entry (decrease-key) instead of a push of a
/// stale duplicate.
#[derive(Debug)]
struct VarHeap {
    heap: Vec<u32>,
    /// `pos[v]` is the index of `v` in `heap`, or -1 when absent.
    pos: Vec<i32>,
}

impl VarHeap {
    fn new(num_vars: usize) -> Self {
        VarHeap {
            heap: Vec::with_capacity(num_vars),
            pos: vec![-1; num_vars],
        }
    }

    /// Extends the position table for variables added after construction.
    fn grow(&mut self, num_vars: usize) {
        if num_vars > self.pos.len() {
            self.pos.resize(num_vars, -1);
        }
    }

    #[inline]
    fn in_heap(&self, v: usize) -> bool {
        self.pos[v] >= 0
    }

    fn insert(&mut self, v: usize, activity: &[f64]) {
        if self.in_heap(v) {
            return;
        }
        self.pos[v] = self.heap.len() as i32;
        self.heap.push(v as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap order after `activity[v]` increased.
    fn bumped(&mut self, v: usize, activity: &[f64]) {
        if self.in_heap(v) {
            self.sift_up(self.pos[v] as usize, activity);
        }
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("heap is non-empty");
        self.pos[top] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let p = self.heap[parent];
            if activity[p as usize] >= activity[v as usize] {
                break;
            }
            self.heap[i] = p;
            self.pos[p as usize] = i as i32;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as i32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let len = self.heap.len();
        loop {
            let mut child = 2 * i + 1;
            if child >= len {
                break;
            }
            if child + 1 < len
                && activity[self.heap[child + 1] as usize] > activity[self.heap[child] as usize]
            {
                child += 1;
            }
            let c = self.heap[child];
            if activity[v as usize] >= activity[c as usize] {
                break;
            }
            self.heap[i] = c;
            self.pos[c as usize] = i as i32;
            i = child;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as i32;
    }
}

/// Per-variable assignment encoding: `vals[v] ^ sign_bit(lit)` is 0 when the
/// literal is true, 1 when false and ≥ 2 when the variable is unassigned.
const VAL_TRUE: u8 = 0;
const VAL_FALSE: u8 = 1;
const VAL_UNDEF: u8 = 2;

pub(crate) struct Engine {
    config: CdclConfig,
    pub(crate) stats: SolverStats,
    num_vars: usize,
    arena: ClauseArena,
    /// For each literal index, the watchers of that literal.
    watches: Vec<Vec<Watcher>>,
    vals: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    phase: Vec<bool>,
    heap: VarHeap,
    /// Whether the activity heap is maintained (presets with a static order
    /// never consult it).
    use_heap: bool,
    static_cursor: usize,
    rng: SmallRng,
    seen: Vec<bool>,
    /// Reusable buffer for the clause under construction in `analyze`.
    learnt_buf: Vec<Lit>,
    /// Live learned clause references, oldest first (for BerkMin decisions).
    learnt_refs: Vec<ClauseRef>,
    /// Learned clauses over the SATO length bound, kept only while locked.
    oversize: Vec<ClauseRef>,
    /// Number of live (non-deleted) learned clauses.
    num_learnts: usize,
    reduce_limit: usize,
    unsat: bool,
    /// Final-conflict core of the last [`Engine::search`] that returned
    /// `Unsat` under assumptions: the subset of the assumption literals that
    /// already suffices for unsatisfiability.  Empty when the formula is
    /// unsatisfiable outright.
    final_core: Vec<Lit>,
    /// Preset-labelled metric handles and heartbeat state (see
    /// [`crate::obs`]): counters are delta-flushed from `stats` at heartbeat
    /// boundaries and at the end of every `search` call.
    obs: crate::obs::EngineObs,
    /// Optional DRAT sink: learned clauses, deletions, the root empty clause
    /// and the final clause of failing assumption queries are recorded here.
    proof: Option<Box<dyn ProofWriter>>,
    /// Reusable buffer for proof steps read out of the arena.
    proof_buf: Vec<Lit>,
    /// Whether the empty clause has already been emitted to the proof.
    proof_empty_logged: bool,
}

impl Engine {
    pub(crate) fn new(cnf: &CnfFormula, config: CdclConfig) -> Self {
        let _mem_scope = velv_obs::MemScope::enter("sat.arena");
        let num_vars = cnf.num_vars();
        let seed = config.seed;
        let use_heap = !config.static_order;
        let arena_words = cnf.num_literals() + HEADER_WORDS * cnf.num_clauses();
        let obs = crate::obs::EngineObs::new(&config.name);
        let mut engine = Engine {
            config,
            stats: SolverStats::default(),
            num_vars,
            arena: ClauseArena::with_capacity(arena_words),
            watches: vec![Vec::new(); 2 * num_vars],
            vals: vec![VAL_UNDEF; num_vars],
            level: vec![0; num_vars],
            reason: vec![UNDEF_CLAUSE; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: vec![false; num_vars],
            heap: VarHeap::new(num_vars),
            use_heap,
            static_cursor: 0,
            rng: SmallRng::seed_from_u64(seed),
            seen: vec![false; num_vars],
            learnt_buf: Vec::new(),
            learnt_refs: Vec::new(),
            oversize: Vec::new(),
            num_learnts: 0,
            reduce_limit: (cnf.num_clauses() / 3).max(4000),
            unsat: false,
            final_core: Vec::new(),
            obs,
            proof: None,
            proof_buf: Vec::new(),
            proof_empty_logged: false,
        };
        // Give every variable an initial (small) activity based on occurrence count.
        for clause in cnf.clauses() {
            for lit in clause {
                engine.activity[lit.var().index()] += 1e-6;
            }
        }
        if use_heap {
            for v in 0..num_vars {
                engine.heap.insert(v, &engine.activity);
            }
        }
        for clause in cnf.clauses() {
            engine.add_initial_clause(clause);
            if engine.unsat {
                break;
            }
        }
        engine
    }

    /// Grows the variable tables (values, levels, reasons, activities, phases,
    /// watch lists, decision heap) to cover at least `n` variables.
    pub(crate) fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        let _mem_scope = velv_obs::MemScope::enter("sat.arena");
        self.watches.resize_with(2 * n, Vec::new);
        self.vals.resize(n, VAL_UNDEF);
        self.level.resize(n, 0);
        self.reason.resize(n, UNDEF_CLAUSE);
        self.activity.resize(n, 0.0);
        self.phase.resize(n, false);
        self.seen.resize(n, false);
        self.heap.grow(n);
        if self.use_heap {
            for v in self.num_vars..n {
                self.heap.insert(v, &self.activity);
            }
        }
        self.num_vars = n;
    }

    /// Number of variables currently known to the engine.
    pub(crate) fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The engine's memory figures, measured from its own bookkeeping: arena
    /// occupancy and fragmentation in words, plus measured byte counts for
    /// the arena, the watch lists and the learnt database.  Cheap enough for
    /// heartbeat cadence (one walk of the watch-list spines and the learnt
    /// references per call).
    fn arena_figures(&self) -> crate::obs::ArenaFigures {
        use velv_obs::MemFootprint as _;
        let watches_bytes = self.watches.capacity() * std::mem::size_of::<Vec<Watcher>>()
            + self
                .watches
                .iter()
                .map(|w| w.capacity() * std::mem::size_of::<Watcher>())
                .sum::<usize>();
        let learnt_words: usize = self
            .learnt_refs
            .iter()
            .filter(|&&c| !self.arena.is_deleted(c))
            .map(|&c| HEADER_WORDS + self.arena.len(c))
            .sum();
        let learnt_bytes = learnt_words * std::mem::size_of::<u32>()
            + self.learnt_refs.capacity() * std::mem::size_of::<ClauseRef>();
        crate::obs::ArenaFigures {
            len_words: self.arena.len_words() as u64,
            wasted_words: self.arena.wasted as u64,
            arena_bytes: self.arena.measured_bytes() as u64,
            watches_bytes: watches_bytes as u64,
            learnt_bytes: learnt_bytes as u64,
        }
    }

    /// Whether a root-level conflict has proven the formula unsatisfiable.
    pub(crate) fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// The assumption subset extracted by the last failing [`Engine::search`].
    pub(crate) fn final_core(&self) -> &[Lit] {
        &self.final_core
    }

    /// Attaches a DRAT proof sink.  From here on every learned clause, every
    /// clause deletion and the terminal clause of each UNSAT answer are
    /// recorded, making the engine's refutations independently checkable.
    pub(crate) fn set_proof_writer(&mut self, writer: Box<dyn ProofWriter>) {
        self.proof = Some(writer);
    }

    /// Records the clause currently held in `learnt_buf` as a proof addition.
    fn proof_log_learnt(&mut self) {
        if let Some(proof) = self.proof.as_mut() {
            proof.add_clause(&self.learnt_buf);
        }
    }

    /// Records the empty clause (at most once): the formula is refuted.
    fn proof_log_empty(&mut self) {
        if self.proof_empty_logged {
            return;
        }
        if let Some(proof) = self.proof.as_mut() {
            proof.add_clause(&[]);
            self.proof_empty_logged = true;
        }
    }

    /// Records the terminal clause of a failing assumption query: the
    /// disjunction of the negated final-core literals, which is RUP with
    /// respect to the clause database (resolving the reasons along the final
    /// conflict's implication graph yields exactly this clause).
    fn proof_log_final_core(&mut self) {
        if self.proof.is_none() {
            return;
        }
        self.proof_buf.clear();
        for i in 0..self.final_core.len() {
            let assumption = self.final_core[i];
            self.proof_buf.push(!assumption);
        }
        if let Some(proof) = self.proof.as_mut() {
            proof.add_clause(&self.proof_buf);
        }
    }

    /// Records the deletion of an arena clause.
    fn proof_log_delete(&mut self, cref: ClauseRef) {
        if self.proof.is_none() {
            return;
        }
        self.proof_buf.clear();
        for k in 0..self.arena.len(cref) {
            self.proof_buf.push(self.arena.lit(cref, k));
        }
        if let Some(proof) = self.proof.as_mut() {
            proof.delete_clause(&self.proof_buf);
        }
    }

    /// Adds a clause between solves.  The engine first returns to decision
    /// level 0; the clause is normalised (sorted, deduplicated, tautologies
    /// dropped), simplified against the root-level assignment, and then
    /// installed with regular watches.  Unit clauses are enqueued at the root
    /// and propagated by the next [`Engine::search`]; an empty clause marks
    /// the formula unsatisfiable.
    pub(crate) fn add_clause_dynamic(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        self.backtrack_to(0);
        if let Some(max) = lits.iter().map(|l| l.var().index() + 1).max() {
            self.ensure_vars(max);
        }
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        for pair in clause.windows(2) {
            if pair[0].var() == pair[1].var() {
                return; // tautology: x and ¬x in the same clause
            }
        }
        // Only root-level assignments remain after the backtrack, so any
        // assigned literal is permanently true or false.
        if clause.iter().any(|&l| self.value_lit(l) == VAL_TRUE) {
            return; // satisfied at the root forever
        }
        clause.retain(|&l| self.value_lit(l) != VAL_FALSE);
        match clause.len() {
            0 => {
                // Every literal is false at the root: the empty clause is RUP
                // from the caller's clause and the root-level units.
                self.unsat = true;
                self.proof_log_empty();
            }
            1 => self.enqueue(clause[0], UNDEF_CLAUSE),
            _ => {
                let cref = self.arena.alloc(&clause, false);
                self.watch(clause[0], cref, clause[1]);
                self.watch(clause[1], cref, clause[0]);
            }
        }
    }

    fn add_initial_clause(&mut self, lits: &[Lit]) {
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                let lit = lits[0];
                match self.value_lit(lit) {
                    VAL_TRUE => {}
                    VAL_FALSE => self.unsat = true,
                    _ => self.enqueue(lit, UNDEF_CLAUSE),
                }
            }
            _ => {
                let cref = self.arena.alloc(lits, false);
                self.watch(lits[0], cref, lits[1]);
                self.watch(lits[1], cref, lits[0]);
            }
        }
    }

    #[inline]
    fn watch(&mut self, lit: Lit, cref: ClauseRef, blocker: Lit) {
        self.watches[lit.index()].push(Watcher { cref, blocker });
    }

    /// `VAL_TRUE` / `VAL_FALSE`, or ≥ 2 when the variable is unassigned.
    #[inline]
    fn value_lit(&self, lit: Lit) -> u8 {
        self.vals[lit.var().index()] ^ (lit.index() as u8 & 1)
    }

    #[inline]
    fn is_unassigned(&self, v: usize) -> bool {
        self.vals[v] >= VAL_UNDEF
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        let var = lit.var().index();
        debug_assert!(self.is_unassigned(var));
        self.vals[var] = lit.index() as u8 & 1;
        self.level[var] = self.decision_level();
        // Root-level facts need no reason (conflict analysis never resolves
        // on them), and recording none keeps their clauses unlocked so that
        // incremental sessions may retract scope clauses safely.
        self.reason[var] = if self.decision_level() == 0 {
            UNDEF_CLAUSE
        } else {
            reason
        };
        if self.config.phase_saving {
            self.phase[var] = lit.is_positive();
        }
        self.trail.push(lit);
        self.stats.propagations += 1;
    }

    /// Boolean constraint propagation; returns a conflicting clause if any.
    ///
    /// Each literal's watcher list is filtered in place with one read/write
    /// pass: kept watchers are compacted towards the front, moved and dead
    /// ones are dropped, and the list is truncated once at the end.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let widx = false_lit.index();
            let mut i = 0;
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < self.watches[widx].len() {
                let w = self.watches[widx][i];
                i += 1;
                // Blocker check: clause already satisfied, arena untouched.
                if self.value_lit(w.blocker) == VAL_TRUE {
                    self.watches[widx][j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                if self.arena.is_deleted(cref) {
                    continue; // dropped lazily
                }
                // Make sure the false literal is at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.value_lit(first) == VAL_TRUE {
                    self.watches[widx][j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.arena.len(cref);
                for k in 2..len {
                    let candidate = self.arena.lit(cref, k);
                    if self.value_lit(candidate) != VAL_FALSE {
                        self.arena.swap_lits(cref, 1, k);
                        self.watch(candidate, cref, first);
                        continue 'watchers; // watcher moved, not kept
                    }
                }
                // Clause is unit or conflicting.
                self.watches[widx][j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.value_lit(first) == VAL_FALSE {
                    // Conflict: keep the remaining watchers and stop.
                    while i < self.watches[widx].len() {
                        let w = self.watches[widx][i];
                        self.watches[widx][j] = w;
                        i += 1;
                        j += 1;
                    }
                    conflict = Some(cref);
                    break;
                }
                self.enqueue(first, cref);
            }
            self.watches[widx].truncate(j);
            if let Some(c) = conflict {
                self.qhead = self.trail.len();
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            // Uniform rescale preserves the heap order.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.use_heap {
            self.heap.bumped(var, &self.activity);
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let bumped = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, bumped);
        if bumped > 1e20 {
            for idx in 0..self.learnt_refs.len() {
                let c = self.learnt_refs[idx];
                let scaled = self.arena.activity(c) * 1e-20;
                self.arena.set_activity(c, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis.  The learned clause is accumulated in
    /// `self.learnt_buf` (asserting literal first); returns the backtrack
    /// level.  Clauses are read straight from the arena — nothing is cloned.
    fn analyze(&mut self, mut conflict: ClauseRef) -> u32 {
        self.learnt_buf.clear();
        self.learnt_buf.push(Lit::positive(Var::new(0))); // placeholder
        let mut counter = 0usize;
        let mut index = self.trail.len();
        // On the first iteration every literal of the conflicting clause is
        // examined; on later ones position 0 holds the literal being resolved
        // on (the propagation invariant keeps the asserted literal there).
        let mut start = 0usize;
        loop {
            if self.arena.is_learnt(conflict) {
                self.bump_clause(conflict);
            }
            let len = self.arena.len(conflict);
            for k in start..len {
                let q = self.arena.lit(conflict, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        self.learnt_buf.push(q);
                    }
                }
            }
            // Select the next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                self.learnt_buf[0] = !lit;
                break;
            }
            conflict = self.reason[lit.var().index()];
            debug_assert_ne!(conflict, UNDEF_CLAUSE);
            start = 1;
        }
        // Clear the `seen` flags of the literals kept in the learned clause.
        for idx in 1..self.learnt_buf.len() {
            self.seen[self.learnt_buf[idx].var().index()] = false;
        }
        // Compute the backtrack level: highest level among learnt[1..].
        if self.learnt_buf.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..self.learnt_buf.len() {
                if self.level[self.learnt_buf[i].var().index()]
                    > self.level[self.learnt_buf[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            self.learnt_buf.swap(1, max_i);
            self.level[self.learnt_buf[1].var().index()]
        }
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self
                .trail_lim
                .pop()
                .expect("non-root level has a trail mark");
            for i in (start..self.trail.len()).rev() {
                let var = self.trail[i].var().index();
                self.vals[var] = VAL_UNDEF;
                self.reason[var] = UNDEF_CLAUSE;
                if self.use_heap {
                    self.heap.insert(var, &self.activity);
                }
            }
            self.trail.truncate(start);
        }
        // Never advance qhead past a pending (unpropagated) entry: root
        // units enqueued by `add_clause_dynamic` between solves sit below
        // the trail end and must still be propagated by the next search.
        self.qhead = self.qhead.min(self.trail.len());
        self.static_cursor = 0;
    }

    /// Records the clause accumulated in `learnt_buf` and asserts its first
    /// literal.  SATO's length bound is enforced here: an oversize clause is
    /// still needed as the reason of the backjump assertion, so it is kept
    /// but queued for deletion as soon as it is no longer locked.
    fn learn_clause(&mut self) {
        self.proof_log_learnt();
        if self.learnt_buf.len() == 1 {
            let lit = self.learnt_buf[0];
            self.enqueue(lit, UNDEF_CLAUSE);
            return;
        }
        let _mem_scope = velv_obs::MemScope::enter("sat.learnts");
        let cref = self.arena.alloc(&self.learnt_buf, true);
        self.arena.set_activity(cref, self.cla_inc);
        let asserting = self.learnt_buf[0];
        let second = self.learnt_buf[1];
        self.watch(asserting, cref, second);
        self.watch(second, cref, asserting);
        self.learnt_refs.push(cref);
        self.num_learnts += 1;
        self.stats.learned_clauses = self.num_learnts as u64;
        if let Some(limit) = self.config.max_learnt_len {
            if self.learnt_buf.len() > limit {
                self.oversize.push(cref);
            }
        }
        self.enqueue(asserting, cref);
    }

    /// A clause is locked while it is the reason of its asserted first
    /// literal — an O(1) check against the `reason` array.
    #[inline]
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.arena.lit(cref, 0);
        self.value_lit(first) == VAL_TRUE && self.reason[first.var().index()] == cref
    }

    fn delete_clause(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_locked(cref));
        self.proof_log_delete(cref);
        if self.arena.is_learnt(cref) {
            self.num_learnts -= 1;
            self.stats.learned_clauses = self.num_learnts as u64;
        }
        self.arena.delete(cref);
    }

    /// Deletes queued oversize learned clauses (SATO length bound) as soon as
    /// they stop being locked, keeping the live learned set bounded even for
    /// presets that never run full database reduction.
    fn purge_oversize(&mut self) {
        if self.oversize.is_empty() {
            return;
        }
        let mut kept = 0;
        for i in 0..self.oversize.len() {
            let cref = self.oversize[i];
            if self.arena.is_deleted(cref) {
                continue; // already removed by database reduction
            }
            if self.is_locked(cref) {
                self.oversize[kept] = cref;
                kept += 1;
            } else {
                self.delete_clause(cref);
            }
        }
        self.oversize.truncate(kept);
        if kept == 0 {
            self.collect_garbage_if_needed();
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay as f32;
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        // Random decisions: bounded rejection sampling against the current
        // assignment — no scratch list of all unassigned variables.
        if self.num_vars > 0
            && self.config.random_decision_freq > 0.0
            && self.rng.gen_f64() < self.config.random_decision_freq
        {
            for _ in 0..16 {
                let v = self.rng.gen_range(0..self.num_vars);
                if self.is_unassigned(v) {
                    return Some(Lit::new(Var::new(v as u32), self.phase[v]));
                }
            }
            // Densely assigned: fall through to the heuristic.
        }
        // BerkMin: branch inside the most recent unsatisfied learned clause.
        if self.config.clause_based_decisions {
            // Scan only the most recent learned clauses, as BerkMin does.
            for idx in (self.learnt_refs.len().saturating_sub(512)..self.learnt_refs.len()).rev() {
                let cref = self.learnt_refs[idx];
                if self.arena.is_deleted(cref) {
                    continue;
                }
                let len = self.arena.len(cref);
                let mut satisfied = false;
                let mut best: Option<(f64, Lit)> = None;
                for k in 0..len {
                    let l = self.arena.lit(cref, k);
                    match self.value_lit(l) {
                        VAL_TRUE => {
                            satisfied = true;
                            break;
                        }
                        VAL_FALSE => {}
                        _ => {
                            let act = self.activity[l.var().index()];
                            if best.is_none_or(|(b, _)| act > b) {
                                best = Some((act, l));
                            }
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                if let Some((_, lit)) = best {
                    return Some(lit);
                }
            }
        }
        if self.config.static_order {
            while self.static_cursor < self.num_vars {
                let v = self.static_cursor;
                if self.is_unassigned(v) {
                    return Some(Lit::new(Var::new(v as u32), self.phase[v]));
                }
                self.static_cursor += 1;
            }
            return None;
        }
        // VSIDS: pop until an unassigned variable surfaces.  Every unassigned
        // variable is in the heap (re-inserted on backtracking), so an empty
        // heap means a full assignment.
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.is_unassigned(v) {
                return Some(Lit::new(Var::new(v as u32), self.phase[v]));
            }
        }
        debug_assert!(
            (0..self.num_vars).all(|v| !self.is_unassigned(v)),
            "empty decision heap with unassigned variables"
        );
        None
    }

    fn reduce_db(&mut self) {
        if self.num_learnts < self.reduce_limit {
            return;
        }
        // Drop already-dead references, then sort a scratch copy by activity
        // (learnt_refs itself must stay in age order for BerkMin).
        self.learnt_refs.retain(|&c| !self.arena.is_deleted(c));
        let mut by_activity = self.learnt_refs.clone();
        by_activity.sort_by(|&a, &b| {
            self.arena
                .activity(a)
                .partial_cmp(&self.arena.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let target = self.num_learnts / 2;
        let mut deleted = 0;
        for &cref in &by_activity {
            if deleted >= target {
                break;
            }
            if self.arena.len(cref) <= 2 || self.is_locked(cref) {
                continue;
            }
            self.delete_clause(cref);
            deleted += 1;
        }
        self.learnt_refs.retain(|&c| !self.arena.is_deleted(c));
        self.reduce_limit += self.reduce_limit / 2;
        self.collect_garbage_if_needed();
    }

    fn collect_garbage_if_needed(&mut self) {
        // Compact once a fifth of the arena is dead.
        if self.arena.wasted * 5 >= self.arena.data.len().max(1) {
            self.collect_garbage();
        }
    }

    /// Copying garbage collection: live clauses move to a fresh arena and
    /// every watcher, reason and learned-clause reference is rewritten.
    /// Every live clause has exactly two watchers, so walking the watch lists
    /// relocates all of them; later references reuse the forward pointer.
    fn collect_garbage(&mut self) {
        let _mem_scope = velv_obs::MemScope::enter("sat.arena");
        let mut to = ClauseArena::with_capacity(self.arena.data.len() - self.arena.wasted);
        for widx in 0..self.watches.len() {
            let mut kept = 0;
            for i in 0..self.watches[widx].len() {
                let mut w = self.watches[widx][i];
                if self.arena.is_deleted(w.cref) {
                    continue;
                }
                w.cref = self.arena.reloc(w.cref, &mut to);
                self.watches[widx][kept] = w;
                kept += 1;
            }
            self.watches[widx].truncate(kept);
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            let r = self.reason[v];
            if r != UNDEF_CLAUSE {
                // Reason clauses are locked, hence live and already watched.
                self.reason[v] = self.arena.reloc(r, &mut to);
            }
        }
        Self::compact_refs(&mut self.learnt_refs, &mut self.arena, &mut to);
        Self::compact_refs(&mut self.oversize, &mut self.arena, &mut to);
        self.arena = to;
        // The fragmentation gauges must follow the compaction immediately,
        // not at the next heartbeat: a monitoring poll between GC and the
        // next heartbeat would otherwise show stale waste.
        self.obs.publish_arena(&self.arena_figures());
    }

    /// Drops dead references and relocates the live ones into `to`.
    fn compact_refs(refs: &mut Vec<ClauseRef>, arena: &mut ClauseArena, to: &mut ClauseArena) {
        let mut kept = 0;
        for i in 0..refs.len() {
            let c = refs[i];
            if arena.is_deleted(c) {
                continue;
            }
            refs[kept] = arena.reloc(c, to);
            kept += 1;
        }
        refs.truncate(kept);
    }

    pub(crate) fn extract_model(&self) -> Model {
        Model::new(
            (0..self.num_vars)
                .map(|v| self.vals[v] == VAL_TRUE)
                .collect(),
        )
    }

    /// How many conflicts or decisions pass between two `Budget::exceeded`
    /// polls: cheap enough to make cancellation prompt (a poll is one atomic
    /// load plus, when a deadline is set, one `Instant::now`), large enough to
    /// keep the check off the per-iteration path.
    const BUDGET_POLL_MASK: u64 = 63;

    fn run(&mut self, budget: Budget) -> SatResult {
        self.search(&[], budget)
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): the assumption `p`
    /// is false under the current partial assignment, and the returned core is
    /// a subset of the assumption literals that already forces the conflict —
    /// `p` itself plus every assumption reachable backwards through the
    /// implication graph from `¬p`.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        let pv = p.var().index();
        if self.trail_lim.is_empty() || self.level[pv] == 0 {
            // ¬p is a root-level fact: assuming p alone is contradictory.
            return core;
        }
        self.seen[pv] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var().index();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            let r = self.reason[v];
            if r == UNDEF_CLAUSE {
                // A pseudo-decision: every decision below the current point is
                // an assumption, and this one contributes to the conflict.
                debug_assert!(self.level[v] > 0);
                core.push(x);
            } else {
                for k in 1..self.arena.len(r) {
                    let q = self.arena.lit(r, k);
                    if self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
        }
        self.seen[pv] = false;
        core
    }

    /// CDCL search under `assumptions`, treated as pseudo-decisions at the
    /// bottom of the decision stack (MiniSat-style).  `Unsat` means
    /// unsatisfiable *under the assumptions*; [`Engine::final_core`] then
    /// holds the responsible assumption subset (empty when the formula is
    /// unsatisfiable outright).  Step budgets are counted relative to this
    /// call, so a persistent engine can be re-solved with fresh limits.
    pub(crate) fn search(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        let start_stats = self.stats;
        self.obs.begin_solve(&start_stats);
        let result = self.search_inner(assumptions, budget);
        let stats = self.stats;
        let trail_depth = self.trail.len();
        let mem = self.arena_figures();
        self.obs
            .end_solve(&stats, trail_depth, self.num_learnts, &mem);
        result
    }

    fn search_inner(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        self.final_core.clear();
        if self.unsat {
            // The refutation may predate the proof writer (e.g. a conflicting
            // unit in the initial clauses): make sure it is on record.
            self.proof_log_empty();
            return SatResult::Unsat;
        }
        for a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        // Return to the root; `qhead` still covers any units enqueued by
        // `add_clause_dynamic` since the last call, so only genuinely new
        // root facts are propagated (not the whole root trail again).
        self.backtrack_to(0);
        let budget = budget.started();
        let start_conflicts = self.stats.conflicts;
        let start_decisions = self.stats.decisions;
        let mut restart_limit = self.config.restart_interval;
        let mut conflicts_since_restart: u64 = 0;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                let conflict_level = self.decision_level() as usize;
                self.obs.note_conflict(conflict_level);
                if self.decision_level() == 0 {
                    self.unsat = true;
                    self.proof_log_empty();
                    return SatResult::Unsat;
                }
                let backtrack_level = self.analyze(conflict);
                self.backtrack_to(backtrack_level);
                self.learn_clause();
                self.decay_activities();
                if self.config.max_learnt_len.is_some() {
                    self.purge_oversize();
                }
                if let Some(max_conflicts) = budget.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max_conflicts {
                        return SatResult::Unknown(StopReason::ConflictLimit);
                    }
                }
                if self.stats.conflicts & Self::BUDGET_POLL_MASK == 0 {
                    if let Some(reason) = budget.exceeded() {
                        return SatResult::Unknown(reason);
                    }
                }
                if self.stats.conflicts & crate::obs::HEARTBEAT_MASK == 0 {
                    let stats = self.stats;
                    let trail_depth = self.trail.len();
                    let decision_level = self.decision_level() as usize;
                    let mem = self.arena_figures();
                    self.obs
                        .heartbeat(&stats, trail_depth, decision_level, self.num_learnts, &mem);
                }
                if self.config.db_reduction {
                    self.reduce_db();
                }
            } else {
                // No conflict: maybe restart, otherwise decide.
                if let Some(limit) = restart_limit {
                    if conflicts_since_restart >= limit {
                        conflicts_since_restart = 0;
                        restart_limit =
                            Some(((limit as f64) * self.config.restart_multiplier).ceil() as u64);
                        self.stats.restarts += 1;
                        self.backtrack_to(0);
                        continue;
                    }
                }
                // Re-establish the assumptions as pseudo-decisions before any
                // real decision is taken (restarts drop them, the decision
                // loop puts them back).
                let mut asserted_assumption = false;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value_lit(p) {
                        VAL_TRUE => {
                            // Already implied: open a dummy level so the
                            // level ↔ assumption-index correspondence holds.
                            self.trail_lim.push(self.trail.len());
                        }
                        VAL_FALSE => {
                            self.final_core = self.analyze_final(p);
                            self.proof_log_final_core();
                            return SatResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, UNDEF_CLAUSE);
                            asserted_assumption = true;
                            break;
                        }
                    }
                }
                if asserted_assumption {
                    continue;
                }
                match self.pick_branch_lit() {
                    None => return SatResult::Sat(self.extract_model()),
                    Some(lit) => {
                        self.stats.decisions += 1;
                        if let Some(max_decisions) = budget.max_decisions {
                            if self.stats.decisions - start_decisions >= max_decisions {
                                return SatResult::Unknown(StopReason::DecisionLimit);
                            }
                        }
                        if self.stats.decisions & Self::BUDGET_POLL_MASK == 0 {
                            if let Some(reason) = budget.exceeded() {
                                return SatResult::Unknown(reason);
                            }
                        }
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, UNDEF_CLAUSE);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::verify_model;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    use crate::generators::pigeonhole;

    #[test]
    fn copying_gc_drops_wasted_to_zero_and_the_gauge_follows() {
        // A unique preset name keys a private gauge family on the global
        // registry, so parallel tests cannot disturb the readings.
        let mut config = CdclConfig::chaff();
        config.name = "gc-gauge-test".to_owned();
        let cnf = cnf_of(&[&[1, 2], &[2, 3], &[3, 4]]);
        let mut engine = Engine::new(&cnf, config);

        // Manufacture fragmentation: allocate unattached clauses straight
        // into the arena and delete them all.
        let extra: Vec<ClauseRef> = (0..64)
            .map(|_| engine.arena.alloc(&[lit(1), lit(2), lit(3)], true))
            .collect();
        for cref in extra {
            engine.arena.delete(cref);
        }
        assert!(engine.arena.wasted > 0);
        engine.obs.publish_arena(&engine.arena_figures());

        let labels: &[(&str, &str)] = &[("preset", "gc-gauge-test")];
        let snapshot = velv_obs::global().snapshot();
        let wasted = snapshot
            .get("velv_sat_arena_wasted_words", labels)
            .expect("wasted gauge registered");
        assert_eq!(
            wasted.value.as_u64(),
            Some(engine.arena.wasted as u64),
            "gauge tracks live fragmentation"
        );

        engine.collect_garbage();
        assert_eq!(engine.arena.wasted, 0, "copying GC leaves no waste");

        // `collect_garbage` republished the gauges itself — no heartbeat
        // needed for the registry to follow the compaction.
        let snapshot = velv_obs::global().snapshot();
        let wasted = snapshot
            .get("velv_sat_arena_wasted_words", labels)
            .expect("wasted gauge registered");
        assert_eq!(wasted.value.as_u64(), Some(0));
        let len = snapshot
            .get("velv_sat_arena_len_words", labels)
            .expect("len gauge registered");
        assert_eq!(len.value.as_u64(), Some(engine.arena.len_words() as u64));
        let bytes = snapshot
            .get("velv_sat_arena_bytes", labels)
            .expect("arena bytes gauge registered");
        use velv_obs::MemFootprint as _;
        assert_eq!(
            bytes.value.as_u64(),
            Some(engine.arena.measured_bytes() as u64)
        );
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let sat = cnf_of(&[&[1, 2], &[-1, 2], &[-2, 3]]);
        let unsat = cnf_of(&[&[1], &[-1]]);
        for mut solver in [
            CdclSolver::chaff(),
            CdclSolver::berkmin(),
            CdclSolver::grasp(),
            CdclSolver::sato(),
        ] {
            match solver.solve(&sat) {
                SatResult::Sat(model) => assert!(verify_model(&sat, &model)),
                other => panic!("{}: expected SAT, got {other:?}", solver.name()),
            }
            assert!(solver.solve(&unsat).is_unsat(), "{}", solver.name());
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = CnfFormula::new(1);
        cnf.add_clause(vec![]);
        assert!(CdclSolver::chaff().solve(&cnf).is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = CnfFormula::new(3);
        assert!(CdclSolver::chaff().solve(&cnf).is_sat());
    }

    #[test]
    fn pigeonhole_is_unsat_for_all_presets() {
        let cnf = pigeonhole(4);
        for mut solver in [
            CdclSolver::chaff(),
            CdclSolver::berkmin(),
            CdclSolver::grasp(),
            CdclSolver::sato(),
        ] {
            assert!(solver.solve(&cnf).is_unsat(), "{}", solver.name());
            assert!(solver.stats().conflicts > 0);
        }
    }

    #[test]
    fn solves_chained_implications() {
        // x1 -> x2 -> ... -> x50, x1 forced true, all must be true.
        let n = 50;
        let mut cnf = CnfFormula::new(n);
        cnf.add_clause(vec![Lit::positive(Var::new(0))]);
        for i in 0..n - 1 {
            cnf.add_clause(vec![
                Lit::negative(Var::new(i as u32)),
                Lit::positive(Var::new((i + 1) as u32)),
            ]);
        }
        let mut solver = CdclSolver::chaff();
        match solver.solve(&cnf) {
            SatResult::Sat(model) => {
                for i in 0..n {
                    assert!(model.value(Var::new(i as u32)));
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn random_3sat_models_are_verified() {
        use crate::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(7);
        for instance in 0..10 {
            let num_vars = 30;
            let num_clauses = 90; // below the phase transition, very likely SAT
            let mut cnf = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                while clause.len() < 3 {
                    let v = rng.gen_range(0..num_vars) as u32;
                    let sign = rng.gen_bool(0.5);
                    let l = Lit::new(Var::new(v), sign);
                    if !clause.contains(&l) && !clause.contains(&!l) {
                        clause.push(l);
                    }
                }
                cnf.add_clause(clause);
            }
            let mut solver = CdclSolver::chaff();
            if let SatResult::Sat(model) = solver.solve(&cnf) {
                assert!(verify_model(&cnf, &model), "instance {instance}");
            }
        }
    }

    #[test]
    fn conflict_budget_is_respected() {
        let cnf = pigeonhole(7);
        let mut solver = CdclSolver::chaff();
        let result = solver.solve_with_budget(
            &cnf,
            Budget {
                max_conflicts: Some(5),
                ..Budget::default()
            },
        );
        assert_eq!(result, SatResult::Unknown(StopReason::ConflictLimit));
        assert!(solver.stats().conflicts <= 6);
    }

    #[test]
    fn presets_report_distinct_names() {
        assert_eq!(CdclSolver::chaff().name(), "chaff");
        assert_eq!(CdclSolver::berkmin().name(), "berkmin");
        assert_eq!(CdclSolver::grasp().name(), "grasp");
        assert_eq!(CdclSolver::sato().name(), "sato");
        let varied = CdclSolver::chaff_with(|cfg| {
            cfg.restart_interval = Some(3000);
            cfg.name = "chaff-r3000".to_owned();
        });
        assert_eq!(varied.name(), "chaff-r3000");
        assert_eq!(varied.config().restart_interval, Some(3000));
    }

    #[test]
    fn sato_length_bound_keeps_live_learned_clauses_bounded() {
        // SATO's length bound is enforced at learn time: an oversize clause
        // survives only while it is locked (the reason of its backjump
        // assertion), and every locked clause is pinned by a distinct
        // assigned variable.  With a bound of 1 every stored learned clause
        // is oversize, so the live set can never exceed the variable count —
        // while the conflict count runs far past it.
        let mut config = CdclConfig::sato();
        config.name = "sato-tight".to_owned();
        config.max_learnt_len = Some(1);
        let cnf = pigeonhole(6);
        let mut solver = CdclSolver::new(config);
        let _ = solver.solve_with_budget(&cnf, Budget::step_limit(3_000));
        let stats = solver.stats();
        assert!(stats.conflicts > 100, "expected a real search");
        assert!(
            stats.learned_clauses <= cnf.num_vars() as u64,
            "live learned clauses not bounded: {} after {} conflicts",
            stats.learned_clauses,
            stats.conflicts,
        );
        // The regular SATO preset still decides the instance correctly.
        assert!(CdclSolver::sato().solve(&pigeonhole(4)).is_unsat());
    }

    #[test]
    fn database_reduction_and_gc_preserve_verdicts() {
        // A long chaff run on PHP(9, 8) crosses the reduction threshold
        // several times, forcing clause deletion and arena compaction; the
        // search must stay sound through both.
        let big = pigeonhole(8);
        let mut solver = CdclSolver::chaff();
        let result = solver.solve_with_budget(&big, Budget::step_limit(30_000));
        assert!(
            !result.is_sat(),
            "PHP(9,8) is unsatisfiable, got {result:?}"
        );
        assert!(CdclSolver::chaff().solve(&pigeonhole(5)).is_unsat());
    }
}
