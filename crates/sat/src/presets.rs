//! Named solver presets matching the SAT-procedure comparison of the paper.

use crate::cdcl::CdclSolver;
use crate::dpll::DpllSolver;
use crate::local_search::{DlmSolver, WalkSatSolver};
use crate::solver::Solver;

/// The SAT-procedure families compared in Table 1 (and used throughout the
/// experiments), reduced to the algorithmic classes this crate implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SolverKind {
    /// CDCL with VSIDS and restarts (Chaff).
    Chaff,
    /// CDCL driven by recent conflict clauses (BerkMin).
    BerkMin,
    /// CDCL with static order and no restarts (GRASP).
    Grasp,
    /// CDCL with length-bounded learning (SATO).
    Sato,
    /// Plain DPLL without learning (satz / posit / ntab class).
    Dpll,
    /// WalkSAT stochastic local search.
    WalkSat,
    /// DLM-style clause-weighting local search (DLM-2/DLM-3 class).
    Dlm,
}

impl SolverKind {
    /// All implemented solver kinds, in the order used by the Table 1 harness.
    pub fn all() -> &'static [SolverKind] {
        &[
            SolverKind::Chaff,
            SolverKind::BerkMin,
            SolverKind::Grasp,
            SolverKind::Sato,
            SolverKind::Dpll,
            SolverKind::WalkSat,
            SolverKind::Dlm,
        ]
    }

    /// The display name used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Chaff => "Chaff (CDCL, VSIDS + restarts)",
            SolverKind::BerkMin => "BerkMin (CDCL, clause-driven decisions)",
            SolverKind::Grasp => "GRASP (CDCL, static order, no restarts)",
            SolverKind::Sato => "SATO (CDCL, bounded learning)",
            SolverKind::Dpll => "DPLL (no learning: satz/posit class)",
            SolverKind::WalkSat => "WalkSAT (local search)",
            SolverKind::Dlm => "DLM (weighted local search)",
        }
    }

    /// Instantiates the solver.  The box is `Send` so a preset can run on a
    /// portfolio worker thread.
    pub fn build(self) -> Box<dyn Solver + Send> {
        match self {
            SolverKind::Chaff => Box::new(CdclSolver::chaff()),
            SolverKind::BerkMin => Box::new(CdclSolver::berkmin()),
            SolverKind::Grasp => Box::new(CdclSolver::grasp()),
            SolverKind::Sato => Box::new(CdclSolver::sato()),
            SolverKind::Dpll => Box::new(DpllSolver::new()),
            SolverKind::WalkSat => Box::new(WalkSatSolver::new()),
            SolverKind::Dlm => Box::new(DlmSolver::new()),
        }
    }
}

/// The Chaff parameter variations of Table 2: the base configuration plus the
/// three variations suggested by Moskewicz (restart period 3000, restart
/// period 4000, higher restart randomness).
pub fn chaff_parameter_variations() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(CdclSolver::chaff()),
        Box::new(CdclSolver::chaff_with(|cfg| {
            cfg.name = "chaff-restart3000".to_owned();
            cfg.restart_interval = Some(3000);
        })),
        Box::new(CdclSolver::chaff_with(|cfg| {
            cfg.name = "chaff-restart4000".to_owned();
            cfg.restart_interval = Some(4000);
        })),
        Box::new(CdclSolver::chaff_with(|cfg| {
            cfg.name = "chaff-random10".to_owned();
            cfg.random_decision_freq = 0.10;
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{CnfFormula, Lit, Var};

    #[test]
    fn all_presets_solve_a_tiny_instance() {
        let mut cnf = CnfFormula::new(2);
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![!a, b]);
        for kind in SolverKind::all() {
            let mut solver = kind.build();
            let result = solver.solve(&cnf);
            assert!(result.is_sat(), "{}", kind.label());
        }
    }

    #[test]
    fn parameter_variations_have_distinct_names() {
        let variations = chaff_parameter_variations();
        assert_eq!(variations.len(), 4);
        let names: Vec<&str> = variations.iter().map(|s| s.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn completeness_flags() {
        assert!(SolverKind::Chaff.build().is_complete());
        assert!(SolverKind::Dpll.build().is_complete());
        assert!(!SolverKind::WalkSat.build().is_complete());
        assert!(!SolverKind::Dlm.build().is_complete());
    }
}
