//! Variables, literals, clauses and CNF formulas.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given zero-based index.
    pub fn new(index: u32) -> Self {
        Var(index)
    }

    /// Zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The variable of the literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal of its variable.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense index.
    pub fn from_index(index: usize) -> Self {
        Lit(index as u32)
    }

    /// DIMACS integer encoding (1-based, negative for negated literals).
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS integer (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal must be non-zero");
        let var = Var::new((value.unsigned_abs() - 1) as u32);
        Lit::new(var, value > 0)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables of the formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses of the formula.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Grows the variable count to at least `n`.
    pub fn ensure_vars(&mut self, n: usize) {
        if n > self.num_vars {
            self.num_vars = n;
        }
    }

    /// Adds a clause.  The clause is normalised: duplicate literals are removed
    /// and tautological clauses (containing `x` and `¬x`) are dropped.
    /// Variables mentioned by the clause extend the variable count if needed.
    pub fn add_clause(&mut self, mut clause: Clause) {
        clause.sort_unstable();
        clause.dedup();
        for pair in clause.windows(2) {
            if pair[0].var() == pair[1].var() {
                // `x` and `¬x` in the same clause: tautology.
                return;
            }
        }
        if let Some(max) = clause.iter().map(|l| l.var().index() + 1).max() {
            self.ensure_vars(max);
        }
        self.clauses.push(clause);
    }

    /// Whether `assignment` (indexed by variable) satisfies every clause.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] == lit.is_positive())
        })
    }

    /// Number of clauses left unsatisfied by `assignment`.
    pub fn unsatisfied_count(&self, assignment: &[bool]) -> usize {
        self.clauses
            .iter()
            .filter(|clause| {
                !clause
                    .iter()
                    .any(|lit| assignment[lit.var().index()] == lit.is_positive())
            })
            .count()
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }
}

impl FromIterator<Clause> for CnfFormula {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = CnfFormula::new(0);
        for clause in iter {
            cnf.add_clause(clause);
        }
        cnf
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrips() {
        let v = Var::new(5);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_index(p.index()), p);
        assert_eq!(Lit::from_dimacs(p.to_dimacs()), p);
        assert_eq!(Lit::from_dimacs(n.to_dimacs()), n);
        assert_eq!(p.to_dimacs(), 6);
        assert_eq!(n.to_dimacs(), -6);
    }

    #[test]
    fn add_clause_normalises() {
        let mut cnf = CnfFormula::new(0);
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        cnf.add_clause(vec![a, b, a]);
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
        assert_eq!(cnf.num_vars(), 2);
        // Tautological clause is dropped.
        cnf.add_clause(vec![a, !a]);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn satisfaction_check() {
        let mut cnf = CnfFormula::new(2);
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![!a, b]);
        assert!(cnf.is_satisfied_by(&[false, true]));
        assert!(cnf.is_satisfied_by(&[true, true]));
        assert!(!cnf.is_satisfied_by(&[true, false]));
        assert_eq!(cnf.unsatisfied_count(&[true, false]), 1);
        assert_eq!(cnf.num_literals(), 4);
    }

    #[test]
    fn collect_from_iterator() {
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        let cnf: CnfFormula = vec![vec![a], vec![b, !a]].into_iter().collect();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn display_forms() {
        let v = Var::new(0);
        assert_eq!(format!("{}", Lit::positive(v)), "x1");
        assert_eq!(format!("{}", Lit::negative(v)), "!x1");
    }
}
