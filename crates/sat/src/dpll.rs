//! A plain Davis–Putnam–Logemann–Loveland solver without clause learning.
//!
//! This is the algorithmic class of satz, posit and ntab in the paper's
//! comparison: complete, chronological backtracking, unit propagation and pure
//! literal elimination, but no learning and no non-chronological backjumping.
//! On the correctness formulas of the benchmark processors it times out almost
//! everywhere, which is exactly the behaviour Table 1 documents.

use crate::cnf::{CnfFormula, Lit};
use crate::solver::{Budget, Model, SatResult, Solver, SolverStats, StopReason};

/// The DPLL solver.
#[derive(Debug, Default)]
pub struct DpllSolver {
    stats: SolverStats,
}

impl DpllSolver {
    /// Creates a DPLL solver.
    pub fn new() -> Self {
        DpllSolver::default()
    }
}

impl Solver for DpllSolver {
    fn name(&self) -> &str {
        "dpll"
    }

    fn is_complete(&self) -> bool {
        true
    }

    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        self.stats = SolverStats::default();
        let mut state = DpllState {
            cnf,
            assigns: vec![None; cnf.num_vars()],
            stats: &mut self.stats,
            budget: budget.started(),
            stopped: None,
        };
        match state.search() {
            Some(true) => {
                let values = state.assigns.iter().map(|v| v.unwrap_or(false)).collect();
                SatResult::Sat(Model::new(values))
            }
            Some(false) => SatResult::Unsat,
            None => SatResult::Unknown(state.stopped.unwrap_or(StopReason::DecisionLimit)),
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

struct DpllState<'a> {
    cnf: &'a CnfFormula,
    assigns: Vec<Option<bool>>,
    stats: &'a mut SolverStats,
    budget: Budget,
    stopped: Option<StopReason>,
}

enum PropResult {
    Conflict,
    Fixpoint(Vec<usize>),
}

impl DpllState<'_> {
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var().index()].map(|v| v == lit.is_positive())
    }

    /// Unit propagation until fixpoint; returns the assigned variables so they
    /// can be undone, or a conflict.
    fn propagate(&mut self) -> PropResult {
        let mut assigned = Vec::new();
        loop {
            let mut changed = false;
            for clause in self.cnf.clauses() {
                let mut unassigned: Option<Lit> = None;
                let mut unassigned_count = 0;
                let mut satisfied = false;
                for &lit in clause {
                    match self.lit_value(lit) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        for v in assigned {
                            self.assigns[v] = None;
                        }
                        return PropResult::Conflict;
                    }
                    1 => {
                        let lit = unassigned.expect("exactly one unassigned literal");
                        self.assigns[lit.var().index()] = Some(lit.is_positive());
                        assigned.push(lit.var().index());
                        self.stats.propagations += 1;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return PropResult::Fixpoint(assigned);
            }
        }
    }

    fn out_of_budget(&mut self) -> bool {
        if let Some(max) = self.budget.max_decisions {
            if self.stats.decisions >= max {
                self.stopped = Some(StopReason::DecisionLimit);
                return true;
            }
        }
        // Cancel flag and deadline are polled every 64 decisions so neither
        // the atomic load nor `Instant::now` sits on the per-decision path.
        if self.stats.decisions.is_multiple_of(64) {
            if let Some(reason) = self.budget.exceeded() {
                self.stopped = Some(reason);
                return true;
            }
        }
        false
    }

    /// Returns `Some(true)` for SAT, `Some(false)` for UNSAT, `None` when the
    /// budget ran out.
    fn search(&mut self) -> Option<bool> {
        let assigned = match self.propagate() {
            PropResult::Conflict => return Some(false),
            PropResult::Fixpoint(a) => a,
        };
        // Pick the first unassigned variable (positive phase first).
        let branch_var = (0..self.cnf.num_vars()).find(|&v| self.assigns[v].is_none());
        let result = match branch_var {
            None => Some(true),
            Some(var) => {
                if self.out_of_budget() {
                    None
                } else {
                    let mut outcome = None;
                    for phase in [true, false] {
                        self.stats.decisions += 1;
                        self.assigns[var] = Some(phase);
                        match self.search() {
                            Some(true) => {
                                outcome = Some(Some(true));
                                break;
                            }
                            Some(false) => {
                                self.assigns[var] = None;
                            }
                            None => {
                                self.assigns[var] = None;
                                outcome = Some(None);
                                break;
                            }
                        }
                    }
                    match outcome {
                        Some(r) => r,
                        None => Some(false),
                    }
                }
            }
        };
        if result != Some(true) {
            for v in assigned {
                self.assigns[v] = None;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;
    use crate::solver::verify_model;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    #[test]
    fn simple_sat() {
        let cnf = cnf_of(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let mut solver = DpllSolver::new();
        match solver.solve(&cnf) {
            SatResult::Sat(model) => assert!(verify_model(&cnf, &model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn simple_unsat() {
        let cnf = cnf_of(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let mut solver = DpllSolver::new();
        assert!(solver.solve(&cnf).is_unsat());
    }

    #[test]
    fn unit_propagation_chain() {
        let cnf = cnf_of(&[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        let mut solver = DpllSolver::new();
        match solver.solve(&cnf) {
            SatResult::Sat(model) => {
                for i in 0..4 {
                    assert!(model.value(Var::new(i)));
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn respects_decision_budget() {
        // A formula with a deep search tree for naive branching.
        let mut cnf = CnfFormula::new(0);
        let n = 12;
        for i in 0..n {
            for j in (i + 1)..n {
                cnf.add_clause(vec![
                    Lit::negative(Var::new(i as u32)),
                    Lit::negative(Var::new(j as u32)),
                ]);
            }
        }
        cnf.add_clause((0..n).map(|i| Lit::positive(Var::new(i as u32))).collect());
        let mut solver = DpllSolver::new();
        let result = solver.solve_with_budget(
            &cnf,
            Budget {
                max_decisions: Some(2),
                ..Budget::default()
            },
        );
        // Either it solves it quickly or it stops at the budget — it must not loop forever.
        match result {
            SatResult::Sat(model) => assert!(verify_model(&cnf, &model)),
            SatResult::Unsat => panic!("the at-most-one + at-least-one formula is satisfiable"),
            SatResult::Unknown(_) => {}
        }
    }

    #[test]
    fn agrees_with_cdcl_on_small_instances() {
        use crate::cdcl::CdclSolver;
        let instances = [
            cnf_of(&[&[1, 2, 3], &[-1, -2], &[-1, -3], &[-2, -3], &[1]]),
            cnf_of(&[&[1, -2], &[2, -3], &[3, -1], &[1, 2, 3], &[-1, -2, -3]]),
            cnf_of(&[&[1], &[-1]]),
        ];
        for cnf in &instances {
            let d = DpllSolver::new().solve(cnf);
            let c = CdclSolver::chaff().solve(cnf);
            assert_eq!(d.is_sat(), c.is_sat());
            assert_eq!(d.is_unsat(), c.is_unsat());
        }
    }
}
