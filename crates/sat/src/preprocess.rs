//! CNF preprocessing ("algebraic simplification before SAT checking").
//!
//! Section 4 of the paper reports that preprocessing the generated CNF
//! formulas (the `simplify` script, Brafman's 2-SIS simplifier, MINCE
//! variable reordering) did not pay off for these benchmarks.  This module
//! provides the equivalent operations so the experiment can be repeated:
//! unit propagation, pure-literal elimination, duplicate-clause removal and
//! (optionally) subsumption.

use crate::cnf::{CnfFormula, Lit};

/// Statistics of one preprocessing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Unit clauses propagated away.
    pub units_propagated: usize,
    /// Variables fixed by pure-literal elimination.
    pub pure_literals: usize,
    /// Clauses removed because they were satisfied, duplicated or subsumed.
    pub clauses_removed: usize,
    /// `true` if preprocessing already proved the formula unsatisfiable.
    pub proved_unsat: bool,
}

/// Result of preprocessing: the simplified formula (over the *same* variable
/// numbering) plus the forced partial assignment.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// The simplified formula.
    pub cnf: CnfFormula,
    /// Literals fixed by the preprocessor.
    pub forced: Vec<Lit>,
    /// Statistics.
    pub stats: PreprocessStats,
}

/// Runs unit propagation, pure-literal elimination and duplicate removal to
/// fixpoint, optionally followed by pairwise subsumption.
pub fn preprocess(cnf: &CnfFormula, with_subsumption: bool) -> Preprocessed {
    let num_vars = cnf.num_vars();
    let mut clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    let mut assigns: Vec<Option<bool>> = vec![None; num_vars];
    let mut stats = PreprocessStats::default();

    loop {
        let mut changed = false;

        // Apply the current assignment to every clause.
        let mut next: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
        for clause in &clauses {
            let mut satisfied = false;
            let mut reduced = Vec::with_capacity(clause.len());
            for &lit in clause {
                match assigns[lit.var().index()] {
                    Some(v) if v == lit.is_positive() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => reduced.push(lit),
                }
            }
            if satisfied {
                stats.clauses_removed += 1;
                continue;
            }
            if reduced.is_empty() {
                stats.proved_unsat = true;
                return Preprocessed {
                    cnf: CnfFormula::new(num_vars),
                    forced: collect_forced(&assigns),
                    stats,
                };
            }
            next.push(reduced);
        }
        clauses = next;

        // Unit propagation.
        for clause in &clauses {
            if clause.len() == 1 {
                let lit = clause[0];
                match assigns[lit.var().index()] {
                    None => {
                        assigns[lit.var().index()] = Some(lit.is_positive());
                        stats.units_propagated += 1;
                        changed = true;
                    }
                    Some(v) if v != lit.is_positive() => {
                        stats.proved_unsat = true;
                        return Preprocessed {
                            cnf: CnfFormula::new(num_vars),
                            forced: collect_forced(&assigns),
                            stats,
                        };
                    }
                    Some(_) => {}
                }
            }
        }

        // Pure literal elimination.
        let mut seen_pos = vec![false; num_vars];
        let mut seen_neg = vec![false; num_vars];
        for clause in &clauses {
            for &lit in clause {
                if lit.is_positive() {
                    seen_pos[lit.var().index()] = true;
                } else {
                    seen_neg[lit.var().index()] = true;
                }
            }
        }
        for v in 0..num_vars {
            if assigns[v].is_some() {
                continue;
            }
            if seen_pos[v] != seen_neg[v] && (seen_pos[v] || seen_neg[v]) {
                assigns[v] = Some(seen_pos[v]);
                stats.pure_literals += 1;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Duplicate removal: sort each clause in place (satisfiability is
    // order-independent), then sort and deduplicate the clause list — no
    // per-clause scratch copies or hash sets.
    for clause in &mut clauses {
        clause.sort_unstable();
    }
    clauses.sort_unstable();
    let before = clauses.len();
    clauses.dedup();
    stats.clauses_removed += before - clauses.len();

    // Subsumption (quadratic; only for modest formulas or when requested).
    // Clauses are sorted, so the subset test is a linear two-pointer merge.
    if with_subsumption {
        let mut keep = vec![true; clauses.len()];
        for i in 0..clauses.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..clauses.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if clauses[i].len() <= clauses[j].len()
                    && is_sorted_subset(&clauses[i], &clauses[j])
                {
                    keep[j] = false;
                    stats.clauses_removed += 1;
                }
            }
        }
        clauses = clauses
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect();
    }

    let mut simplified = CnfFormula::new(num_vars);
    for clause in clauses {
        simplified.add_clause(clause);
    }
    Preprocessed {
        cnf: simplified,
        forced: collect_forced(&assigns),
        stats,
    }
}

/// Whether sorted slice `a` is a subset of sorted slice `b`.
fn is_sorted_subset(a: &[Lit], b: &[Lit]) -> bool {
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

fn collect_forced(assigns: &[Option<bool>]) -> Vec<Lit> {
    assigns
        .iter()
        .enumerate()
        .filter_map(|(v, a)| a.map(|value| Lit::new(crate::cnf::Var::new(v as u32), value)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    #[test]
    fn unit_propagation_fixes_variables() {
        let cnf = cnf_of(&[&[1], &[-1, 2], &[-2, 3]]);
        let result = preprocess(&cnf, false);
        assert!(result.stats.units_propagated >= 1);
        assert!(result.forced.contains(&Lit::positive(Var::new(0))));
        assert!(!result.stats.proved_unsat);
        assert_eq!(result.cnf.num_clauses(), 0);
    }

    #[test]
    fn detects_unsat_by_propagation() {
        let cnf = cnf_of(&[&[1], &[-1, 2], &[-2], &[3, 4]]);
        let result = preprocess(&cnf, false);
        assert!(result.stats.proved_unsat);
    }

    #[test]
    fn pure_literal_elimination() {
        // Variable 3 only appears positively.
        let cnf = cnf_of(&[&[1, 3], &[-1, 3], &[1, -2]]);
        let result = preprocess(&cnf, false);
        assert!(result.stats.pure_literals >= 1);
        assert!(result.forced.contains(&Lit::positive(Var::new(2))));
    }

    #[test]
    fn subsumption_removes_superset_clauses() {
        let cnf = cnf_of(&[&[5, 6], &[5, 6, 7], &[6, 7, 8]]);
        let result = preprocess(&cnf, true);
        // {5,6} subsumes {5,6,7}; pure literals may remove more, so just check
        // the count dropped and nothing became unsatisfiable.
        assert!(result.cnf.num_clauses() < 3);
        assert!(!result.stats.proved_unsat);
    }

    #[test]
    fn preprocessing_preserves_satisfiability() {
        use crate::cdcl::CdclSolver;
        use crate::solver::Solver;
        let instances = [
            cnf_of(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[2]]),
            cnf_of(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]),
            cnf_of(&[&[1, -3], &[2, 3, -1], &[3]]),
        ];
        for cnf in &instances {
            let original = CdclSolver::chaff().solve(cnf).is_sat();
            let pre = preprocess(cnf, true);
            let simplified = if pre.stats.proved_unsat {
                false
            } else {
                CdclSolver::chaff().solve(&pre.cnf).is_sat()
            };
            assert_eq!(original, simplified);
        }
    }
}
