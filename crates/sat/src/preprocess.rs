//! CNF preprocessing ("algebraic simplification before SAT checking").
//!
//! Section 4 of the paper reports that preprocessing the generated CNF
//! formulas (the `simplify` script, Brafman's 2-SIS simplifier, MINCE
//! variable reordering) did not pay off for these benchmarks.  This module
//! provides the equivalent operations so the experiment can be repeated:
//! unit propagation, pure-literal elimination, duplicate-clause removal,
//! (optionally) subsumption and self-subsuming resolution.
//!
//! # Certification
//!
//! Preprocessing rewrites the clause database, so a DRAT proof produced by a
//! solver run on the *simplified* formula does not check against the
//! *original* one unless the rewrite itself is part of the proof.
//! [`preprocess_with_proof`] records every rewrite through the same
//! [`ProofWriter`] the solver uses: a strengthened clause is logged as an
//! addition (it is RUP — a resolvent, or the remainder after removing
//! root-false literals) followed by the deletion of its old version, and
//! satisfied, duplicate or subsumed clauses are logged as deletions.
//! Pure-literal elimination is *refused* in proof-logging mode: the unit
//! clauses it introduces are only satisfiability-preserving (blocked
//! clauses), not logical consequences, so they are not RUP-derivable and
//! would poison the proof.

use crate::cnf::{CnfFormula, Lit};
use crate::proof::ProofWriter;

/// Statistics of one preprocessing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Unit clauses propagated away.
    pub units_propagated: usize,
    /// Variables fixed by pure-literal elimination.
    pub pure_literals: usize,
    /// Clauses removed because they were satisfied, duplicated or subsumed.
    pub clauses_removed: usize,
    /// Clauses strengthened by self-subsuming resolution.
    pub clauses_strengthened: usize,
    /// `true` if preprocessing already proved the formula unsatisfiable.
    pub proved_unsat: bool,
}

/// Result of preprocessing: the simplified formula (over the *same* variable
/// numbering) plus the forced partial assignment.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// The simplified formula.
    pub cnf: CnfFormula,
    /// Literals fixed by the preprocessor.
    pub forced: Vec<Lit>,
    /// Statistics.
    pub stats: PreprocessStats,
}

/// Runs unit propagation, pure-literal elimination and duplicate removal to
/// fixpoint, optionally followed by pairwise subsumption and one round of
/// self-subsuming resolution.
pub fn preprocess(cnf: &CnfFormula, with_subsumption: bool) -> Preprocessed {
    preprocess_impl(cnf, with_subsumption, None)
}

/// [`preprocess`] with DRAT logging: every clause removal and strengthening
/// is recorded through `proof`, so a refutation of the simplified formula
/// (appended to the same log) still checks against the original CNF.
/// Pure-literal elimination is skipped — its units are not RUP-derivable —
/// which is the "refuse the unsound part" half of the proof-logging contract;
/// everything this variant *does* run is certified.
pub fn preprocess_with_proof(
    cnf: &CnfFormula,
    with_subsumption: bool,
    proof: &mut dyn ProofWriter,
) -> Preprocessed {
    preprocess_impl(cnf, with_subsumption, Some(proof))
}

fn preprocess_impl(
    cnf: &CnfFormula,
    with_subsumption: bool,
    mut proof: Option<&mut dyn ProofWriter>,
) -> Preprocessed {
    let _span = velv_obs::span_fields(
        "preprocess",
        &[
            ("vars", cnf.num_vars().into()),
            ("clauses", cnf.num_clauses().into()),
            ("subsumption", with_subsumption.into()),
            ("certified", proof.is_some().into()),
        ],
    );
    let num_vars = cnf.num_vars();
    let mut clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    let mut assigns: Vec<Option<bool>> = vec![None; num_vars];
    let mut stats = PreprocessStats::default();

    macro_rules! log_add {
        ($lits:expr) => {
            if let Some(p) = proof.as_deref_mut() {
                p.add_clause($lits);
            }
        };
    }
    macro_rules! log_delete {
        ($lits:expr) => {
            if let Some(p) = proof.as_deref_mut() {
                p.delete_clause($lits);
            }
        };
    }

    loop {
        let mut changed = false;

        // Apply the current assignment to every clause.
        let mut next: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
        for clause in &clauses {
            let mut satisfied = false;
            let mut reduced = Vec::with_capacity(clause.len());
            for &lit in clause {
                match assigns[lit.var().index()] {
                    Some(v) if v == lit.is_positive() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => reduced.push(lit),
                }
            }
            if satisfied {
                stats.clauses_removed += 1;
                log_delete!(clause);
                continue;
            }
            if reduced.is_empty() {
                stats.proved_unsat = true;
                log_add!(&[]);
                return Preprocessed {
                    cnf: CnfFormula::new(num_vars),
                    forced: collect_forced(&assigns),
                    stats,
                };
            }
            if reduced.len() < clause.len() {
                // The shrunken clause is RUP from its old version plus the
                // unit assignments that falsified the removed literals.
                log_add!(&reduced);
                log_delete!(clause);
            }
            next.push(reduced);
        }
        clauses = next;

        // Unit propagation.
        for clause in &clauses {
            if clause.len() == 1 {
                let lit = clause[0];
                match assigns[lit.var().index()] {
                    None => {
                        assigns[lit.var().index()] = Some(lit.is_positive());
                        stats.units_propagated += 1;
                        changed = true;
                    }
                    Some(v) if v != lit.is_positive() => {
                        stats.proved_unsat = true;
                        log_add!(&[]);
                        return Preprocessed {
                            cnf: CnfFormula::new(num_vars),
                            forced: collect_forced(&assigns),
                            stats,
                        };
                    }
                    Some(_) => {}
                }
            }
        }

        // Pure literal elimination — only without proof logging: the units it
        // adds are blocked clauses (RAT, not RUP) and cannot be certified by
        // the forward RUP checker.
        if proof.is_none() {
            let mut seen_pos = vec![false; num_vars];
            let mut seen_neg = vec![false; num_vars];
            for clause in &clauses {
                for &lit in clause {
                    if lit.is_positive() {
                        seen_pos[lit.var().index()] = true;
                    } else {
                        seen_neg[lit.var().index()] = true;
                    }
                }
            }
            for v in 0..num_vars {
                if assigns[v].is_some() {
                    continue;
                }
                if seen_pos[v] != seen_neg[v] && (seen_pos[v] || seen_neg[v]) {
                    assigns[v] = Some(seen_pos[v]);
                    stats.pure_literals += 1;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Duplicate removal: sort each clause in place (satisfiability is
    // order-independent), then sort the clause list and drop exact repeats.
    for clause in &mut clauses {
        clause.sort_unstable();
    }
    clauses.sort_unstable();
    let mut deduped: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
    for clause in clauses {
        if deduped.last() == Some(&clause) {
            stats.clauses_removed += 1;
            log_delete!(&clause);
        } else {
            deduped.push(clause);
        }
    }
    let mut clauses = deduped;

    // Subsumption (quadratic; only for modest formulas or when requested).
    // Clauses are sorted, so the subset test is a linear two-pointer merge.
    if with_subsumption {
        let mut keep = vec![true; clauses.len()];
        for i in 0..clauses.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..clauses.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if clauses[i].len() <= clauses[j].len()
                    && is_sorted_subset(&clauses[i], &clauses[j])
                {
                    keep[j] = false;
                    stats.clauses_removed += 1;
                    log_delete!(&clauses[j]);
                }
            }
        }
        let mut kept: Vec<Vec<Lit>> = clauses
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect();

        // Self-subsuming resolution, one round: when C₁ resolved with C₂ on
        // a literal l (with l ∈ C₁, ¬l ∈ C₂ and C₁ \ {l} ⊆ C₂) yields a
        // strict strengthening of C₂, replace C₂ by the resolvent.  The
        // resolvent is RUP, so the rewrite is certifiable.
        for i in 0..kept.len() {
            for j in 0..kept.len() {
                if i == j || kept[i].len() > kept[j].len() {
                    continue;
                }
                if let Some(pivot) = self_subsumption_pivot(&kept[i], &kept[j]) {
                    let strengthened: Vec<Lit> =
                        kept[j].iter().copied().filter(|&l| l != !pivot).collect();
                    log_add!(&strengthened);
                    log_delete!(&kept[j]);
                    kept[j] = strengthened;
                    stats.clauses_strengthened += 1;
                }
            }
        }
        clauses = kept;
    }

    let mut simplified = CnfFormula::new(num_vars);
    for clause in clauses {
        simplified.add_clause(clause);
    }
    Preprocessed {
        cnf: simplified,
        forced: collect_forced(&assigns),
        stats,
    }
}

/// Whether sorted slice `a` is a subset of sorted slice `b`.
fn is_sorted_subset(a: &[Lit], b: &[Lit]) -> bool {
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Finds the pivot of a self-subsuming resolution of `a` against `b`: the
/// unique literal `l ∈ a` with `¬l ∈ b` such that every other literal of `a`
/// occurs in `b`.  Both slices are sorted.
fn self_subsumption_pivot(a: &[Lit], b: &[Lit]) -> Option<Lit> {
    let mut pivot = None;
    // A tautological `a` would make the "resolvent" unsound (it is b itself);
    // `CnfFormula::add_clause` drops tautologies, but guard against other
    // clause sources anyway.
    if a.windows(2).any(|w| w[0].var() == w[1].var()) {
        return None;
    }
    for &l in a {
        if b.binary_search(&l).is_ok() {
            continue;
        }
        if b.binary_search(&!l).is_ok() {
            if pivot.is_some() {
                return None; // two pivots: the resolvent is a tautology-free
                             // strengthening only with exactly one
            }
            pivot = Some(l);
        } else {
            return None; // a literal of `a` missing from `b` entirely
        }
    }
    pivot
}

fn collect_forced(assigns: &[Option<bool>]) -> Vec<Lit> {
    assigns
        .iter()
        .enumerate()
        .filter_map(|(v, a)| a.map(|value| Lit::new(crate::cnf::Var::new(v as u32), value)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;
    use crate::proof::SharedProof;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    #[test]
    fn unit_propagation_fixes_variables() {
        let cnf = cnf_of(&[&[1], &[-1, 2], &[-2, 3]]);
        let result = preprocess(&cnf, false);
        assert!(result.stats.units_propagated >= 1);
        assert!(result.forced.contains(&Lit::positive(Var::new(0))));
        assert!(!result.stats.proved_unsat);
        assert_eq!(result.cnf.num_clauses(), 0);
    }

    #[test]
    fn detects_unsat_by_propagation() {
        let cnf = cnf_of(&[&[1], &[-1, 2], &[-2], &[3, 4]]);
        let result = preprocess(&cnf, false);
        assert!(result.stats.proved_unsat);
    }

    #[test]
    fn pure_literal_elimination() {
        // Variable 3 only appears positively.
        let cnf = cnf_of(&[&[1, 3], &[-1, 3], &[1, -2]]);
        let result = preprocess(&cnf, false);
        assert!(result.stats.pure_literals >= 1);
        assert!(result.forced.contains(&Lit::positive(Var::new(2))));
    }

    #[test]
    fn subsumption_removes_superset_clauses() {
        let cnf = cnf_of(&[&[5, 6], &[5, 6, 7], &[6, 7, 8]]);
        let result = preprocess(&cnf, true);
        // {5,6} subsumes {5,6,7}; pure literals may remove more, so just check
        // the count dropped and nothing became unsatisfiable.
        assert!(result.cnf.num_clauses() < 3);
        assert!(!result.stats.proved_unsat);
    }

    #[test]
    fn self_subsumption_strengthens_clauses() {
        // (1 ∨ 2) and (¬1 ∨ 2 ∨ 3) resolve on 1 to (2 ∨ 3) ⊂ (¬1 ∨ 2 ∨ 3):
        // the second clause loses its ¬1.  (The extra clause keeps every
        // variable impure so pure-literal elimination stays out of the way.)
        let cnf = cnf_of(&[&[1, 2], &[-1, 2, 3], &[-2, -3]]);
        let result = preprocess(&cnf, true);
        assert!(result.stats.clauses_strengthened >= 1);
        assert!(
            result.cnf.clauses().iter().all(|c| !c.contains(&lit(-1))),
            "¬1 resolved away: {:?}",
            result.cnf.clauses()
        );
    }

    #[test]
    fn proof_mode_skips_pure_literals() {
        let cnf = cnf_of(&[&[1, 3], &[-1, 3], &[1, -2]]);
        let mut writer = SharedProof::new();
        let result = preprocess_with_proof(&cnf, false, &mut writer);
        assert_eq!(
            result.stats.pure_literals, 0,
            "pure-literal units are not RUP and must not be used"
        );
    }

    #[test]
    fn preprocessing_preserves_satisfiability() {
        use crate::cdcl::CdclSolver;
        use crate::solver::Solver;
        let instances = [
            cnf_of(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[2]]),
            cnf_of(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]),
            cnf_of(&[&[1, -3], &[2, 3, -1], &[3]]),
        ];
        for cnf in &instances {
            let original = CdclSolver::chaff().solve(cnf).is_sat();
            let pre = preprocess(cnf, true);
            let simplified = if pre.stats.proved_unsat {
                false
            } else {
                CdclSolver::chaff().solve(&pre.cnf).is_sat()
            };
            assert_eq!(original, simplified);
        }
    }

    /// The certification-unsoundness regression: a proof that starts with the
    /// logged preprocessing rewrites and continues with the solver's
    /// refutation of the *simplified* formula must check against the
    /// *original* formula.
    #[test]
    fn preprocessed_unsat_refutations_check_against_the_original_cnf() {
        use crate::cdcl::CdclSolver;
        use crate::generators::pigeonhole;
        use crate::solver::Budget;
        // Pigeonhole with redundant decoration: forced units, a duplicate,
        // a subsumed clause and a self-subsumption opportunity.
        let php = pigeonhole(4);
        let n = php.num_vars() as i64;
        let mut cnf = php.clone();
        let forced_unit = n + 1;
        let chained = n + 2;
        let decorated: Vec<Vec<i64>> = vec![
            vec![forced_unit],           // forced unit
            vec![-forced_unit, chained], // chained unit
            vec![chained, 1, 2],         // satisfied after propagation
            vec![1, 2, 3],
            vec![1, 2, 3],    // duplicate
            vec![1, 2, 3, 4], // subsumed by [1, 2, 3]
            vec![-1, 2, 3],   // self-subsumed against [1, 2, 3]
        ];
        for c in &decorated {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        let shared = SharedProof::new();
        let mut writer = shared.clone();
        let pre = preprocess_with_proof(&cnf, true, &mut writer);
        assert!(!pre.stats.proved_unsat, "PHP needs real search");
        let result = CdclSolver::chaff().solve_with_proof_writer(
            &pre.cnf,
            &[],
            Budget::unlimited(),
            Box::new(shared.clone()),
        );
        assert!(result.is_unsat());
        let proof = shared.take();
        let original = crate::dimacs::cnf_to_dimacs_i32(&cnf);
        let report =
            velv_proof::check_proof(&original, &proof, &velv_proof::CheckOptions::default())
                .expect("the combined preprocessing + solving proof checks");
        assert!(
            report.derived_empty,
            "the refutation reaches the empty clause"
        );
    }
}
