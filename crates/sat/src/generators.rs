//! Deterministic CNF instance generators shared by tests and benchmarks.
//!
//! The perf harness (`satbench`) and the differential/unit suites must agree
//! on what e.g. "PHP(8,7)" means — clause order included, since the engine's
//! search is sensitive to it — so the generators live here, once.

use crate::cnf::{CnfFormula, Lit, Var};
use crate::rng::SmallRng;

/// Pigeonhole principle PHP(holes + 1, holes): `holes + 1` pigeons into
/// `holes` holes — unsatisfiable, dense, resolution-hard.
pub fn pigeonhole(holes: usize) -> CnfFormula {
    let pigeons = holes + 1;
    let mut cnf = CnfFormula::new(pigeons * holes);
    let var = |p: usize, h: usize| Lit::positive(Var::new((p * holes + h) as u32));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| var(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    cnf
}

/// Seeded uniform random 3-SAT: `num_clauses` clauses of three distinct
/// variables each.  At `num_clauses / num_vars ≈ 4.26` the instances sit at
/// the satisfiability phase transition.
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cnf = CnfFormula::new(num_vars);
    for _ in 0..num_clauses {
        let mut clause: Vec<Lit> = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars) as u32;
            let l = Lit::new(Var::new(v), rng.gen_bool(0.5));
            if !clause.contains(&l) && !clause.contains(&!l) {
                clause.push(l);
            }
        }
        cnf.add_clause(clause);
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pigeonhole_shape() {
        let cnf = pigeonhole(3);
        assert_eq!(cnf.num_vars(), 12);
        // 4 pigeon clauses + 3 * C(4,2) exclusivity clauses.
        assert_eq!(cnf.num_clauses(), 4 + 3 * 6);
    }

    #[test]
    fn random_3sat_is_deterministic() {
        let a = random_3sat(30, 120, 7);
        let b = random_3sat(30, 120, 7);
        assert_eq!(a, b);
        assert_eq!(a.num_clauses(), 120);
        assert!(a.clauses().iter().all(|c| c.len() == 3));
    }
}
