//! Generic first-decided-wins racing of closures on scoped threads.
//!
//! Both portfolio collectors in this workspace share one pattern: spawn every
//! member on its own scoped thread with an inherited [`Budget`] carrying a
//! shared [`CancelToken`], return the first *decided* result, raise the token
//! so the losers stop from their hot loops, and poll the caller's own budget
//! (deadline or an outer cancel token) while waiting.  [`race`] is that
//! pattern extracted once:
//!
//! * [`crate::portfolio::PortfolioSolver`] races [`crate::SatResult`]s of
//!   several engines on one CNF;
//! * `velv_core::backend::race_backends` races verification *verdicts*, where
//!   one member may be a BDD build that never goes through the
//!   [`crate::Solver`] trait at all.
//!
//! The helper is generic over the member's result type `T` precisely so the
//! BDD member does not have to be squeezed behind the `Solver` trait (which
//! would forfeit its counterexample); each member is just a closure from
//! `(index, Budget)` to `T`, plus a predicate telling the collector which
//! results decide the race.

use crate::solver::{Budget, CancelToken, StopReason};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

/// How long the collector waits on the result channel before re-checking the
/// caller's own budget (deadline or an outer cancel token).
const PARENT_POLL: Duration = Duration::from_millis(5);

/// How one member fared in a [`race`].
#[derive(Clone, Debug)]
pub struct RaceRun<T> {
    /// The value the member returned (losers typically report a cancelled
    /// result).
    pub value: T,
    /// Wall-clock time from the member's start to its return.
    pub time: Duration,
    /// Whether this member decided the race first.
    pub winner: bool,
}

/// Aggregated outcome of one [`race`].
#[derive(Clone, Debug)]
pub struct RaceOutcome<T> {
    /// Index of the member that decided first, if any did.
    pub winner: Option<usize>,
    /// Per-member outcomes, indexed like the member list (`None` only if a
    /// member thread vanished without reporting, which scoped threads make
    /// impossible short of a panic).
    pub runs: Vec<Option<RaceRun<T>>>,
    /// Why the caller's own budget stopped the race, if it did.
    pub parent_stop: Option<StopReason>,
    /// Wall-clock time of the whole race.
    pub wall_time: Duration,
}

impl<T> RaceOutcome<T> {
    /// The run of the winning member.
    pub fn winner_run(&self) -> Option<&RaceRun<T>> {
        self.winner.and_then(|i| self.runs[i].as_ref())
    }
}

/// Races `names.len()` members; the first whose result satisfies `decided`
/// wins and the shared cancel token is raised for the rest.
///
/// Each member runs on its own scoped thread (named after its entry in
/// `names`, with `stack_size` bytes of stack) and receives a budget that
/// inherits the caller's step limits and resolved deadline and carries the
/// race's cancel token — `run(index, budget)` must poll it from its hot loop.
/// The caller's own budget is honoured while collecting: if its deadline
/// passes or an outer cancel token is raised, the race token is raised and
/// the members' (cancelled) results are still collected, so the returned
/// outcome is always complete.
pub fn race<T, F, D>(
    names: &[String],
    budget: Budget,
    stack_size: usize,
    run: F,
    decided: D,
) -> RaceOutcome<T>
where
    T: Send,
    F: Fn(usize, Budget) -> T + Sync,
    D: Fn(&T) -> bool,
{
    race_with_token(names, budget, stack_size, CancelToken::new(), run, decided)
}

/// [`race`] with a caller-supplied race token.
///
/// The token is the one the members poll; handing it in lets a *supervisor
/// outside the race* — a portfolio's [`crate::portfolio::PortfolioHandle`], a
/// job scheduler tearing down a worker — abort every member directly, without
/// waiting for the collector's next parent-budget poll.  The collector still
/// raises the same token when a member decides or the caller's own budget
/// stops the race, so passing a fresh token is exactly [`race`].  A token
/// that is already raised on entry cancels the members immediately.
pub fn race_with_token<T, F, D>(
    names: &[String],
    budget: Budget,
    stack_size: usize,
    token: CancelToken,
    run: F,
    decided: D,
) -> RaceOutcome<T>
where
    T: Send,
    F: Fn(usize, Budget) -> T + Sync,
    D: Fn(&T) -> bool,
{
    let race_start = Instant::now();
    let parent = budget.started();
    // Members inherit the caller's step limits and resolved deadline but poll
    // the race's own token; the collector below forwards an outer
    // cancellation into that token.
    let member_budget = Budget {
        max_conflicts: parent.max_conflicts,
        max_decisions: parent.max_decisions,
        max_time: None,
        deadline: parent.deadline,
        cancel: Some(token.clone()),
    };

    let n = names.len();
    let mut runs: Vec<Option<RaceRun<T>>> = (0..n).map(|_| None).collect();
    let mut winner: Option<usize> = None;
    let mut parent_stop: Option<StopReason> = None;

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let run = &run;
        for (index, name) in names.iter().enumerate() {
            let tx = tx.clone();
            let member_budget = member_budget.clone();
            std::thread::Builder::new()
                .name(name.clone())
                .stack_size(stack_size)
                .spawn_scoped(scope, move || {
                    let start = Instant::now();
                    let value = run(index, member_budget);
                    // The receiver hangs up only after all members report or
                    // were cancelled; a send error just means the race is over.
                    let _ = tx.send((index, value, start.elapsed()));
                })
                .expect("spawning a race member thread succeeds");
        }
        drop(tx);

        let mut received = 0;
        while received < n {
            match rx.recv_timeout(PARENT_POLL) {
                Ok((index, value, time)) => {
                    received += 1;
                    if winner.is_none() && decided(&value) {
                        winner = Some(index);
                        token.cancel();
                    }
                    runs[index] = Some(RaceRun {
                        value,
                        time,
                        winner: false,
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    if parent_stop.is_none() {
                        if let Some(reason) = parent.exceeded() {
                            parent_stop = Some(reason);
                            token.cancel();
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    });

    if let Some(index) = winner {
        if let Some(run) = runs[index].as_mut() {
            run.winner = true;
        }
    }
    RaceOutcome {
        winner,
        runs,
        parent_stop,
        wall_time: race_start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::StopReason;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("race-test-{i}")).collect()
    }

    /// Spins until the budget says stop, then reports `None`.
    fn spin(budget: &Budget) -> Option<u32> {
        let budget = budget.clone().started();
        loop {
            for _ in 0..256 {
                std::hint::spin_loop();
            }
            if budget.exceeded().is_some() {
                return None;
            }
        }
    }

    #[test]
    fn first_decided_wins_and_losers_are_cancelled() {
        let outcome = race(
            &names(3),
            Budget::unlimited(),
            1 << 16,
            |index, budget| {
                if index == 1 {
                    Some(42u32)
                } else {
                    spin(&budget)
                }
            },
            |v| v.is_some(),
        );
        assert_eq!(outcome.winner, Some(1));
        assert_eq!(outcome.winner_run().unwrap().value, Some(42));
        assert!(outcome.runs.iter().all(|r| r.is_some()));
        assert_eq!(outcome.runs[0].as_ref().unwrap().value, None);
        assert!(outcome.parent_stop.is_none());
    }

    #[test]
    fn undecided_race_collects_everyone() {
        let outcome = race(
            &names(2),
            Budget::time_limit(Duration::from_millis(20)),
            1 << 16,
            |_, budget| spin(&budget),
            |v| v.is_some(),
        );
        assert_eq!(outcome.winner, None);
        assert!(outcome.winner_run().is_none());
        assert!(outcome.runs.iter().all(|r| r.is_some()));
    }

    #[test]
    fn outer_cancellation_is_forwarded() {
        let token = CancelToken::new();
        token.cancel();
        let outcome = race(
            &names(2),
            Budget::unlimited().with_cancel(token),
            1 << 16,
            |_, budget| spin(&budget),
            |v| v.is_some(),
        );
        assert_eq!(outcome.winner, None);
        assert_eq!(outcome.parent_stop, Some(StopReason::Cancelled));
        assert!(outcome.wall_time < Duration::from_secs(5));
    }

    #[test]
    fn empty_race_returns_immediately() {
        let outcome = race(
            &[],
            Budget::unlimited(),
            1 << 16,
            |_, _| unreachable!("no members"),
            |_: &()| true,
        );
        assert_eq!(outcome.winner, None);
        assert!(outcome.runs.is_empty());
    }
}
