//! Incomplete stochastic local-search solvers.
//!
//! These reproduce the class of GSAT/WalkSAT and of the discrete Lagrangian
//! multiplier solvers (DLM-2, DLM-3) from the paper's comparison: they can find
//! satisfying assignments of buggy-processor formulas but can never prove the
//! unsatisfiability of a correct-processor formula.

use crate::cnf::{CnfFormula, Lit};
use crate::rng::SmallRng;
use crate::solver::{Budget, Model, SatResult, Solver, SolverStats, StopReason};

/// WalkSAT with the standard noise heuristic.
#[derive(Debug)]
pub struct WalkSatSolver {
    /// Probability of a random walk move at each flip.
    pub noise: f64,
    /// Restart with a fresh random assignment after this many flips.
    pub flips_per_try: u64,
    /// RNG seed.
    pub seed: u64,
    stats: SolverStats,
}

impl Default for WalkSatSolver {
    fn default() -> Self {
        WalkSatSolver {
            noise: 0.5,
            flips_per_try: 200_000,
            seed: 0x5a17,
            stats: SolverStats::default(),
        }
    }
}

impl WalkSatSolver {
    /// Creates a WalkSAT solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// DLM-style clause-weighting local search (discrete Lagrangian multipliers).
///
/// Unsatisfied clauses accumulate weight whenever the search reaches a local
/// minimum, which reshapes the objective and pushes the search out of the
/// minimum — the mechanism of DLM-2/DLM-3 (Shang & Wah).
#[derive(Debug)]
pub struct DlmSolver {
    /// Flips between weight increases at local minima.
    pub weight_increment: u64,
    /// Restart with a fresh random assignment after this many flips.
    pub flips_per_try: u64,
    /// RNG seed.
    pub seed: u64,
    stats: SolverStats,
}

impl Default for DlmSolver {
    fn default() -> Self {
        DlmSolver {
            weight_increment: 1,
            flips_per_try: 400_000,
            seed: 0xd13,
            stats: SolverStats::default(),
        }
    }
}

impl DlmSolver {
    /// Creates a DLM-style solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Shared occurrence-list structure for local search.
struct OccurrenceLists {
    /// For each variable, the clauses it appears in.
    by_var: Vec<Vec<usize>>,
}

impl OccurrenceLists {
    fn build(cnf: &CnfFormula) -> Self {
        let mut by_var = vec![Vec::new(); cnf.num_vars()];
        for (ci, clause) in cnf.clauses().iter().enumerate() {
            for lit in clause {
                by_var[lit.var().index()].push(ci);
            }
        }
        OccurrenceLists { by_var }
    }
}

fn random_assignment(rng: &mut SmallRng, num_vars: usize) -> Vec<bool> {
    (0..num_vars).map(|_| rng.gen_bool(0.5)).collect()
}

fn clause_satisfied(clause: &[Lit], assignment: &[bool]) -> bool {
    clause
        .iter()
        .any(|l| assignment[l.var().index()] == l.is_positive())
}

fn unsatisfied_clauses(cnf: &CnfFormula, assignment: &[bool]) -> Vec<usize> {
    cnf.clauses()
        .iter()
        .enumerate()
        .filter(|(_, c)| !clause_satisfied(c, assignment))
        .map(|(i, _)| i)
        .collect()
}

/// Number of clauses that would become unsatisfied by flipping `var`
/// (the "break count" of WalkSAT).
fn break_count(
    cnf: &CnfFormula,
    occ: &OccurrenceLists,
    assignment: &[bool],
    var: usize,
    weights: Option<&[u64]>,
) -> u64 {
    let mut count = 0;
    for &ci in &occ.by_var[var] {
        let clause = &cnf.clauses()[ci];
        if !clause_satisfied(clause, assignment) {
            continue;
        }
        // The clause is satisfied: it breaks if `var` was its only satisfying literal.
        let satisfying: Vec<&Lit> = clause
            .iter()
            .filter(|l| assignment[l.var().index()] == l.is_positive())
            .collect();
        if satisfying.len() == 1 && satisfying[0].var().index() == var {
            count += weights.map_or(1, |w| w[ci]);
        }
    }
    count
}

impl Solver for WalkSatSolver {
    fn name(&self) -> &str {
        "walksat"
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        self.stats = SolverStats::default();
        if cnf.clauses().iter().any(|c| c.is_empty()) {
            return SatResult::Unsat;
        }
        if cnf.num_vars() == 0 {
            return SatResult::Sat(Model::new(Vec::new()));
        }
        let occ = OccurrenceLists::build(cnf);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let budget = budget.started();
        let max_flips = budget.max_decisions.unwrap_or(u64::MAX);
        loop {
            let mut assignment = random_assignment(&mut rng, cnf.num_vars());
            for _ in 0..self.flips_per_try {
                if self.stats.flips >= max_flips {
                    return SatResult::Unknown(StopReason::DecisionLimit);
                }
                // Amortised budget poll: one atomic load + optional
                // `Instant::now` every 256 flips, nothing per iteration.
                if self.stats.flips & 255 == 0 {
                    if let Some(reason) = budget.exceeded() {
                        return SatResult::Unknown(reason);
                    }
                }
                let unsat = unsatisfied_clauses(cnf, &assignment);
                if unsat.is_empty() {
                    return SatResult::Sat(Model::new(assignment));
                }
                let clause = &cnf.clauses()[unsat[rng.gen_range(0..unsat.len())]];
                let flip_var = if rng.gen_f64() < self.noise {
                    clause[rng.gen_range(0..clause.len())].var().index()
                } else {
                    clause
                        .iter()
                        .map(|l| l.var().index())
                        .min_by_key(|&v| break_count(cnf, &occ, &assignment, v, None))
                        .expect("clauses are non-empty")
                };
                assignment[flip_var] = !assignment[flip_var];
                self.stats.flips += 1;
            }
            self.stats.restarts += 1;
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

impl Solver for DlmSolver {
    fn name(&self) -> &str {
        "dlm"
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        self.stats = SolverStats::default();
        if cnf.clauses().iter().any(|c| c.is_empty()) {
            return SatResult::Unsat;
        }
        if cnf.num_vars() == 0 {
            return SatResult::Sat(Model::new(Vec::new()));
        }
        let occ = OccurrenceLists::build(cnf);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let budget = budget.started();
        let max_flips = budget.max_decisions.unwrap_or(u64::MAX);
        loop {
            let mut assignment = random_assignment(&mut rng, cnf.num_vars());
            let mut weights: Vec<u64> = vec![1; cnf.num_clauses()];
            for _ in 0..self.flips_per_try {
                if self.stats.flips >= max_flips {
                    return SatResult::Unknown(StopReason::DecisionLimit);
                }
                // Amortised budget poll: one atomic load + optional
                // `Instant::now` every 256 flips, nothing per iteration.
                if self.stats.flips & 255 == 0 {
                    if let Some(reason) = budget.exceeded() {
                        return SatResult::Unknown(reason);
                    }
                }
                let unsat = unsatisfied_clauses(cnf, &assignment);
                if unsat.is_empty() {
                    return SatResult::Sat(Model::new(assignment));
                }
                // Greedy move: flip the variable of an unsatisfied clause with
                // the best weighted gain (weighted make − weighted break).
                let mut best: Option<(i64, usize)> = None;
                for &ci in unsat.iter().take(32) {
                    for lit in &cnf.clauses()[ci] {
                        let v = lit.var().index();
                        let brk = break_count(cnf, &occ, &assignment, v, Some(&weights)) as i64;
                        let mut make = 0i64;
                        for &cj in &occ.by_var[v] {
                            let clause = &cnf.clauses()[cj];
                            if !clause_satisfied(clause, &assignment) {
                                // Flipping v satisfies the clause iff v occurs with the
                                // polarity opposite to the current assignment.
                                let fixes = clause.iter().any(|l| {
                                    l.var().index() == v && assignment[v] != l.is_positive()
                                });
                                if fixes {
                                    make += weights[cj] as i64;
                                }
                            }
                        }
                        let gain = make - brk;
                        if best.is_none_or(|(g, _)| gain > g) {
                            best = Some((gain, v));
                        }
                    }
                }
                let (gain, var) = best.expect("unsatisfied clauses are non-empty");
                if gain <= 0 {
                    // Local minimum: increase the Lagrange multipliers (weights)
                    // of the unsatisfied clauses.
                    for &ci in &unsat {
                        weights[ci] += self.weight_increment;
                    }
                    // And take a noisy step so the search keeps moving.
                    let clause = &cnf.clauses()[unsat[rng.gen_range(0..unsat.len())]];
                    let v = clause[rng.gen_range(0..clause.len())].var().index();
                    assignment[v] = !assignment[v];
                } else {
                    assignment[var] = !assignment[var];
                }
                self.stats.flips += 1;
            }
            self.stats.restarts += 1;
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;
    use crate::solver::verify_model;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    #[test]
    fn walksat_finds_easy_model() {
        let cnf = cnf_of(&[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3]]);
        let mut solver = WalkSatSolver::new();
        match solver.solve_with_budget(&cnf, Budget::step_limit(100_000)) {
            SatResult::Sat(model) => assert!(verify_model(&cnf, &model)),
            other => panic!("expected SAT, got {other:?}"),
        }
        assert!(!solver.is_complete());
    }

    #[test]
    fn dlm_finds_easy_model() {
        let cnf = cnf_of(&[&[1, 2, 3], &[-1, 2], &[-2, 3], &[-3, -1]]);
        let mut solver = DlmSolver::new();
        match solver.solve_with_budget(&cnf, Budget::step_limit(100_000)) {
            SatResult::Sat(model) => assert!(verify_model(&cnf, &model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn local_search_cannot_prove_unsat() {
        let cnf = cnf_of(&[&[1], &[-1]]);
        let mut walksat = WalkSatSolver::new();
        let result = walksat.solve_with_budget(&cnf, Budget::step_limit(2_000));
        assert!(matches!(result, SatResult::Unknown(_)));
        let mut dlm = DlmSolver::new();
        let result = dlm.solve_with_budget(&cnf, Budget::step_limit(2_000));
        assert!(matches!(result, SatResult::Unknown(_)));
    }

    #[test]
    fn empty_clause_detected_syntactically() {
        let mut cnf = CnfFormula::new(1);
        cnf.add_clause(vec![]);
        assert!(WalkSatSolver::new().solve(&cnf).is_unsat());
        assert!(DlmSolver::new().solve(&cnf).is_unsat());
    }

    #[test]
    fn solvers_on_larger_random_sat_instance() {
        use crate::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let num_vars = 40;
        // Planted solution: all-true, every clause has at least one positive literal.
        let mut cnf = CnfFormula::new(num_vars);
        for _ in 0..120 {
            let mut clause = Vec::new();
            clause.push(Lit::positive(Var::new(rng.gen_range(0..num_vars) as u32)));
            for _ in 0..2 {
                let v = rng.gen_range(0..num_vars) as u32;
                clause.push(Lit::new(Var::new(v), rng.gen_bool(0.5)));
            }
            cnf.add_clause(clause);
        }
        let mut walksat = WalkSatSolver::new();
        match walksat.solve_with_budget(&cnf, Budget::step_limit(500_000)) {
            SatResult::Sat(model) => assert!(verify_model(&cnf, &model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}
