//! Persistent, assumption-based incremental SAT solving.
//!
//! The verification flow checks *families* of closely related formulas: one
//! obligation per case split of the decomposed correctness criterion, or one
//! refinement iteration per violated transitivity constraint.  A fresh
//! [`crate::cdcl::CdclSolver`] re-learns the same clauses for every member of
//! the family; the [`IncrementalSolver`] keeps one CDCL engine alive across
//! the whole family instead:
//!
//! * **Assumptions** — [`IncrementalSolver::solve_assuming`] treats the given
//!   literals as MiniSat-style pseudo-decisions at the bottom of the decision
//!   stack.  Learned clauses, variable activities and saved phases survive
//!   from one call to the next, so later queries start where earlier ones
//!   left off.
//! * **Clause addition between solves** — [`IncrementalSolver::add_clause`]
//!   installs new clauses directly into the live engine (arena, watches,
//!   heap), which is what a lazy-refinement loop needs: solve, inspect the
//!   model, assert the violated constraint, re-solve.
//! * **Activation-literal scopes** — [`IncrementalSolver::push`] opens a
//!   scope guarded by a fresh activation variable; clauses added inside the
//!   scope carry its negation and are enforced through an implicit
//!   assumption.  [`IncrementalSolver::pop`] retires the scope by asserting
//!   the negated activation literal at the root, which permanently satisfies
//!   the scope's clauses (and every learned clause derived from them).
//! * **UNSAT cores** — when `solve_assuming` returns `Unsat`, final-conflict
//!   analysis yields the subset of the assumptions that already forces the
//!   conflict, available from [`IncrementalSolver::unsat_core`].  An empty
//!   core means the formula is unsatisfiable regardless of the assumptions.
//!
//! Sessions can be recorded in the iCNF format (`p inccnf`) with
//! [`IncrementalSolver::enable_trace`] and re-executed with [`replay_icnf`].

use crate::cdcl::{CdclConfig, Engine};
use crate::cnf::{CnfFormula, Lit, Var};
use crate::dimacs::IcnfEvent;
use crate::proof::SharedProof;
use crate::solver::{Budget, SatResult, SolverStats};

/// A persistent CDCL solver with assumptions, incremental clause addition,
/// activation-literal scopes and UNSAT cores.
pub struct IncrementalSolver {
    engine: Engine,
    config_name: String,
    /// Activation variables of the open scopes, innermost last.
    scopes: Vec<Var>,
    /// One `incr.scope` trace span per open scope, innermost last; closed
    /// (dropped) when the scope pops, so nested push/pop sequences show up
    /// as nested spans in the trace.
    scope_spans: Vec<velv_obs::SpanGuard>,
    /// Core of the last failing `solve_assuming`, over the caller's literals.
    last_core: Vec<Lit>,
    /// Optional iCNF session log.
    trace: Option<Vec<IcnfEvent>>,
    /// Shared handle of the DRAT proof log, when proof logging is enabled.
    proof: Option<SharedProof>,
}

impl std::fmt::Debug for IncrementalSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSolver")
            .field("config", &self.config_name)
            .field("num_vars", &self.num_vars())
            .field("scopes", &self.scopes.len())
            .finish()
    }
}

impl IncrementalSolver {
    /// Creates an empty incremental solver with the given CDCL configuration.
    pub fn new(config: CdclConfig) -> Self {
        Self::with_formula(config, &CnfFormula::new(0))
    }

    /// Creates an incremental solver preloaded with `cnf`.
    pub fn with_formula(config: CdclConfig, cnf: &CnfFormula) -> Self {
        let config_name = config.name.clone();
        IncrementalSolver {
            engine: Engine::new(cnf, config),
            config_name,
            scopes: Vec::new(),
            scope_spans: Vec::new(),
            last_core: Vec::new(),
            trace: None,
            proof: None,
        }
    }

    /// An incremental solver with the Chaff preset (the strongest default).
    pub fn chaff() -> Self {
        Self::new(CdclConfig::chaff())
    }

    /// The preset name of the underlying engine configuration.
    pub fn name(&self) -> &str {
        &self.config_name
    }

    /// Number of variables currently known to the solver (including
    /// activation variables of past and present scopes).
    pub fn num_vars(&self) -> usize {
        self.engine.num_vars()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.engine.num_vars() as u32);
        self.engine.ensure_vars(v.index() + 1);
        v
    }

    /// Starts recording the session as iCNF events (clauses and solve cues).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded iCNF session, if tracing was enabled.
    pub fn trace(&self) -> Option<&[IcnfEvent]> {
        self.trace.as_deref()
    }

    /// Enables DRAT proof logging and returns the shared proof handle.  The
    /// log is threaded through *every* later solve: learned clauses,
    /// deletions, and the terminal clause of each failing query (the empty
    /// clause, or the clause over the negated final-core assumptions —
    /// including activation literals of open scopes) accumulate in one proof,
    /// so assumption-based UNSAT answers and UNSAT cores are certifiable
    /// against the clauses added to the session.  Idempotent.
    ///
    /// Enable proof logging **before the first solve**: inferences performed
    /// earlier (learned clauses of previous queries) are not on record, so
    /// later steps that resolve on them may fail the independent replay.
    /// Late enabling is fail-safe — the checker rejects, it never wrongly
    /// accepts — but leaves valid verdicts uncertifiable.
    pub fn enable_proof(&mut self) -> SharedProof {
        if let Some(handle) = &self.proof {
            return handle.clone();
        }
        let handle = SharedProof::new();
        self.engine.set_proof_writer(Box::new(handle.clone()));
        self.proof = Some(handle.clone());
        handle
    }

    /// The shared proof handle, when proof logging is enabled.
    pub fn proof(&self) -> Option<&SharedProof> {
        self.proof.as_ref()
    }

    /// Adds a clause.  Inside a scope the clause additionally carries the
    /// negated activation literal of the innermost scope, so a later
    /// [`IncrementalSolver::pop`] retires it.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        let mut clause = lits.to_vec();
        if let Some(&act) = self.scopes.last() {
            clause.push(Lit::negative(act));
        }
        if let Some(trace) = &mut self.trace {
            trace.push(IcnfEvent::AddClause(clause.clone()));
        }
        self.engine.add_clause_dynamic(&clause);
    }

    /// Adds every clause of `cnf` (at the current scope).
    pub fn add_formula(&mut self, cnf: &CnfFormula) {
        self.engine.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause(clause);
        }
    }

    /// Opens a clause scope guarded by a fresh activation variable; returns
    /// the new scope depth.
    pub fn push(&mut self) -> usize {
        let act = self.new_var();
        self.scopes.push(act);
        self.scope_spans.push(velv_obs::span_fields(
            "incr.scope",
            &[("depth", self.scopes.len().into())],
        ));
        self.scopes.len()
    }

    /// Closes the innermost scope: its activation literal is asserted false
    /// at the root, permanently satisfying (hence retiring) every clause
    /// added inside the scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let act = self.scopes.pop().expect("pop without a matching push");
        let retire = [Lit::negative(act)];
        if let Some(trace) = &mut self.trace {
            trace.push(IcnfEvent::AddClause(retire.to_vec()));
        }
        self.engine.add_clause_dynamic(&retire);
        self.scope_spans.pop();
    }

    /// Current scope depth.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// Solves the current formula (no extra assumptions) within `budget`.
    pub fn solve(&mut self, budget: Budget) -> SatResult {
        self.solve_assuming(&[], budget)
    }

    /// Solves the current formula under `assumptions` within `budget`.
    ///
    /// On `Unsat`, [`IncrementalSolver::unsat_core`] returns the subset of
    /// `assumptions` responsible; an empty core means the formula itself
    /// (including open scopes) is unsatisfiable.  Learned clauses and
    /// heuristic state are retained across calls.
    pub fn solve_assuming(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        // Activation literals of the open scopes are implicit assumptions,
        // placed before the caller's so cores blame the caller's literals
        // only when the scopes alone are consistent.
        let mut all: Vec<Lit> = self.scopes.iter().map(|&act| Lit::positive(act)).collect();
        all.extend_from_slice(assumptions);
        if let Some(trace) = &mut self.trace {
            // The trace records the *full* assumption vector (activation
            // literals included) so a scope-free replay enforces the same
            // clauses.
            trace.push(IcnfEvent::Solve(all.clone()));
        }
        let _span = velv_obs::span_fields(
            "incr.solve",
            &[
                ("assumptions", assumptions.len().into()),
                ("scope_depth", self.scopes.len().into()),
            ],
        );
        let result = self.engine.search(&all, budget);
        self.last_core.clear();
        if result.is_unsat() {
            // Keep only the caller's literals: the activation assumptions are
            // an implementation detail of the scope mechanism.
            self.last_core.extend(
                self.engine
                    .final_core()
                    .iter()
                    .copied()
                    .filter(|lit| assumptions.contains(lit)),
            );
        }
        result
    }

    /// The UNSAT core of the most recent failing [`IncrementalSolver::solve_assuming`]:
    /// a subset of its assumption literals that already forces
    /// unsatisfiability.  Empty when the formula is unsatisfiable outright
    /// (or when the last solve did not return `Unsat`).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Whether the formula has been proven unsatisfiable at the root
    /// (independently of any assumptions) — every later solve is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        self.engine.is_unsat()
    }

    /// Cumulative statistics of the engine across all solve calls.
    pub fn stats(&self) -> SolverStats {
        self.engine.stats
    }
}

/// Re-executes a recorded iCNF session with a fresh [`IncrementalSolver`] and
/// returns the result of each solve cue, in order.
pub fn replay_icnf(events: &[IcnfEvent], config: CdclConfig, budget: Budget) -> Vec<SatResult> {
    let mut solver = IncrementalSolver::new(config);
    let mut results = Vec::new();
    for event in events {
        match event {
            IcnfEvent::AddClause(lits) => solver.add_clause(lits),
            IcnfEvent::Solve(assumptions) => {
                results.push(solver.solve_assuming(assumptions, budget.clone()));
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::verify_model;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn clauses(solver: &mut IncrementalSolver, cs: &[&[i64]]) {
        for c in cs {
            let c: Vec<Lit> = c.iter().map(|&i| lit(i)).collect();
            solver.add_clause(&c);
        }
    }

    #[test]
    fn basic_sat_and_unsat_across_solves() {
        let mut solver = IncrementalSolver::chaff();
        clauses(&mut solver, &[&[1, 2], &[-1, 2]]);
        assert!(solver.solve(Budget::unlimited()).is_sat());
        solver.add_clause(&[lit(-2)]);
        assert!(solver.solve(Budget::unlimited()).is_unsat());
        assert!(solver.is_unsat());
        // Once root-UNSAT, every later query is UNSAT with an empty core.
        assert!(solver
            .solve_assuming(&[lit(1)], Budget::unlimited())
            .is_unsat());
        assert!(solver.unsat_core().is_empty());
    }

    #[test]
    fn assumptions_flip_the_verdict_without_touching_the_formula() {
        let mut solver = IncrementalSolver::chaff();
        // (a ∨ b) ∧ (¬a ∨ c): satisfiable; unsat under {¬b, a, ¬c}.
        clauses(&mut solver, &[&[1, 2], &[-1, 3]]);
        assert!(solver
            .solve_assuming(&[lit(-2)], Budget::unlimited())
            .is_sat());
        let result = solver.solve_assuming(&[lit(-2), lit(1), lit(-3)], Budget::unlimited());
        assert!(result.is_unsat());
        let core = solver.unsat_core().to_vec();
        assert!(!core.is_empty());
        // The formula itself is still satisfiable.
        assert!(solver.solve(Budget::unlimited()).is_sat());
    }

    #[test]
    fn unsat_core_is_a_subset_that_resolves_unsat() {
        let mut solver = IncrementalSolver::chaff();
        // x1 → x2 → x3, plus an irrelevant variable x4.
        clauses(&mut solver, &[&[-1, 2], &[-2, 3]]);
        let assumptions = [lit(4), lit(1), lit(-3)];
        assert!(solver
            .solve_assuming(&assumptions, Budget::unlimited())
            .is_unsat());
        let core = solver.unsat_core().to_vec();
        assert!(core.iter().all(|l| assumptions.contains(l)), "{core:?}");
        assert!(
            !core.contains(&lit(4)),
            "the irrelevant assumption is not blamed: {core:?}"
        );
        // The core alone must re-solve UNSAT.
        let mut fresh = IncrementalSolver::chaff();
        clauses(&mut fresh, &[&[-1, 2], &[-2, 3]]);
        assert!(fresh.solve_assuming(&core, Budget::unlimited()).is_unsat());
    }

    #[test]
    fn contradictory_assumptions_yield_both_in_the_core() {
        let mut solver = IncrementalSolver::chaff();
        clauses(&mut solver, &[&[1, 2]]);
        assert!(solver
            .solve_assuming(&[lit(3), lit(-3)], Budget::unlimited())
            .is_unsat());
        let core = solver.unsat_core();
        assert!(
            core.contains(&lit(3)) && core.contains(&lit(-3)),
            "{core:?}"
        );
    }

    #[test]
    fn models_under_assumptions_satisfy_them() {
        let mut solver = IncrementalSolver::chaff();
        let mut cnf = CnfFormula::new(0);
        clauses(&mut solver, &[&[1, 2, 3], &[-1, -2], &[-2, -3]]);
        for c in [&[1i64, 2, 3][..], &[-1, -2], &[-2, -3]] {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        for assumption in [lit(1), lit(2), lit(3), lit(-1)] {
            match solver.solve_assuming(&[assumption], Budget::unlimited()) {
                SatResult::Sat(model) => {
                    assert!(verify_model(&cnf, &model));
                    let value = model.value(assumption.var());
                    assert_eq!(value, assumption.is_positive(), "{assumption:?}");
                }
                other => panic!("expected SAT under {assumption:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn push_pop_retires_scope_clauses() {
        let mut solver = IncrementalSolver::chaff();
        clauses(&mut solver, &[&[1, 2]]);
        solver.push();
        clauses(&mut solver, &[&[-1], &[-2]]);
        assert!(solver.solve(Budget::unlimited()).is_unsat());
        assert!(!solver.is_unsat(), "scope conflict is not a root conflict");
        solver.pop();
        assert!(solver.solve(Budget::unlimited()).is_sat());
        // Nested scopes, popped in order.
        solver.push();
        solver.add_clause(&[lit(-1)]);
        solver.push();
        solver.add_clause(&[lit(-2)]);
        assert_eq!(solver.scope_depth(), 2);
        assert!(solver.solve(Budget::unlimited()).is_unsat());
        solver.pop();
        assert!(solver.solve(Budget::unlimited()).is_sat());
        solver.pop();
        assert!(solver.solve(Budget::unlimited()).is_sat());
    }

    #[test]
    fn learned_clauses_survive_across_calls() {
        // Solving the same UNSAT instance twice must be cheaper the second
        // time: the learned clauses from the first run persist.
        use crate::generators::pigeonhole;
        let mut solver = IncrementalSolver::chaff();
        solver.add_formula(&pigeonhole(5));
        assert!(solver.solve(Budget::unlimited()).is_unsat());
        let after_first = solver.stats().conflicts;
        assert!(after_first > 0);
        assert!(solver.solve(Budget::unlimited()).is_unsat());
        let second = solver.stats().conflicts - after_first;
        assert_eq!(second, 0, "root-level UNSAT is remembered");
    }

    #[test]
    fn trace_replays_to_the_same_verdicts() {
        let mut solver = IncrementalSolver::chaff();
        solver.enable_trace();
        clauses(&mut solver, &[&[1, 2], &[-1, 3]]);
        let verdict_a = solver.solve_assuming(&[lit(-2)], Budget::unlimited());
        solver.add_clause(&[lit(-3)]);
        let verdict_b = solver.solve_assuming(&[lit(-2)], Budget::unlimited());
        let trace = solver.trace().unwrap().to_vec();
        let replayed = replay_icnf(&trace, CdclConfig::chaff(), Budget::unlimited());
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].is_sat(), verdict_a.is_sat());
        assert_eq!(replayed[1].is_unsat(), verdict_b.is_unsat());
    }
}
