//! Pluggable DRAT proof logging for the CDCL engine.
//!
//! When a [`ProofWriter`] is attached, the engine records every inference it
//! performs on the clause database — learned clauses, clause deletions
//! (database reduction, SATO oversize purge), the empty clause on a root
//! conflict, and the clause over the negated assumptions when a query fails —
//! so that an UNSAT answer comes with a replayable
//! [DRAT](https://satcompetition.github.io/2024/certificates.html) proof.
//! Checking is *not* done here: the independent checker lives in
//! [`velv_proof::checker`], which deliberately shares no code with this crate.
//!
//! The writer is a trait so that sinks can be swapped: the default
//! [`SharedProof`] accumulates an in-memory [`velv_proof::Proof`] behind a
//! cheap shared handle (the caller keeps a clone and reads the proof after the
//! solve), while custom sinks can stream steps to a file for proofs too large
//! to hold.

use crate::cnf::Lit;
use std::sync::{Arc, Mutex};
use velv_proof::Proof;

/// A sink for DRAT proof steps emitted by the solver.
///
/// Implementations must be cheap: the engine calls [`ProofWriter::add_clause`]
/// once per learned clause (on the conflict path) and
/// [`ProofWriter::delete_clause`] once per clause deletion.
pub trait ProofWriter: Send {
    /// Records a derived (RUP) clause addition.
    fn add_clause(&mut self, lits: &[Lit]);
    /// Records a clause deletion.
    fn delete_clause(&mut self, lits: &[Lit]);
}

/// A shared, in-memory DRAT proof: clones refer to the same underlying
/// [`Proof`], so the caller can hand one clone to the solver as its
/// [`ProofWriter`] and keep another to read the recorded steps afterwards.
///
/// The per-step cost is one uncontended mutex lock — negligible next to the
/// conflict analysis that precedes every learned clause.
#[derive(Clone, Debug, Default)]
pub struct SharedProof {
    inner: Arc<Mutex<Proof>>,
}

impl SharedProof {
    /// Creates an empty shared proof.
    pub fn new() -> Self {
        SharedProof::default()
    }

    /// A snapshot of the steps recorded so far.
    pub fn snapshot(&self) -> Proof {
        self.inner
            .lock()
            .expect("proof lock is not poisoned")
            .clone()
    }

    /// Takes the recorded proof out, leaving an empty one behind.
    pub fn take(&self) -> Proof {
        std::mem::take(&mut *self.inner.lock().expect("proof lock is not poisoned"))
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("proof lock is not poisoned").len()
    }

    /// Whether no steps have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProofWriter for SharedProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.inner
            .lock()
            .expect("proof lock is not poisoned")
            .add(crate::dimacs::clause_to_dimacs_i32(lits));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.inner
            .lock()
            .expect("proof lock is not poisoned")
            .delete(crate::dimacs::clause_to_dimacs_i32(lits));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;
    use velv_proof::ProofStep;

    #[test]
    fn shared_proof_clones_observe_each_other() {
        let shared = SharedProof::new();
        let mut writer = shared.clone();
        writer.add_clause(&[Lit::positive(Var::new(0)), Lit::negative(Var::new(1))]);
        writer.delete_clause(&[Lit::negative(Var::new(0))]);
        assert_eq!(shared.len(), 2);
        let proof = shared.snapshot();
        assert_eq!(proof.steps()[0], ProofStep::Add(vec![1, -2]));
        assert_eq!(proof.steps()[1], ProofStep::Delete(vec![-1]));
        let taken = shared.take();
        assert_eq!(taken.len(), 2);
        assert!(shared.is_empty());
    }
}
