//! Boolean satisfiability procedures used as back ends of the verification flow.
//!
//! The paper compares 31 SAT checkers, two ATPG tools and two kinds of decision
//! diagrams on CNF formulas produced in microprocessor correspondence checking,
//! and identifies conflict-driven clause-learning solvers (Chaff, BerkMin) as the
//! only procedures that scale.  This crate reimplements the algorithmic *classes*
//! of that comparison from scratch:
//!
//! * [`cdcl`] — a conflict-driven clause-learning solver with two-watched-literal
//!   propagation, first-UIP learning, activity-based decisions, restarts, phase
//!   saving and clause-database reduction.  Configuration presets approximate
//!   **Chaff** (VSIDS + aggressive restarts), **BerkMin** (decisions driven by the
//!   most recently learned unsatisfied conflict clause), **GRASP** (learning but
//!   no restarts, static ordering) and **SATO** (length-bounded learning).
//! * [`dpll`] — a plain Davis–Putnam–Logemann–Loveland solver without learning
//!   (the satz / posit / ntab class).
//! * [`local_search`] — incomplete stochastic solvers: **WalkSAT** and a
//!   **DLM**-style clause-weighting search.
//! * [`incremental`] — a persistent CDCL session ([`IncrementalSolver`]):
//!   MiniSat-style assumptions, clause addition between solves,
//!   activation-literal `push`/`pop` scopes and UNSAT cores over the
//!   assumption literals.  This is the substrate for the shared-solver
//!   decomposition and lazy transitivity refinement in `velv_core`.
//! * [`cnf`] + [`dimacs`] — clause representation and DIMACS I/O (including
//!   the `p inccnf` incremental session format).
//! * [`preprocess`] — the "simplify before solving" experiments of Section 4.
//! * [`proof`] — pluggable DRAT proof logging: with a [`proof::ProofWriter`]
//!   attached, the CDCL engine records every learned clause and deletion so
//!   UNSAT answers can be replayed by the independent checker in
//!   `velv_proof` (including assumption-based answers, whose final step is
//!   the clause over the negated assumptions).
//! * [`portfolio`] — a parallel portfolio that races several engines on
//!   threads and returns the first decided answer, cancelling the losers
//!   through the cooperative [`CancelToken`] carried by [`Budget`].  The paper
//!   observes that no single procedure wins on every benchmark; the portfolio
//!   turns that observation into a "fastest engine wins" execution mode.
//! * [`race`] — the generic scoped-spawn / first-decided-wins / cancel-token
//!   collector underlying both the CNF-level portfolio and the verdict-level
//!   back-end race in `velv_core`.
//! * [`rng`] — the small deterministic PRNG shared by the stochastic searches.
//!
//! # Example
//!
//! ```
//! use velv_sat::{CnfFormula, Lit, Var, Solver, SatResult};
//! use velv_sat::cdcl::CdclSolver;
//!
//! let mut cnf = CnfFormula::new(2);
//! let a = Lit::positive(Var::new(0));
//! let b = Lit::positive(Var::new(1));
//! cnf.add_clause(vec![a, b]);
//! cnf.add_clause(vec![!a]);
//! let mut solver = CdclSolver::chaff();
//! match solver.solve(&cnf) {
//!     SatResult::Sat(model) => assert!(model.value(b.var())),
//!     _ => unreachable!("the formula is satisfiable"),
//! }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdcl;
pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod generators;
pub mod incremental;
pub mod local_search;
pub mod obs;
pub mod portfolio;
pub mod preprocess;
pub mod presets;
pub mod proof;
pub mod race;
pub mod rng;
pub mod solver;

pub use cnf::{Clause, CnfFormula, Lit, Var};
pub use incremental::IncrementalSolver;
pub use obs::{
    current_solve_recorder, install_progress_cell, install_solve_recorder, ProgressCell,
    ProgressGuard, ProgressSnapshot, SolveRecorderGuard,
};
pub use portfolio::{EngineReport, PortfolioHandle, PortfolioReport, PortfolioSolver};
pub use proof::{ProofWriter, SharedProof};
pub use race::{race, race_with_token, RaceOutcome, RaceRun};
pub use solver::{Budget, CancelToken, Model, SatResult, Solver, SolverStats, StopReason};
