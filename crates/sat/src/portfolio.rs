//! A parallel portfolio of SAT procedures: race engines, first answer wins.
//!
//! The paper's central experiment (Table 1) is a bake-off between SAT
//! procedures on the same correctness formulas, and its headline observation
//! is that no single procedure wins everywhere: Chaff dominates the unsatisfiable
//! correct-design formulas, local search occasionally snipes a satisfiable
//! buggy-design formula, and BDDs win on small instances with good orders.
//! [`PortfolioSolver`] turns that comparison table into an execution strategy:
//! every member engine starts on its own thread with a shared
//! [`CancelToken`], the first *decided* result ([`SatResult::Sat`] or
//! [`SatResult::Unsat`]) is returned, and the losers observe the token from
//! their hot loops and stop without finishing their search.
//!
//! The per-engine outcomes, statistics and timings are collected in a
//! [`PortfolioReport`], so the experiment harness can still produce the
//! paper's comparison numbers from a single racing run.  The racing itself
//! (scoped spawn, first-decided-wins, cancel forwarding, parent-budget
//! polling) is the generic [`crate::race::race`] collector, shared with the
//! verdict-level back-end race in `velv_core`.
//!
//! # Example
//!
//! ```
//! use velv_sat::{CnfFormula, Lit, Var, Solver};
//! use velv_sat::portfolio::PortfolioSolver;
//!
//! let mut cnf = CnfFormula::new(2);
//! let a = Lit::positive(Var::new(0));
//! let b = Lit::positive(Var::new(1));
//! cnf.add_clause(vec![a, b]);
//! cnf.add_clause(vec![!a]);
//! let mut portfolio = PortfolioSolver::default_presets();
//! assert!(portfolio.solve(&cnf).is_sat());
//! let report = portfolio.report().expect("a race was run");
//! assert!(report.winner.is_some());
//! ```

use crate::cnf::CnfFormula;
use crate::presets::SolverKind;
use crate::race::race_with_token;
use crate::solver::{Budget, CancelToken, SatResult, Solver, SolverStats, StopReason};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Builds one member engine; called once per `solve`, on the member's thread.
pub type SolverFactory = Box<dyn Fn() -> Box<dyn Solver + Send> + Send + Sync>;

/// How one member engine fared in a race.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The engine's name ("chaff", "walksat", ...).
    pub name: String,
    /// The result the engine returned (losers typically report
    /// [`StopReason::Cancelled`]).
    pub result: SatResult,
    /// The engine's solver statistics.
    pub stats: SolverStats,
    /// Wall-clock time from the engine's start to its return.
    pub time: Duration,
    /// Whether this engine decided the formula first.
    pub winner: bool,
}

/// Aggregated outcome of one portfolio race.
#[derive(Clone, Debug, Default)]
pub struct PortfolioReport {
    /// Name of the engine that decided the formula first, if any did.
    pub winner: Option<String>,
    /// Per-engine outcomes, in member registration order.
    pub engines: Vec<EngineReport>,
    /// Wall-clock time of the whole race.
    pub wall_time: Duration,
}

impl PortfolioReport {
    /// The report of the winning engine.
    pub fn winner_report(&self) -> Option<&EngineReport> {
        self.engines.iter().find(|e| e.winner)
    }

    /// Sum of the member statistics — the total work the race burned across
    /// all threads (the price paid for the wall-clock win).
    pub fn aggregate_stats(&self) -> SolverStats {
        let mut total = SolverStats::default();
        for engine in &self.engines {
            total.decisions += engine.stats.decisions;
            total.propagations += engine.stats.propagations;
            total.conflicts += engine.stats.conflicts;
            total.learned_clauses += engine.stats.learned_clauses;
            total.restarts += engine.stats.restarts;
            total.flips += engine.stats.flips;
        }
        total
    }
}

struct Member {
    name: String,
    complete: bool,
    factory: SolverFactory,
}

/// Shared shutdown state between a [`PortfolioSolver`] and its
/// [`PortfolioHandle`]s.
#[derive(Default)]
struct PortfolioControl {
    /// The cancel token of the race currently in flight, if any.
    current: Mutex<Option<CancelToken>>,
    /// Sticky shutdown bit: once raised, every future solve returns
    /// [`StopReason::Cancelled`] immediately.
    closed: AtomicBool,
}

impl PortfolioControl {
    fn cancel_all(&self) {
        self.closed.store(true, Ordering::Relaxed);
        if let Some(token) = self
            .current
            .lock()
            .expect("portfolio control lock")
            .as_ref()
        {
            token.cancel();
        }
    }
}

/// A cloneable remote control for a [`PortfolioSolver`] that may be racing on
/// another thread (obtained from [`PortfolioSolver::cancel_handle`]).
///
/// [`PortfolioHandle::cancel_all`] aborts the race currently in flight — the
/// member engines observe the raised token from their hot loops and return
/// [`StopReason::Cancelled`], and the race's scoped threads are joined before
/// `solve` returns, so nothing leaks — and shuts the solver down: later
/// `solve` calls return `Cancelled` without spawning anything.  This is the
/// supervision hook `velv_serve` workers use to tear down a losing portfolio
/// promptly on cache hits, client disconnects and service shutdown.
#[derive(Clone)]
pub struct PortfolioHandle {
    control: Arc<PortfolioControl>,
}

impl PortfolioHandle {
    /// Cancels any in-flight race and shuts the portfolio down (idempotent).
    pub fn cancel_all(&self) {
        self.control.cancel_all();
    }

    /// Whether the portfolio has been shut down.
    pub fn is_shut_down(&self) -> bool {
        self.control.closed.load(Ordering::Relaxed)
    }
}

/// A [`Solver`] that races its member engines on threads and returns the
/// first decided result, cancelling the losers cooperatively.
///
/// Dropping the solver (or calling [`PortfolioHandle::cancel_all`] on a
/// handle) cancels any race still in flight; the race's scoped threads are
/// joined before `solve_with_budget` returns, so member threads never outlive
/// the solve call that spawned them.
pub struct PortfolioSolver {
    members: Vec<Member>,
    stats: SolverStats,
    report: Option<PortfolioReport>,
    control: Arc<PortfolioControl>,
}

impl Drop for PortfolioSolver {
    fn drop(&mut self) {
        // `solve_with_budget` borrows `self` mutably, so a drop on the owning
        // thread cannot overlap a race — but a `PortfolioHandle` may have
        // been cloned to a supervisor, and dropping the solver must leave no
        // way to start work on a dead portfolio.
        self.control.cancel_all();
    }
}

impl Default for PortfolioSolver {
    fn default() -> Self {
        Self::default_presets()
    }
}

impl PortfolioSolver {
    /// An empty portfolio; add members with [`PortfolioSolver::with_kind`] or
    /// [`PortfolioSolver::with_member`].
    pub fn new() -> Self {
        PortfolioSolver {
            members: Vec::new(),
            stats: SolverStats::default(),
            report: None,
            control: Arc::new(PortfolioControl::default()),
        }
    }

    /// A remote control for cancelling this portfolio from another thread
    /// (see [`PortfolioHandle`]).
    pub fn cancel_handle(&self) -> PortfolioHandle {
        PortfolioHandle {
            control: Arc::clone(&self.control),
        }
    }

    /// The default race: the four CDCL presets of the paper's comparison
    /// (Chaff, BerkMin, GRASP, SATO).
    pub fn default_presets() -> Self {
        Self::of_kinds(&[
            SolverKind::Chaff,
            SolverKind::BerkMin,
            SolverKind::Grasp,
            SolverKind::Sato,
        ])
    }

    /// A portfolio over the given presets.
    pub fn of_kinds(kinds: &[SolverKind]) -> Self {
        kinds.iter().fold(Self::new(), |p, &k| p.with_kind(k))
    }

    /// Adds a preset engine as a member.
    pub fn with_kind(self, kind: SolverKind) -> Self {
        self.with_member(Box::new(move || kind.build()))
    }

    /// Adds a custom engine; the factory is called once per solve, on the
    /// member's own thread.  Name and completeness are probed from one
    /// freshly built instance.
    pub fn with_member(mut self, factory: SolverFactory) -> Self {
        let probe = factory();
        self.members.push(Member {
            name: probe.name().to_owned(),
            complete: probe.is_complete(),
            factory,
        });
        self
    }

    /// The member names, in registration order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name.as_str()).collect()
    }

    /// The report of the most recent race, if one was run.
    pub fn report(&self) -> Option<&PortfolioReport> {
        self.report.as_ref()
    }

    /// Picks the result to return when no engine decided the formula: prefer
    /// a resource-limit reason over `Cancelled`/`Incomplete`, so the caller
    /// learns *why* the race as a whole came up empty.
    fn undecided_reason(engines: &[EngineReport], parent_stop: Option<StopReason>) -> StopReason {
        if let Some(reason) = parent_stop {
            return reason;
        }
        let mut best = StopReason::Incomplete;
        for engine in engines {
            if let SatResult::Unknown(reason) = engine.result {
                best = match (best, reason) {
                    (_, StopReason::ConflictLimit)
                    | (_, StopReason::DecisionLimit)
                    | (_, StopReason::TimeLimit) => reason,
                    (StopReason::Incomplete, StopReason::Cancelled) => StopReason::Cancelled,
                    (b, _) => b,
                };
            }
        }
        best
    }
}

/// Stack size for member threads: DPLL recurses once per variable, and the
/// correctness CNFs of the wide designs reach thousands of variables.
const MEMBER_STACK_SIZE: usize = 64 * 1024 * 1024;

impl Solver for PortfolioSolver {
    fn name(&self) -> &str {
        "portfolio"
    }

    fn is_complete(&self) -> bool {
        self.members.iter().any(|m| m.complete)
    }

    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        if self.members.is_empty() {
            return SatResult::Unknown(StopReason::Incomplete);
        }
        if self.control.closed.load(Ordering::Relaxed) {
            return SatResult::Unknown(StopReason::Cancelled);
        }
        let thread_names: Vec<String> = self
            .members
            .iter()
            .map(|m| format!("velv-portfolio-{}", m.name))
            .collect();
        // Publish the race token so a `PortfolioHandle` on another thread can
        // abort this race directly; re-check the sticky shutdown bit under
        // the lock so a concurrent `cancel_all` cannot slip between the check
        // above and the publication.
        let token = CancelToken::new();
        {
            let mut current = self.control.current.lock().expect("portfolio control lock");
            if self.control.closed.load(Ordering::Relaxed) {
                return SatResult::Unknown(StopReason::Cancelled);
            }
            *current = Some(token.clone());
        }
        let race_span = velv_obs::span_fields(
            "portfolio.race",
            &[
                ("members", self.members.len().into()),
                ("vars", cnf.num_vars().into()),
                ("clauses", cnf.num_clauses().into()),
            ],
        );
        let members = &self.members;
        // Thread-locals do not cross the member spawn: capture the caller's
        // solve recorder here and re-install it inside each member thread, so
        // racing engines feed one shared time-series (samples are told apart
        // by their preset label).
        let recorder = crate::obs::current_solve_recorder();
        let outcome = race_with_token(
            &thread_names,
            budget,
            MEMBER_STACK_SIZE,
            token,
            |index, member_budget| {
                let _recorder_guard = recorder.clone().map(crate::obs::install_solve_recorder);
                let mut solver = (members[index].factory)();
                let result = solver.solve_with_budget(cnf, member_budget);
                (result, solver.stats())
            },
            |(result, _)| result.is_decided(),
        );
        *self.control.current.lock().expect("portfolio control lock") = None;

        let engines: Vec<EngineReport> = outcome
            .runs
            .into_iter()
            .enumerate()
            .filter_map(|(index, run)| {
                run.map(|run| EngineReport {
                    name: self.members[index].name.clone(),
                    result: run.value.0,
                    stats: run.value.1,
                    time: run.time,
                    winner: run.winner,
                })
            })
            .collect();
        let report = PortfolioReport {
            winner: outcome.winner.map(|index| self.members[index].name.clone()),
            engines,
            wall_time: outcome.wall_time,
        };
        // Surface the race outcome on the global registry: one run counter
        // per member, a win counter for the victor, and the losers' conflict
        // work (the winner's engine already published its own conflicts).
        let registry = velv_obs::global();
        for engine in &report.engines {
            let labels: &[(&str, &str)] = &[("preset", engine.name.as_str())];
            registry
                .counter_with(
                    "velv_sat_portfolio_runs_total",
                    labels,
                    "Portfolio member runs started.",
                )
                .inc();
            if engine.winner {
                registry
                    .counter_with(
                        "velv_sat_portfolio_wins_total",
                        labels,
                        "Portfolio races won by this member.",
                    )
                    .inc();
            }
            registry
                .counter_with(
                    "velv_sat_portfolio_conflicts_total",
                    labels,
                    "Conflicts spent by this member across portfolio races.",
                )
                .add(engine.stats.conflicts);
        }
        if velv_obs::enabled() {
            velv_obs::event(
                "portfolio.decided",
                &[
                    ("winner", report.winner.as_deref().unwrap_or("none").into()),
                    ("wall_ms", (report.wall_time.as_millis() as u64).into()),
                ],
            );
        }
        drop(race_span);
        // `stats()` reports the winner's numbers (the work that produced the
        // answer); the report keeps the full per-engine breakdown.
        self.stats = report
            .winner_report()
            .map(|e| e.stats)
            .unwrap_or_else(|| report.aggregate_stats());
        let result = match report.winner_report() {
            Some(winner) => winner.result.clone(),
            None => {
                SatResult::Unknown(Self::undecided_reason(&report.engines, outcome.parent_stop))
            }
        };
        self.report = Some(report);
        result
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use crate::solver::{CancelToken, Model};
    use std::time::Instant;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf_of(clauses: &[&[i64]]) -> CnfFormula {
        let mut cnf = CnfFormula::new(0);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        cnf
    }

    // PHP(n+1, n) is unsatisfiable and hard enough that a spinning member
    // takes a while — a useful "slow loser".
    use crate::generators::pigeonhole;

    /// A deliberately obstinate solver: it never answers, it only spins until
    /// the budget (cancel token, deadline or step limit) tells it to stop.
    struct SpinSolver {
        stats: SolverStats,
    }

    impl SpinSolver {
        fn new() -> Self {
            SpinSolver {
                stats: SolverStats::default(),
            }
        }
    }

    impl Solver for SpinSolver {
        fn name(&self) -> &str {
            "spin"
        }

        fn is_complete(&self) -> bool {
            false
        }

        fn solve_with_budget(&mut self, _cnf: &CnfFormula, budget: Budget) -> SatResult {
            let budget = budget.started();
            loop {
                self.stats.decisions += 1;
                if self.stats.decisions & 255 == 0 {
                    if let Some(reason) = budget.exceeded() {
                        return SatResult::Unknown(reason);
                    }
                }
                if let Some(max) = budget.max_decisions {
                    if self.stats.decisions >= max {
                        return SatResult::Unknown(StopReason::DecisionLimit);
                    }
                }
                std::hint::spin_loop();
            }
        }

        fn stats(&self) -> SolverStats {
            self.stats
        }
    }

    #[test]
    fn portfolio_solves_sat_and_unsat() {
        let sat = cnf_of(&[&[1, 2], &[-1, 2], &[-2, 3]]);
        let unsat = cnf_of(&[&[1], &[-1]]);
        let mut portfolio = PortfolioSolver::default_presets();
        assert!(portfolio.solve(&sat).is_sat());
        let report = portfolio.report().unwrap();
        assert!(report.winner.is_some());
        assert_eq!(report.engines.len(), 4);
        assert!(portfolio.solve(&unsat).is_unsat());
    }

    #[test]
    fn winner_is_named_and_flagged() {
        let mut portfolio = PortfolioSolver::default_presets();
        let result = portfolio.solve(&pigeonhole(4));
        assert!(result.is_unsat());
        let report = portfolio.report().unwrap();
        let winner = report.winner.clone().expect("a complete engine decided");
        let flagged = report.winner_report().expect("winner report present");
        assert_eq!(flagged.name, winner);
        assert!(flagged.result.is_decided());
    }

    #[test]
    fn losing_engine_is_cancelled_promptly() {
        // The spinner never answers; chaff decides almost immediately.  The
        // race as a whole must return promptly — i.e. the spinner must
        // observe the cancel token instead of running forever.
        let mut portfolio = PortfolioSolver::new()
            .with_member(Box::new(|| Box::new(SpinSolver::new())))
            .with_kind(SolverKind::Chaff);
        let cnf = cnf_of(&[&[1, 2], &[-1]]);
        let start = Instant::now();
        let result = portfolio.solve(&cnf);
        let elapsed = start.elapsed();
        assert!(result.is_sat());
        assert!(
            elapsed < Duration::from_secs(5),
            "cancellation was not prompt: {elapsed:?}"
        );
        let report = portfolio.report().unwrap();
        let spinner = report.engines.iter().find(|e| e.name == "spin").unwrap();
        assert_eq!(spinner.result, SatResult::Unknown(StopReason::Cancelled));
        assert!(!spinner.winner);
    }

    #[test]
    fn incomplete_only_portfolio_reports_why() {
        // Local search cannot prove unsatisfiability; with a step limit the
        // race must come back Unknown with a resource-limit reason.
        let mut portfolio = PortfolioSolver::of_kinds(&[SolverKind::WalkSat, SolverKind::Dlm]);
        assert!(!portfolio.is_complete());
        let unsat = cnf_of(&[&[1], &[-1], &[2], &[-2]]);
        let result = portfolio.solve_with_budget(&unsat, Budget::step_limit(1_000));
        match result {
            SatResult::Unknown(reason) => assert_ne!(reason, StopReason::Cancelled),
            other => panic!("local search cannot decide this: {other:?}"),
        }
    }

    #[test]
    fn outer_cancel_token_stops_the_whole_race() {
        let token = CancelToken::new();
        token.cancel();
        let mut portfolio = PortfolioSolver::new()
            .with_member(Box::new(|| Box::new(SpinSolver::new())))
            .with_member(Box::new(|| Box::new(SpinSolver::new())));
        let cnf = pigeonhole(3);
        let start = Instant::now();
        let result = portfolio.solve_with_budget(&cnf, Budget::unlimited().with_cancel(token));
        assert_eq!(result, SatResult::Unknown(StopReason::Cancelled));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn cancel_handle_aborts_an_in_flight_race() {
        // Two spinners that never answer: without external cancellation the
        // race would run forever.  A handle on the test thread must stop the
        // worker thread promptly — and the scoped race joins the member
        // threads before `solve` returns, so nothing leaks.
        let mut portfolio = PortfolioSolver::new()
            .with_member(Box::new(|| Box::new(SpinSolver::new())))
            .with_member(Box::new(|| Box::new(SpinSolver::new())));
        let handle = portfolio.cancel_handle();
        assert!(!handle.is_shut_down());
        let cnf = pigeonhole(3);
        let worker = std::thread::spawn(move || {
            let start = Instant::now();
            let result = portfolio.solve(&cnf);
            (result, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(50));
        handle.cancel_all();
        let (result, elapsed) = worker.join().expect("the racing thread joins");
        assert_eq!(result, SatResult::Unknown(StopReason::Cancelled));
        assert!(
            elapsed < Duration::from_secs(5),
            "cancellation was not prompt: {elapsed:?}"
        );
        assert!(handle.is_shut_down());
    }

    #[test]
    fn shut_down_portfolio_refuses_new_races() {
        let mut portfolio = PortfolioSolver::default_presets();
        portfolio.cancel_handle().cancel_all();
        let start = Instant::now();
        let result = portfolio.solve(&pigeonhole(4));
        assert_eq!(result, SatResult::Unknown(StopReason::Cancelled));
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn dropping_the_solver_cancels_its_races() {
        let portfolio =
            PortfolioSolver::new().with_member(Box::new(|| Box::new(SpinSolver::new())));
        let handle = portfolio.cancel_handle();
        drop(portfolio);
        assert!(handle.is_shut_down());
    }

    #[test]
    fn empty_portfolio_is_unknown() {
        let mut portfolio = PortfolioSolver::new();
        let cnf = cnf_of(&[&[1]]);
        assert_eq!(
            portfolio.solve(&cnf),
            SatResult::Unknown(StopReason::Incomplete)
        );
    }

    #[test]
    fn model_from_portfolio_satisfies_the_formula() {
        let cnf = cnf_of(&[&[1, 2, 3], &[-1, 2], &[-2, 3], &[-3, -1]]);
        let mut portfolio = PortfolioSolver::default_presets();
        match portfolio.solve(&cnf) {
            SatResult::Sat(model) => {
                assert!(crate::solver::verify_model(&cnf, &model));
                let _: &Model = &model;
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}
