//! Observability hooks for the SAT layer.
//!
//! Every CDCL [`Engine`](crate::cdcl) carries an [`EngineObs`]: a bundle of
//! `velv_obs` handles registered on the process-global registry under the
//! engine's preset label (`velv_sat_conflicts_total{preset="chaff"}`, ...).
//! Counter updates are *delta-flushed* — the engine keeps counting into its
//! private [`SolverStats`] exactly as before, and the observability layer
//! publishes the increments at heartbeat boundaries and at the end of every
//! `search` call, so the hot loop pays nothing beyond the existing budget
//! poll.
//!
//! When a trace subscriber is installed, the heartbeat also emits a
//! `solver.heartbeat` event carrying the instantaneous conflict rate, trail
//! depth, decision level and learnt-database size.
//!
//! A host that wants *live* progress (the `velv_serve` per-job progress
//! table behind `velvc top`/`velvc watch`) installs a [`ProgressCell`] on
//! the solving thread ([`install_progress_cell`]); every heartbeat then
//! also stores its figures into the cell's atomics, readable from any
//! thread without locks.
//!
//! A host that wants a *solve profile* (how the search evolved over time)
//! installs a shared [`velv_obs::SolveRecorder`] the same way
//! ([`install_solve_recorder`]); every heartbeat then offers the recorder a
//! [`velv_obs::SolveSample`], and the end of each `search` call closes the
//! series with the true final counters — including budget-exceeded and
//! cancelled exits, which never reach a heartbeat boundary.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use velv_obs::{Counter, Gauge, Histogram};

use crate::solver::SolverStats;

/// Lock-free live progress of one solver run, updated at every heartbeat
/// (see the [module docs](self)) and readable concurrently.
#[derive(Debug, Default)]
pub struct ProgressCell {
    conflicts: AtomicU64,
    conflicts_per_sec: AtomicU64,
    restarts: AtomicU64,
    trail_depth: AtomicU64,
    decision_level: AtomicU64,
    learnt_db: AtomicU64,
    heartbeats: AtomicU64,
}

/// A point-in-time copy of a [`ProgressCell`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Conflicts encountered so far.
    pub conflicts: u64,
    /// Instantaneous conflict rate (conflicts per second, rounded).
    pub conflicts_per_sec: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Assigned literals on the trail at the last heartbeat.
    pub trail_depth: u64,
    /// Decision level at the last heartbeat.
    pub decision_level: u64,
    /// Live learned clauses kept.
    pub learnt_db: u64,
    /// Heartbeats observed; zero means the solver has not reached its first
    /// heartbeat yet (or progress never flowed, e.g. a BDD backend).
    pub heartbeats: u64,
}

impl ProgressCell {
    /// An all-zero cell.
    pub fn new() -> ProgressCell {
        ProgressCell::default()
    }

    fn update(&self, stats: &SolverStats, rate: f64, trail: usize, level: usize, learnts: usize) {
        self.conflicts.store(stats.conflicts, Ordering::Relaxed);
        self.conflicts_per_sec
            .store(rate.max(0.0).round() as u64, Ordering::Relaxed);
        self.restarts.store(stats.restarts, Ordering::Relaxed);
        self.trail_depth.store(trail as u64, Ordering::Relaxed);
        self.decision_level.store(level as u64, Ordering::Relaxed);
        self.learnt_db.store(learnts as u64, Ordering::Relaxed);
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cell.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            conflicts: self.conflicts.load(Ordering::Relaxed),
            conflicts_per_sec: self.conflicts_per_sec.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            trail_depth: self.trail_depth.load(Ordering::Relaxed),
            decision_level: self.decision_level.load(Ordering::Relaxed),
            learnt_db: self.learnt_db.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static PROGRESS: RefCell<Option<Arc<ProgressCell>>> = const { RefCell::new(None) };
}

/// Routes the heartbeats of solvers run *on this thread* into `cell` until
/// the returned guard drops (drop restores the previous cell, so installs
/// nest, and a panicking solve cleans up on unwind).
///
/// Solvers running on other threads (e.g. portfolio members) are not
/// captured — their progress stays visible through the global registry
/// only.
#[must_use = "progress flows only while the guard is alive"]
pub fn install_progress_cell(cell: Arc<ProgressCell>) -> ProgressGuard {
    let previous = PROGRESS
        .try_with(|slot| slot.borrow_mut().replace(cell))
        .ok()
        .flatten();
    ProgressGuard { previous }
}

/// Uninstalls the [`ProgressCell`] of [`install_progress_cell`] on drop.
pub struct ProgressGuard {
    previous: Option<Arc<ProgressCell>>,
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        let _ = PROGRESS.try_with(|slot| *slot.borrow_mut() = previous);
    }
}

fn current_progress_cell() -> Option<Arc<ProgressCell>> {
    PROGRESS
        .try_with(|slot| slot.borrow().clone())
        .ok()
        .flatten()
}

thread_local! {
    static RECORDER: RefCell<Option<velv_obs::SharedSolveRecorder>> = const { RefCell::new(None) };
}

/// Routes the heartbeat samples of solvers run *on this thread* into
/// `recorder` until the returned guard drops (drop restores the previous
/// recorder, so installs nest).  The portfolio backend re-installs the
/// current recorder on each member thread, so racing members feed one shared
/// time-series, told apart by their preset label.
#[must_use = "samples flow only while the guard is alive"]
pub fn install_solve_recorder(recorder: velv_obs::SharedSolveRecorder) -> SolveRecorderGuard {
    let previous = RECORDER
        .try_with(|slot| slot.borrow_mut().replace(recorder))
        .ok()
        .flatten();
    SolveRecorderGuard { previous }
}

/// Uninstalls the recorder of [`install_solve_recorder`] on drop.
pub struct SolveRecorderGuard {
    previous: Option<velv_obs::SharedSolveRecorder>,
}

impl Drop for SolveRecorderGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        let _ = RECORDER.try_with(|slot| *slot.borrow_mut() = previous);
    }
}

/// The solve recorder installed on this thread, if any — hosts that move
/// work across threads (the portfolio race, the serve worker pool) capture
/// it here and re-install it on the destination thread.
pub fn current_solve_recorder() -> Option<velv_obs::SharedSolveRecorder> {
    RECORDER
        .try_with(|slot| slot.borrow().clone())
        .ok()
        .flatten()
}

/// Conflicts between two heartbeats (must be `2^k - 1`; the check is a
/// bitmask on the global conflict count, piggybacked on the conflict branch
/// next to the budget poll).
pub(crate) const HEARTBEAT_MASK: u64 = 1023;

/// Upper bucket bounds for the decision-level histogram, fed by the
/// per-conflict accumulator.
const LEVEL_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096];

/// Memory figures of one engine, computed from the engine's own bookkeeping
/// ([`velv_obs::MemFootprint`]) at heartbeat boundaries — cheap walks of
/// capacities, not allocator traffic.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ArenaFigures {
    /// Words in the clause arena (live + dead).
    pub len_words: u64,
    /// Words occupied by deleted clauses awaiting garbage collection.
    pub wasted_words: u64,
    /// Measured bytes of the clause arena (capacity, including slack).
    pub arena_bytes: u64,
    /// Measured bytes of the watch lists.
    pub watches_bytes: u64,
    /// Measured bytes of the learnt-clause database (arena words of live
    /// learnt clauses plus the reference vector).
    pub learnt_bytes: u64,
}

/// Per-engine observability state: global-registry handles labelled by
/// preset, plus the last-published [`SolverStats`] for delta flushing.
pub(crate) struct EngineObs {
    preset: String,
    conflicts: Counter,
    decisions: Counter,
    propagations: Counter,
    restarts: Counter,
    learnt_db: Gauge,
    arena_len_words: Gauge,
    arena_wasted_words: Gauge,
    arena_bytes: Gauge,
    watches_bytes: Gauge,
    learnt_bytes: Gauge,
    decision_levels: Histogram,
    /// Stats as of the last flush; only the increment since then is added to
    /// the registry counters.
    last: SolverStats,
    /// Timestamp and cumulative conflict/propagation counts at the previous
    /// heartbeat, for the rate figures.
    last_beat: Option<(Instant, u64, u64)>,
    /// Decision level of every conflict since the last publish, accumulated
    /// as plain local bucket counts (one array write per conflict) and
    /// published in bulk at heartbeats — so the histogram's `count` tracks
    /// the *conflict* count, not the heartbeat count.
    level_buckets: [u64; LEVEL_BOUNDS.len() + 1],
    level_sum: u64,
    level_count: u64,
    /// The solve recorder captured from this thread at `begin_solve`.
    recorder: Option<velv_obs::SharedSolveRecorder>,
    /// Restart count already marked into the recorder.
    marked_restarts: u64,
}

impl EngineObs {
    /// Registers (or re-attaches to) the preset-labelled metric family on
    /// the process-global registry.
    pub(crate) fn new(preset: &str) -> Self {
        let registry = velv_obs::global();
        let labels: &[(&str, &str)] = &[("preset", preset)];
        EngineObs {
            conflicts: registry.counter_with(
                "velv_sat_conflicts_total",
                labels,
                "CDCL conflicts encountered.",
            ),
            decisions: registry.counter_with(
                "velv_sat_decisions_total",
                labels,
                "CDCL branching decisions taken.",
            ),
            propagations: registry.counter_with(
                "velv_sat_propagations_total",
                labels,
                "Literals propagated by unit propagation.",
            ),
            restarts: registry.counter_with(
                "velv_sat_restarts_total",
                labels,
                "Search restarts performed.",
            ),
            learnt_db: registry.gauge_with(
                "velv_sat_learnt_db_size",
                labels,
                "Live learned clauses currently kept.",
            ),
            arena_len_words: registry.gauge_with(
                "velv_sat_arena_len_words",
                labels,
                "Clause-arena words in use (live clauses plus garbage).",
            ),
            arena_wasted_words: registry.gauge_with(
                "velv_sat_arena_wasted_words",
                labels,
                "Clause-arena words occupied by deleted clauses (fragmentation).",
            ),
            arena_bytes: registry.gauge_with(
                "velv_sat_arena_bytes",
                labels,
                "Measured clause-arena bytes, including capacity slack.",
            ),
            watches_bytes: registry.gauge_with(
                "velv_sat_watches_bytes",
                labels,
                "Measured watch-list bytes.",
            ),
            learnt_bytes: registry.gauge_with(
                "velv_sat_learnt_bytes",
                labels,
                "Measured learnt-database bytes (live learnt clause words plus references).",
            ),
            decision_levels: registry.histogram_with(
                "velv_sat_decision_level",
                labels,
                "Decision level at each conflict (accumulated locally, published at heartbeats).",
                LEVEL_BOUNDS,
            ),
            preset: preset.to_string(),
            last: SolverStats::default(),
            last_beat: None,
            level_buckets: [0; LEVEL_BOUNDS.len() + 1],
            level_sum: 0,
            level_count: 0,
            recorder: None,
            marked_restarts: 0,
        }
    }

    /// Accumulates the decision level of one conflict into the local bucket
    /// array — the hot-loop half of the histogram (no atomics, no branches
    /// beyond the bucket search).
    #[inline]
    pub(crate) fn note_conflict(&mut self, decision_level: usize) {
        let v = decision_level as u64;
        let index = LEVEL_BOUNDS.partition_point(|&bound| bound < v);
        self.level_buckets[index] += 1;
        self.level_sum += v;
        self.level_count += 1;
    }

    /// Publishes the accumulated per-conflict decision levels in bulk and
    /// returns their mean (0.0 for an empty window).
    fn publish_levels(&mut self) -> f64 {
        if self.level_count == 0 {
            return 0.0;
        }
        let mean = self.level_sum as f64 / self.level_count as f64;
        self.decision_levels
            .observe_bucketed(&self.level_buckets, self.level_sum);
        self.level_buckets = [0; LEVEL_BOUNDS.len() + 1];
        self.level_sum = 0;
        self.level_count = 0;
        mean
    }

    /// Marks the start of one `search` call: captures the solve recorder
    /// installed on this thread (if any) and resets the rate window.
    pub(crate) fn begin_solve(&mut self, stats: &SolverStats) {
        self.recorder = current_solve_recorder();
        self.last_beat = None;
        self.marked_restarts = stats.restarts;
        if let Some(recorder) = &self.recorder {
            if let Ok(mut rec) = recorder.lock() {
                rec.mark("solve", &self.preset);
            }
        }
    }

    /// Marks the end of one `search` call: publishes the remaining level
    /// window, offers a final time-series sample (so aborted runs — budget
    /// exceeded, cancellation — still close their series with the true final
    /// counters), and flushes the counter deltas.
    pub(crate) fn end_solve(
        &mut self,
        stats: &SolverStats,
        trail_depth: usize,
        num_learnts: usize,
        mem: &ArenaFigures,
    ) {
        let mean_level = self.publish_levels();
        if let Some(recorder) = self.recorder.take() {
            let (rate, prop_rate) = self.window_rates(stats);
            if let Ok(mut rec) = recorder.lock() {
                self.mark_restarts(&mut rec, stats);
                let sample = self.build_sample(
                    &rec,
                    stats,
                    trail_depth,
                    num_learnts,
                    mem,
                    rate,
                    prop_rate,
                    mean_level,
                );
                rec.offer(sample);
            }
        }
        self.flush(stats, num_learnts);
        self.publish_arena(mem);
        self.last_beat = None;
    }

    /// Conflict and propagation rates over the window since the previous
    /// heartbeat; restarts the window at the current instant.
    fn window_rates(&mut self, stats: &SolverStats) -> (f64, f64) {
        let now = Instant::now();
        let rates = match self.last_beat {
            Some((then, conflicts, propagations)) => {
                let dt = now.duration_since(then).as_secs_f64();
                if dt > 0.0 {
                    (
                        stats.conflicts.saturating_sub(conflicts) as f64 / dt,
                        stats.propagations.saturating_sub(propagations) as f64 / dt,
                    )
                } else {
                    (0.0, 0.0)
                }
            }
            None => (0.0, 0.0),
        };
        self.last_beat = Some((now, stats.conflicts, stats.propagations));
        rates
    }

    fn mark_restarts(&mut self, rec: &mut velv_obs::SolveRecorder, stats: &SolverStats) {
        if stats.restarts > self.marked_restarts {
            let delta = stats.restarts - self.marked_restarts;
            rec.mark("restart", &delta.to_string());
            self.marked_restarts = stats.restarts;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_sample(
        &self,
        rec: &velv_obs::SolveRecorder,
        stats: &SolverStats,
        trail_depth: usize,
        num_learnts: usize,
        mem: &ArenaFigures,
        rate: f64,
        prop_rate: f64,
        mean_level: f64,
    ) -> velv_obs::SolveSample {
        velv_obs::SolveSample {
            t_us: rec.now_us(),
            label: self.preset.clone(),
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            decisions: stats.decisions,
            restarts: stats.restarts,
            trail_depth: trail_depth as u64,
            learnt_db: num_learnts as u64,
            arena_bytes: mem.arena_bytes,
            learnt_bytes: mem.learnt_bytes,
            conflicts_per_sec: rate,
            propagations_per_sec: prop_rate,
            mean_decision_level: mean_level,
        }
    }

    /// Publishes the engine's memory figures: arena occupancy/fragmentation
    /// and the measured byte gauges.  Called at heartbeats, the end of every
    /// `search`, and directly after a copying garbage collection (so the
    /// fragmentation gauge follows the compaction immediately).
    pub(crate) fn publish_arena(&self, mem: &ArenaFigures) {
        self.arena_len_words.set(mem.len_words as i64);
        self.arena_wasted_words.set(mem.wasted_words as i64);
        self.arena_bytes.set(mem.arena_bytes as i64);
        self.watches_bytes.set(mem.watches_bytes as i64);
        self.learnt_bytes.set(mem.learnt_bytes as i64);
    }

    /// Publishes the increment of `stats` over the last flush to the
    /// registry counters and refreshes the learnt-database gauge.
    pub(crate) fn flush(&mut self, stats: &SolverStats, num_learnts: usize) {
        self.conflicts
            .add(stats.conflicts.saturating_sub(self.last.conflicts));
        self.decisions
            .add(stats.decisions.saturating_sub(self.last.decisions));
        self.propagations
            .add(stats.propagations.saturating_sub(self.last.propagations));
        self.restarts
            .add(stats.restarts.saturating_sub(self.last.restarts));
        self.learnt_db.set(num_learnts as i64);
        self.last = *stats;
    }

    /// Periodic probe from the search loop: publishes the per-conflict
    /// decision-level window, flushes counter deltas, feeds the solve
    /// recorder a time-series sample, and — when a trace subscriber is
    /// installed — emits a `solver.heartbeat` event with the instantaneous
    /// conflict rate.
    pub(crate) fn heartbeat(
        &mut self,
        stats: &SolverStats,
        trail_depth: usize,
        decision_level: usize,
        num_learnts: usize,
        mem: &ArenaFigures,
    ) {
        let mean_level = self.publish_levels();
        self.flush(stats, num_learnts);
        self.publish_arena(mem);
        let cell = current_progress_cell();
        if !velv_obs::enabled() && cell.is_none() && self.recorder.is_none() {
            // Skip the `Instant::now` when nobody is listening; the next
            // listened-to heartbeat restarts the rate window.
            self.last_beat = None;
            return;
        }
        let (rate, prop_rate) = self.window_rates(stats);
        if let Some(recorder) = self.recorder.clone() {
            if let Ok(mut rec) = recorder.lock() {
                self.mark_restarts(&mut rec, stats);
                let sample = self.build_sample(
                    &rec,
                    stats,
                    trail_depth,
                    num_learnts,
                    mem,
                    rate,
                    prop_rate,
                    mean_level,
                );
                rec.offer(sample);
            }
        }
        if let Some(cell) = cell {
            cell.update(stats, rate, trail_depth, decision_level, num_learnts);
        }
        if !velv_obs::enabled() {
            return;
        }
        velv_obs::event(
            "solver.heartbeat",
            &[
                ("conflicts", stats.conflicts.into()),
                ("conflicts_per_sec", rate.into()),
                ("restarts", stats.restarts.into()),
                ("trail_depth", (trail_depth as u64).into()),
                ("decision_level", (decision_level as u64).into()),
                ("learnt_db", (num_learnts as u64).into()),
                ("arena_bytes", mem.arena_bytes.into()),
            ],
        );
    }
}
