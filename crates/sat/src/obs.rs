//! Observability hooks for the SAT layer.
//!
//! Every CDCL [`Engine`](crate::cdcl) carries an [`EngineObs`]: a bundle of
//! `velv_obs` handles registered on the process-global registry under the
//! engine's preset label (`velv_sat_conflicts_total{preset="chaff"}`, ...).
//! Counter updates are *delta-flushed* — the engine keeps counting into its
//! private [`SolverStats`] exactly as before, and the observability layer
//! publishes the increments at heartbeat boundaries and at the end of every
//! `search` call, so the hot loop pays nothing beyond the existing budget
//! poll.
//!
//! When a trace subscriber is installed, the heartbeat also emits a
//! `solver.heartbeat` event carrying the instantaneous conflict rate, trail
//! depth, decision level and learnt-database size.

use std::time::Instant;

use velv_obs::{Counter, Gauge, Histogram};

use crate::solver::SolverStats;

/// Conflicts between two heartbeats (must be `2^k - 1`; the check is a
/// bitmask on the global conflict count, piggybacked on the conflict branch
/// next to the budget poll).
pub(crate) const HEARTBEAT_MASK: u64 = 1023;

/// Upper bucket bounds for the decision-level histogram sampled at each
/// heartbeat.
const LEVEL_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096];

/// Per-engine observability state: global-registry handles labelled by
/// preset, plus the last-published [`SolverStats`] for delta flushing.
pub(crate) struct EngineObs {
    conflicts: Counter,
    decisions: Counter,
    propagations: Counter,
    restarts: Counter,
    learnt_db: Gauge,
    decision_levels: Histogram,
    /// Stats as of the last flush; only the increment since then is added to
    /// the registry counters.
    last: SolverStats,
    /// Timestamp and conflict count of the previous heartbeat, for the
    /// conflicts/s figure in the heartbeat event.
    last_beat: Option<(Instant, u64)>,
}

impl EngineObs {
    /// Registers (or re-attaches to) the preset-labelled metric family on
    /// the process-global registry.
    pub(crate) fn new(preset: &str) -> Self {
        let registry = velv_obs::global();
        let labels: &[(&str, &str)] = &[("preset", preset)];
        EngineObs {
            conflicts: registry.counter_with(
                "velv_sat_conflicts_total",
                labels,
                "CDCL conflicts encountered.",
            ),
            decisions: registry.counter_with(
                "velv_sat_decisions_total",
                labels,
                "CDCL branching decisions taken.",
            ),
            propagations: registry.counter_with(
                "velv_sat_propagations_total",
                labels,
                "Literals propagated by unit propagation.",
            ),
            restarts: registry.counter_with(
                "velv_sat_restarts_total",
                labels,
                "Search restarts performed.",
            ),
            learnt_db: registry.gauge_with(
                "velv_sat_learnt_db_size",
                labels,
                "Live learned clauses currently kept.",
            ),
            decision_levels: registry.histogram_with(
                "velv_sat_decision_level",
                labels,
                "Decision level sampled at each heartbeat.",
                LEVEL_BOUNDS,
            ),
            last: SolverStats::default(),
            last_beat: None,
        }
    }

    /// Publishes the increment of `stats` over the last flush to the
    /// registry counters and refreshes the learnt-database gauge.
    pub(crate) fn flush(&mut self, stats: &SolverStats, num_learnts: usize) {
        self.conflicts
            .add(stats.conflicts.saturating_sub(self.last.conflicts));
        self.decisions
            .add(stats.decisions.saturating_sub(self.last.decisions));
        self.propagations
            .add(stats.propagations.saturating_sub(self.last.propagations));
        self.restarts
            .add(stats.restarts.saturating_sub(self.last.restarts));
        self.learnt_db.set(num_learnts as i64);
        self.last = *stats;
    }

    /// Periodic probe from the search loop: flushes counter deltas, samples
    /// the decision level, and — when a trace subscriber is installed —
    /// emits a `solver.heartbeat` event with the instantaneous conflict
    /// rate.
    pub(crate) fn heartbeat(
        &mut self,
        stats: &SolverStats,
        trail_depth: usize,
        decision_level: usize,
        num_learnts: usize,
    ) {
        self.decision_levels.observe(decision_level as u64);
        self.flush(stats, num_learnts);
        if !velv_obs::enabled() {
            // Skip the `Instant::now` when nobody is listening; the next
            // enabled heartbeat restarts the rate window.
            self.last_beat = None;
            return;
        }
        let now = Instant::now();
        let rate = match self.last_beat {
            Some((then, conflicts)) => {
                let dt = now.duration_since(then).as_secs_f64();
                if dt > 0.0 {
                    (stats.conflicts - conflicts) as f64 / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        self.last_beat = Some((now, stats.conflicts));
        velv_obs::event(
            "solver.heartbeat",
            &[
                ("conflicts", stats.conflicts.into()),
                ("conflicts_per_sec", rate.into()),
                ("restarts", stats.restarts.into()),
                ("trail_depth", (trail_depth as u64).into()),
                ("decision_level", (decision_level as u64).into()),
                ("learnt_db", (num_learnts as u64).into()),
            ],
        );
    }
}
