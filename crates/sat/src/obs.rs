//! Observability hooks for the SAT layer.
//!
//! Every CDCL [`Engine`](crate::cdcl) carries an [`EngineObs`]: a bundle of
//! `velv_obs` handles registered on the process-global registry under the
//! engine's preset label (`velv_sat_conflicts_total{preset="chaff"}`, ...).
//! Counter updates are *delta-flushed* — the engine keeps counting into its
//! private [`SolverStats`] exactly as before, and the observability layer
//! publishes the increments at heartbeat boundaries and at the end of every
//! `search` call, so the hot loop pays nothing beyond the existing budget
//! poll.
//!
//! When a trace subscriber is installed, the heartbeat also emits a
//! `solver.heartbeat` event carrying the instantaneous conflict rate, trail
//! depth, decision level and learnt-database size.
//!
//! A host that wants *live* progress (the `velv_serve` per-job progress
//! table behind `velvc top`/`velvc watch`) installs a [`ProgressCell`] on
//! the solving thread ([`install_progress_cell`]); every heartbeat then
//! also stores its figures into the cell's atomics, readable from any
//! thread without locks.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use velv_obs::{Counter, Gauge, Histogram};

use crate::solver::SolverStats;

/// Lock-free live progress of one solver run, updated at every heartbeat
/// (see the [module docs](self)) and readable concurrently.
#[derive(Debug, Default)]
pub struct ProgressCell {
    conflicts: AtomicU64,
    conflicts_per_sec: AtomicU64,
    restarts: AtomicU64,
    trail_depth: AtomicU64,
    decision_level: AtomicU64,
    learnt_db: AtomicU64,
    heartbeats: AtomicU64,
}

/// A point-in-time copy of a [`ProgressCell`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Conflicts encountered so far.
    pub conflicts: u64,
    /// Instantaneous conflict rate (conflicts per second, rounded).
    pub conflicts_per_sec: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Assigned literals on the trail at the last heartbeat.
    pub trail_depth: u64,
    /// Decision level at the last heartbeat.
    pub decision_level: u64,
    /// Live learned clauses kept.
    pub learnt_db: u64,
    /// Heartbeats observed; zero means the solver has not reached its first
    /// heartbeat yet (or progress never flowed, e.g. a BDD backend).
    pub heartbeats: u64,
}

impl ProgressCell {
    /// An all-zero cell.
    pub fn new() -> ProgressCell {
        ProgressCell::default()
    }

    fn update(&self, stats: &SolverStats, rate: f64, trail: usize, level: usize, learnts: usize) {
        self.conflicts.store(stats.conflicts, Ordering::Relaxed);
        self.conflicts_per_sec
            .store(rate.max(0.0).round() as u64, Ordering::Relaxed);
        self.restarts.store(stats.restarts, Ordering::Relaxed);
        self.trail_depth.store(trail as u64, Ordering::Relaxed);
        self.decision_level.store(level as u64, Ordering::Relaxed);
        self.learnt_db.store(learnts as u64, Ordering::Relaxed);
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cell.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            conflicts: self.conflicts.load(Ordering::Relaxed),
            conflicts_per_sec: self.conflicts_per_sec.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            trail_depth: self.trail_depth.load(Ordering::Relaxed),
            decision_level: self.decision_level.load(Ordering::Relaxed),
            learnt_db: self.learnt_db.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static PROGRESS: RefCell<Option<Arc<ProgressCell>>> = const { RefCell::new(None) };
}

/// Routes the heartbeats of solvers run *on this thread* into `cell` until
/// the returned guard drops (drop restores the previous cell, so installs
/// nest, and a panicking solve cleans up on unwind).
///
/// Solvers running on other threads (e.g. portfolio members) are not
/// captured — their progress stays visible through the global registry
/// only.
#[must_use = "progress flows only while the guard is alive"]
pub fn install_progress_cell(cell: Arc<ProgressCell>) -> ProgressGuard {
    let previous = PROGRESS
        .try_with(|slot| slot.borrow_mut().replace(cell))
        .ok()
        .flatten();
    ProgressGuard { previous }
}

/// Uninstalls the [`ProgressCell`] of [`install_progress_cell`] on drop.
pub struct ProgressGuard {
    previous: Option<Arc<ProgressCell>>,
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        let _ = PROGRESS.try_with(|slot| *slot.borrow_mut() = previous);
    }
}

fn current_progress_cell() -> Option<Arc<ProgressCell>> {
    PROGRESS
        .try_with(|slot| slot.borrow().clone())
        .ok()
        .flatten()
}

/// Conflicts between two heartbeats (must be `2^k - 1`; the check is a
/// bitmask on the global conflict count, piggybacked on the conflict branch
/// next to the budget poll).
pub(crate) const HEARTBEAT_MASK: u64 = 1023;

/// Upper bucket bounds for the decision-level histogram sampled at each
/// heartbeat.
const LEVEL_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096];

/// Per-engine observability state: global-registry handles labelled by
/// preset, plus the last-published [`SolverStats`] for delta flushing.
pub(crate) struct EngineObs {
    conflicts: Counter,
    decisions: Counter,
    propagations: Counter,
    restarts: Counter,
    learnt_db: Gauge,
    decision_levels: Histogram,
    /// Stats as of the last flush; only the increment since then is added to
    /// the registry counters.
    last: SolverStats,
    /// Timestamp and conflict count of the previous heartbeat, for the
    /// conflicts/s figure in the heartbeat event.
    last_beat: Option<(Instant, u64)>,
}

impl EngineObs {
    /// Registers (or re-attaches to) the preset-labelled metric family on
    /// the process-global registry.
    pub(crate) fn new(preset: &str) -> Self {
        let registry = velv_obs::global();
        let labels: &[(&str, &str)] = &[("preset", preset)];
        EngineObs {
            conflicts: registry.counter_with(
                "velv_sat_conflicts_total",
                labels,
                "CDCL conflicts encountered.",
            ),
            decisions: registry.counter_with(
                "velv_sat_decisions_total",
                labels,
                "CDCL branching decisions taken.",
            ),
            propagations: registry.counter_with(
                "velv_sat_propagations_total",
                labels,
                "Literals propagated by unit propagation.",
            ),
            restarts: registry.counter_with(
                "velv_sat_restarts_total",
                labels,
                "Search restarts performed.",
            ),
            learnt_db: registry.gauge_with(
                "velv_sat_learnt_db_size",
                labels,
                "Live learned clauses currently kept.",
            ),
            decision_levels: registry.histogram_with(
                "velv_sat_decision_level",
                labels,
                "Decision level sampled at each heartbeat.",
                LEVEL_BOUNDS,
            ),
            last: SolverStats::default(),
            last_beat: None,
        }
    }

    /// Publishes the increment of `stats` over the last flush to the
    /// registry counters and refreshes the learnt-database gauge.
    pub(crate) fn flush(&mut self, stats: &SolverStats, num_learnts: usize) {
        self.conflicts
            .add(stats.conflicts.saturating_sub(self.last.conflicts));
        self.decisions
            .add(stats.decisions.saturating_sub(self.last.decisions));
        self.propagations
            .add(stats.propagations.saturating_sub(self.last.propagations));
        self.restarts
            .add(stats.restarts.saturating_sub(self.last.restarts));
        self.learnt_db.set(num_learnts as i64);
        self.last = *stats;
    }

    /// Periodic probe from the search loop: flushes counter deltas, samples
    /// the decision level, and — when a trace subscriber is installed —
    /// emits a `solver.heartbeat` event with the instantaneous conflict
    /// rate.
    pub(crate) fn heartbeat(
        &mut self,
        stats: &SolverStats,
        trail_depth: usize,
        decision_level: usize,
        num_learnts: usize,
    ) {
        self.decision_levels.observe(decision_level as u64);
        self.flush(stats, num_learnts);
        let cell = current_progress_cell();
        if !velv_obs::enabled() && cell.is_none() {
            // Skip the `Instant::now` when nobody is listening; the next
            // listened-to heartbeat restarts the rate window.
            self.last_beat = None;
            return;
        }
        let now = Instant::now();
        let rate = match self.last_beat {
            Some((then, conflicts)) => {
                let dt = now.duration_since(then).as_secs_f64();
                if dt > 0.0 {
                    (stats.conflicts - conflicts) as f64 / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        self.last_beat = Some((now, stats.conflicts));
        if let Some(cell) = cell {
            cell.update(stats, rate, trail_depth, decision_level, num_learnts);
        }
        if !velv_obs::enabled() {
            return;
        }
        velv_obs::event(
            "solver.heartbeat",
            &[
                ("conflicts", stats.conflicts.into()),
                ("conflicts_per_sec", rate.into()),
                ("restarts", stats.restarts.into()),
                ("trail_depth", (trail_depth as u64).into()),
                ("decision_level", (decision_level as u64).into()),
                ("learnt_db", (num_learnts as u64).into()),
            ],
        );
    }
}
