//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The stochastic procedures (WalkSAT, DLM, Chaff's random decisions) and the
//! randomized tests only need reproducible, reasonably well-distributed
//! numbers — not cryptographic strength.  This is the SplitMix64 generator
//! (Steele, Lea & Flood, OOPSLA 2014), the same one used to seed xoshiro:
//! one `u64` of state, passes BigCrush, and is trivially portable, so the
//! solver presets behave identically on every platform.

use std::ops::Range;

/// A deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform index in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        let width = range.end - range.start;
        assert!(width > 0, "gen_range requires a non-empty range");
        // Multiply-shift rejection-free mapping; the bias is < 2^-64 per draw,
        // far below anything the stochastic searches could observe.
        let hi = ((self.next_u64() as u128 * width as u128) >> 64) as usize;
        range.start + hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_balanced() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut below_half = 0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        // Very loose balance check: a fair coin lands in this window w.h.p.
        assert!((4_000..6_000).contains(&below_half), "{below_half}");
    }
}
