//! The DRAT proof format: clause additions and deletions, in the text and
//! binary encodings used by the SAT competition checkers.
//!
//! Literals are DIMACS-coded `i32` values (1-based, negative for negated
//! literals); a proof is the ordered list of steps the solver performed.  The
//! text format writes one step per line (`1 -2 0`, deletions prefixed with
//! `d`); the binary format prefixes each step with `a` (0x61) or `d` (0x64)
//! and encodes each literal as the variable-length 7-bit integer
//! `2·|lit| + (lit < 0)`, terminated by a zero byte.

use std::fmt;
use std::io::{self, Write};

/// One step of a DRAT proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// A clause addition (a learned clause, a strengthened clause, the final
    /// clause over negated assumptions, or the empty clause).  Must be
    /// RUP-derivable from the clause database at this point of the proof.
    Add(Vec<i32>),
    /// A clause deletion (database reduction, oversize purge, subsumption).
    Delete(Vec<i32>),
}

impl ProofStep {
    /// The literals of the step, regardless of its kind.
    pub fn lits(&self) -> &[i32] {
        match self {
            ProofStep::Add(lits) | ProofStep::Delete(lits) => lits,
        }
    }

    /// Whether this step is an addition.
    pub fn is_addition(&self) -> bool {
        matches!(self, ProofStep::Add(_))
    }
}

/// An ordered DRAT proof: the additions and deletions a solver performed, in
/// the order it performed them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        Proof::default()
    }

    /// Appends a clause addition.
    pub fn add(&mut self, lits: Vec<i32>) {
        self.steps.push(ProofStep::Add(lits));
    }

    /// Appends a clause deletion.
    pub fn delete(&mut self, lits: Vec<i32>) {
        self.steps.push(ProofStep::Delete(lits));
    }

    /// The steps of the proof, in order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the proof has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The last step, if any.
    pub fn last(&self) -> Option<&ProofStep> {
        self.steps.last()
    }

    /// The step at `index`, if it exists.
    pub fn step(&self, index: usize) -> Option<&ProofStep> {
        self.steps.get(index)
    }

    /// Mutable access to a step (used by mutation tests that corrupt a proof
    /// on purpose to check that the checker rejects it).
    pub fn step_mut(&mut self, index: usize) -> Option<&mut ProofStep> {
        self.steps.get_mut(index)
    }

    /// Number of addition steps.
    pub fn num_additions(&self) -> usize {
        self.steps.iter().filter(|s| s.is_addition()).count()
    }
}

/// An error produced while parsing a DRAT proof.
#[derive(Debug)]
pub enum ParseDratError {
    /// An I/O error from the underlying reader.
    Io(io::Error),
    /// The input was not a well-formed DRAT proof.
    Malformed(String),
}

impl fmt::Display for ParseDratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDratError::Io(e) => write!(f, "i/o error while reading DRAT: {e}"),
            ParseDratError::Malformed(msg) => write!(f, "malformed DRAT input: {msg}"),
        }
    }
}

impl std::error::Error for ParseDratError {}

impl From<io::Error> for ParseDratError {
    fn from(e: io::Error) -> Self {
        ParseDratError::Io(e)
    }
}

/// Writes a proof in the text DRAT format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_text<W: Write>(mut writer: W, proof: &Proof) -> io::Result<()> {
    for step in proof.steps() {
        if let ProofStep::Delete(_) = step {
            write!(writer, "d ")?;
        }
        for lit in step.lits() {
            write!(writer, "{lit} ")?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders a proof as a text DRAT string.
pub fn to_text_string(proof: &Proof) -> String {
    let mut out = Vec::new();
    write_text(&mut out, proof).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("DRAT text output is ASCII")
}

/// Parses a text DRAT proof.  Comment lines starting with `c` and blank lines
/// are tolerated; every step must be terminated by `0` on its own line.
///
/// # Errors
///
/// Returns [`ParseDratError`] on malformed input.
pub fn parse_text(input: &str) -> Result<Proof, ParseDratError> {
    let mut proof = Proof::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (is_delete, body) = match line.strip_prefix('d') {
            // Distinguish the deletion prefix from a literal that merely
            // starts the line: `d` must be followed by whitespace.
            Some(rest) if rest.starts_with(char::is_whitespace) => (true, rest),
            _ => (false, line),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for token in body.split_whitespace() {
            let value: i32 = token
                .parse()
                .map_err(|_| ParseDratError::Malformed(format!("invalid literal `{token}`")))?;
            if value == 0 {
                terminated = true;
                break;
            }
            lits.push(value);
        }
        if !terminated {
            return Err(ParseDratError::Malformed(format!(
                "unterminated DRAT line `{line}`"
            )));
        }
        if is_delete {
            proof.delete(lits);
        } else {
            proof.add(lits);
        }
    }
    Ok(proof)
}

/// The variable-length 7-bit encoding of one mapped literal value.
fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps a DIMACS literal to its binary-DRAT unsigned code.
fn map_lit(lit: i32) -> u64 {
    if lit > 0 {
        2 * lit as u64
    } else {
        2 * (-(lit as i64)) as u64 + 1
    }
}

/// Unmaps a binary-DRAT code back to a DIMACS literal.
fn unmap_lit(code: u64) -> Result<i32, ParseDratError> {
    let var = i32::try_from(code >> 1)
        .map_err(|_| ParseDratError::Malformed(format!("literal code {code} out of range")))?;
    Ok(if code & 1 == 0 { var } else { -var })
}

/// Serializes a proof in the binary DRAT format.
pub fn to_binary(proof: &Proof) -> Vec<u8> {
    let mut out = Vec::new();
    for step in proof.steps() {
        out.push(match step {
            ProofStep::Add(_) => b'a',
            ProofStep::Delete(_) => b'd',
        });
        for &lit in step.lits() {
            push_varint(&mut out, map_lit(lit));
        }
        out.push(0);
    }
    out
}

/// Writes a proof in the binary DRAT format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_binary<W: Write>(mut writer: W, proof: &Proof) -> io::Result<()> {
    writer.write_all(&to_binary(proof))
}

/// Parses a binary DRAT proof.
///
/// # Errors
///
/// Returns [`ParseDratError`] on truncated or malformed input.
pub fn parse_binary(input: &[u8]) -> Result<Proof, ParseDratError> {
    let mut proof = Proof::new();
    let mut pos = 0usize;
    while pos < input.len() {
        let kind = input[pos];
        pos += 1;
        let is_delete = match kind {
            b'a' => false,
            b'd' => true,
            other => {
                return Err(ParseDratError::Malformed(format!(
                    "unexpected step tag byte 0x{other:02x} at offset {}",
                    pos - 1
                )))
            }
        };
        let mut lits = Vec::new();
        loop {
            // Read one varint.
            let mut value: u64 = 0;
            let mut shift = 0u32;
            loop {
                let byte = *input.get(pos).ok_or_else(|| {
                    ParseDratError::Malformed("truncated binary DRAT step".into())
                })?;
                pos += 1;
                if shift >= 63 {
                    return Err(ParseDratError::Malformed(
                        "binary DRAT literal overflows".into(),
                    ));
                }
                value |= u64::from(byte & 0x7f) << shift;
                shift += 7;
                if byte & 0x80 == 0 {
                    break;
                }
            }
            if value == 0 {
                break;
            }
            lits.push(unmap_lit(value)?);
        }
        if is_delete {
            proof.delete(lits);
        } else {
            proof.add(lits);
        }
    }
    Ok(proof)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Proof {
        let mut proof = Proof::new();
        proof.add(vec![1, -2, 3]);
        proof.delete(vec![-1, 2]);
        proof.add(vec![-3]);
        proof.add(vec![]);
        proof
    }

    #[test]
    fn text_roundtrip() {
        let proof = sample();
        let text = to_text_string(&proof);
        assert!(text.contains("d -1 2 0"));
        assert!(text.ends_with("0\n"));
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed, proof);
    }

    #[test]
    fn text_tolerates_comments_and_blank_lines() {
        let input = "c a comment\n\n1 -2 0\nd 1 -2 0\n  0  \n";
        let proof = parse_text(input).unwrap();
        assert_eq!(proof.len(), 3);
        assert_eq!(proof.steps()[0], ProofStep::Add(vec![1, -2]));
        assert_eq!(proof.steps()[1], ProofStep::Delete(vec![1, -2]));
        assert_eq!(proof.steps()[2], ProofStep::Add(vec![]));
    }

    #[test]
    fn text_rejects_malformed_lines() {
        assert!(parse_text("1 2\n").is_err(), "unterminated");
        assert!(parse_text("1 junk 0\n").is_err(), "bad literal");
    }

    #[test]
    fn binary_roundtrip() {
        let proof = sample();
        let bytes = to_binary(&proof);
        assert_eq!(bytes[0], b'a');
        let parsed = parse_binary(&bytes).unwrap();
        assert_eq!(parsed, proof);
    }

    #[test]
    fn binary_roundtrip_with_large_literals() {
        let mut proof = Proof::new();
        proof.add(vec![1_000_000, -2_000_000, 3]);
        proof.delete(vec![-1_000_000]);
        let parsed = parse_binary(&to_binary(&proof)).unwrap();
        assert_eq!(parsed, proof);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(parse_binary(&[b'x', 0]).is_err(), "bad tag");
        assert!(parse_binary(&[b'a', 0x82]).is_err(), "truncated varint");
        assert!(parse_binary(&[b'a', 2]).is_err(), "missing terminator");
    }

    #[test]
    fn step_helpers() {
        let proof = sample();
        assert_eq!(proof.num_additions(), 3);
        assert!(proof.last().unwrap().lits().is_empty());
        assert!(!proof.is_empty());
    }
}
