//! A forward RUP checker for DRAT proofs, with deletion handling and backward
//! trimming.
//!
//! The checker maintains its own clause database over DIMACS-coded `i32`
//! literals with a small two-watched-literal propagation core — written from
//! scratch, sharing nothing with the `velv_sat` solver whose proofs it audits.
//!
//! **Forward checking.**  The input clauses are installed and propagated to a
//! root fixpoint.  Each `Add` step is verified by *reverse unit propagation*:
//! the negations of the step's literals are asserted on top of the root trail
//! and unit propagation must derive a conflict; the clause is then installed
//! permanently (so later steps may use it) and any unit it contributes is
//! propagated at the root.  `Delete` steps remove the matching clause, except
//! when it is currently the reason of a root-level assignment (solvers may
//! delete clauses the checker still relies on; such deletions are counted and
//! ignored, the standard DRAT-checker behaviour).
//!
//! Every accepted addition is therefore a *logical consequence* of the input
//! clauses — this checker verifies pure RUP proofs and does not accept RAT
//! steps, which only preserve satisfiability.  A verified proof whose terminal
//! step is the empty clause certifies unsatisfiability; a terminal clause
//! `¬a₁ ∨ … ∨ ¬aₖ` certifies unsatisfiability under the assumptions
//! `a₁ … aₖ`.
//!
//! **Backward trimming.**  With [`CheckOptions::trim`] the checker records,
//! for each verified step, the clauses participating in its conflict cone,
//! then walks the proof backwards from the terminal step marking what was
//! actually used.  The report lists the used input clauses (the core) and how
//! many proof steps survive the trim.

use crate::drat::{Proof, ProofStep};
use std::collections::HashMap;

/// Options of a [`check_proof`] run.
#[derive(Clone, Debug, Default)]
pub struct CheckOptions {
    /// Backward-trim the verified proof: report which input clauses and which
    /// proof steps the terminal step(s) actually depend on.  Costs extra
    /// memory (one antecedent list per addition step).
    pub trim: bool,
    /// Step indices seeding the backward trim.  Empty means "the last
    /// addition step" (the usual single-refutation case); a multi-query
    /// session — one terminal clause per assumption-selected obligation —
    /// passes all its terminal steps so the reported core covers every
    /// refutation.  Ignored without [`CheckOptions::trim`].
    pub trim_seeds: Vec<usize>,
}

/// Result of a successful [`check_proof`] run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Number of verified addition steps.
    pub additions: usize,
    /// Number of processed deletion steps.
    pub deletions: usize,
    /// Deletions that were ignored because no matching live clause existed or
    /// the clause was the reason of a root-level assignment.
    pub ignored_deletions: usize,
    /// Whether the proof derives the empty clause (the formula is
    /// unsatisfiable outright).
    pub derived_empty: bool,
    /// Indices of the input clauses used by the trimmed proof
    /// (only with [`CheckOptions::trim`]).
    pub input_core: Option<Vec<usize>>,
    /// Number of addition steps that survive backward trimming
    /// (only with [`CheckOptions::trim`]).
    pub trimmed_additions: Option<usize>,
}

/// Why a proof was rejected.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// The addition at `step` is not RUP: asserting the negation of its
    /// literals and propagating did not produce a conflict.
    StepNotRup {
        /// Index of the offending step in the proof.
        step: usize,
        /// The clause that failed the check.
        clause: Vec<i32>,
    },
    /// A step mentions literal 0, which is not a literal.
    ZeroLiteral {
        /// Index of the offending step in the proof.
        step: usize,
    },
    /// An input clause mentions literal 0, which is not a literal.
    InputZeroLiteral {
        /// Index of the offending input clause.
        clause: usize,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::StepNotRup { step, clause } => {
                write!(f, "proof step {step} is not RUP: {clause:?}")
            }
            CheckError::ZeroLiteral { step } => {
                write!(f, "proof step {step} contains literal 0")
            }
            CheckError::InputZeroLiteral { clause } => {
                write!(f, "input clause {clause} contains literal 0")
            }
        }
    }
}

impl std::error::Error for CheckError {}

const NO_REASON: usize = usize::MAX;
/// Reason marker for literals asserted during a RUP check.
const ASSUMED: usize = usize::MAX - 1;

/// Watch-list index of a literal: `2·(|lit| − 1) + (lit < 0)`.
fn code(lit: i32) -> usize {
    let var = lit.unsigned_abs() as usize - 1;
    2 * var + usize::from(lit < 0)
}

fn var_index(lit: i32) -> usize {
    lit.unsigned_abs() as usize - 1
}

struct ClauseEntry {
    lits: Vec<i32>,
    deleted: bool,
}

/// The checker state: clause database, watches, root-persistent assignment.
struct Checker {
    clauses: Vec<ClauseEntry>,
    watches: Vec<Vec<usize>>,
    /// Per variable: 0 unassigned, 1 true, -1 false.
    assign: Vec<i8>,
    /// Per variable: clause id that propagated it, [`ASSUMED`] or [`NO_REASON`].
    reason: Vec<usize>,
    trail: Vec<i32>,
    qhead: usize,
    /// The database is contradictory at the root: every further step is a
    /// trivial consequence.
    root_conflict: bool,
    /// Clause ids participating in the root conflict, for trimming.
    root_conflict_cone: Vec<usize>,
    /// Scratch stamps for conflict-cone collection, per variable.
    seen: Vec<bool>,
    /// Lookup from sorted literals to live clause ids, for deletions.
    by_lits: HashMap<Vec<i32>, Vec<usize>>,
    trim: bool,
}

impl Checker {
    fn new(trim: bool) -> Self {
        Checker {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            qhead: 0,
            root_conflict: false,
            root_conflict_cone: Vec::new(),
            seen: Vec::new(),
            by_lits: HashMap::new(),
            trim,
        }
    }

    fn ensure_var(&mut self, lit: i32) {
        let v = var_index(lit);
        if v >= self.assign.len() {
            self.assign.resize(v + 1, 0);
            self.reason.resize(v + 1, NO_REASON);
            self.seen.resize(v + 1, false);
            self.watches.resize_with(2 * (v + 1), Vec::new);
        }
    }

    fn value(&self, lit: i32) -> i8 {
        let a = self.assign[var_index(lit)];
        if lit < 0 {
            -a
        } else {
            a
        }
    }

    fn assign(&mut self, lit: i32, reason: usize) {
        let v = var_index(lit);
        debug_assert_eq!(self.assign[v], 0);
        self.assign[v] = if lit > 0 { 1 } else { -1 };
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause id, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = -p;
            let widx = code(false_lit);
            let mut i = 0;
            let mut keep = 0;
            let mut conflict = None;
            'watchers: while i < self.watches[widx].len() {
                let cid = self.watches[widx][i];
                i += 1;
                if self.clauses[cid].deleted {
                    continue;
                }
                // Establish the invariant: the falsified watch sits at index 1.
                if self.clauses[cid].lits[0] == false_lit {
                    self.clauses[cid].lits.swap(0, 1);
                }
                let first = self.clauses[cid].lits[0];
                if self.value(first) > 0 {
                    self.watches[widx][keep] = cid;
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..self.clauses[cid].lits.len() {
                    let candidate = self.clauses[cid].lits[k];
                    if self.value(candidate) >= 0 {
                        self.clauses[cid].lits.swap(1, k);
                        self.watches[code(candidate)].push(cid);
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                self.watches[widx][keep] = cid;
                keep += 1;
                if self.value(first) < 0 {
                    while i < self.watches[widx].len() {
                        self.watches[widx][keep] = self.watches[widx][i];
                        i += 1;
                        keep += 1;
                    }
                    conflict = Some(cid);
                    break;
                }
                self.assign(first, cid);
            }
            self.watches[widx].truncate(keep);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// Collects the clause ids in the conflict cone: the conflicting clause
    /// (or root-true literal) plus, transitively, the reasons of every
    /// falsified literal involved.  Only runs when trimming is enabled.
    fn conflict_cone(&mut self, seed: ConeSeed) -> Vec<usize> {
        if !self.trim {
            return Vec::new();
        }
        let mut cone = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // variable indices to expand
        match seed {
            ConeSeed::Clause(cid) => {
                cone.push(cid);
                for k in 0..self.clauses[cid].lits.len() {
                    let v = var_index(self.clauses[cid].lits[k]);
                    if !self.seen[v] {
                        self.seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            ConeSeed::TrueLiteral(lit) => {
                let v = var_index(lit);
                self.seen[v] = true;
                stack.push(v);
            }
        }
        let mut cleanup = stack.clone();
        while let Some(v) = stack.pop() {
            let r = self.reason[v];
            if r == NO_REASON || r == ASSUMED {
                continue;
            }
            cone.push(r);
            for k in 0..self.clauses[r].lits.len() {
                let w = var_index(self.clauses[r].lits[k]);
                if !self.seen[w] {
                    self.seen[w] = true;
                    stack.push(w);
                    cleanup.push(w);
                }
            }
        }
        for v in cleanup {
            self.seen[v] = false;
        }
        cone.sort_unstable();
        cone.dedup();
        cone
    }

    /// RUP check of `lits`: asserting the negation of every literal and
    /// propagating must conflict.  Returns the conflict cone (empty when
    /// trimming is off) or `None` when the check fails.  The trail is
    /// restored to the root fixpoint afterwards.
    fn check_rup(&mut self, lits: &[i32]) -> Option<Vec<usize>> {
        if self.root_conflict {
            return Some(self.root_conflict_cone.clone());
        }
        for &lit in lits {
            self.ensure_var(lit);
        }
        let mark = self.trail.len();
        let mut outcome = None;
        for &lit in lits {
            match self.value(lit) {
                1 => {
                    // The literal is already true: ¬C contradicts the current
                    // trail immediately.
                    outcome = Some(self.conflict_cone(ConeSeed::TrueLiteral(lit)));
                    break;
                }
                -1 => {}
                _ => self.assign(-lit, ASSUMED),
            }
        }
        if outcome.is_none() {
            if let Some(conflict) = self.propagate() {
                outcome = Some(self.conflict_cone(ConeSeed::Clause(conflict)));
            }
        }
        // Undo the temporary assignments.
        for i in (mark..self.trail.len()).rev() {
            let v = var_index(self.trail[i]);
            self.assign[v] = 0;
            self.reason[v] = NO_REASON;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
        outcome
    }

    /// Installs a clause permanently: registers watches, propagates any unit
    /// it contributes at the root, and records it for deletion lookup.
    fn install(&mut self, lits: Vec<i32>) -> usize {
        for &lit in &lits {
            self.ensure_var(lit);
        }
        let cid = self.clauses.len();
        let mut sorted = lits.clone();
        sorted.sort_unstable();
        self.by_lits.entry(sorted).or_default().push(cid);
        self.clauses.push(ClauseEntry {
            lits,
            deleted: false,
        });
        if self.root_conflict {
            return cid;
        }
        let entry = &mut self.clauses[cid];
        if entry.lits.is_empty() {
            self.root_conflict = true;
            return cid;
        }
        // Move (up to) two non-false literals to the watch positions.
        let mut front = 0;
        for k in 0..entry.lits.len() {
            if front >= 2 {
                break;
            }
            let lit = entry.lits[k];
            let a = self.assign[var_index(lit)];
            let value = if lit < 0 { -a } else { a };
            if value >= 0 {
                entry.lits.swap(front, k);
                front += 1;
            }
        }
        let first = entry.lits[0];
        if entry.lits.len() >= 2 {
            let second = entry.lits[1];
            self.watches[code(first)].push(cid);
            self.watches[code(second)].push(cid);
        }
        match (front, self.value(first)) {
            (0, _) => {
                // Every literal is false at the root: the database is
                // contradictory from here on.
                self.root_conflict = true;
                self.root_conflict_cone = self.conflict_cone(ConeSeed::Clause(cid));
            }
            (1, 0) => {
                // Exactly one non-false literal, unassigned: a root unit.
                self.assign(first, cid);
                if let Some(conflict) = self.propagate() {
                    self.root_conflict = true;
                    self.root_conflict_cone = self.conflict_cone(ConeSeed::Clause(conflict));
                }
            }
            _ => {}
        }
        cid
    }

    /// Processes a deletion: the matching live clause is marked dead unless it
    /// is currently the reason of a root assignment.  Returns whether a clause
    /// was actually deleted.
    fn delete(&mut self, lits: &[i32]) -> bool {
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Candidate ids under both the deduplicated and the verbatim key
        // (installation does not deduplicate).
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(ids) = self.by_lits.get(&sorted) {
            candidates.extend_from_slice(ids);
        }
        let mut verbatim = lits.to_vec();
        verbatim.sort_unstable();
        if verbatim != sorted {
            if let Some(ids) = self.by_lits.get(&verbatim) {
                candidates.extend_from_slice(ids);
            }
        }
        for cid in candidates {
            if self.clauses[cid].deleted {
                continue;
            }
            if self.is_reason(cid) {
                // Keep reasons of root assignments alive (the solver may
                // delete clauses the checker's root propagation relied on).
                continue;
            }
            self.clauses[cid].deleted = true;
            return true;
        }
        false
    }

    fn is_reason(&self, cid: usize) -> bool {
        self.clauses[cid]
            .lits
            .iter()
            .any(|&lit| self.value(lit) > 0 && self.reason[var_index(lit)] == cid)
    }
}

enum ConeSeed {
    Clause(usize),
    TrueLiteral(i32),
}

/// Checks `proof` against the clauses of `cnf` (DIMACS-coded literal lists).
///
/// Every `Add` step must be RUP with respect to the clause database at that
/// point of the proof; verified additions join the database, deletions leave
/// it.  On success the report says whether the empty clause was derived and,
/// with [`CheckOptions::trim`], which input clauses the terminal step
/// transitively used.
///
/// # Errors
///
/// Returns [`CheckError::StepNotRup`] for the first addition that fails
/// reverse unit propagation, or [`CheckError::ZeroLiteral`] /
/// [`CheckError::InputZeroLiteral`] for a malformed step or input clause.
pub fn check_proof(
    cnf: &[Vec<i32>],
    proof: &Proof,
    options: &CheckOptions,
) -> Result<CheckReport, CheckError> {
    let _span = velv_obs::span_fields(
        "proof.check",
        &[("clauses", cnf.len().into()), ("steps", proof.len().into())],
    );
    velv_obs::global()
        .counter("velv_proof_checks_total", "Proof-checker runs started.")
        .inc();
    let mut checker = Checker::new(options.trim);
    for (index, clause) in cnf.iter().enumerate() {
        if clause.contains(&0) {
            return Err(CheckError::InputZeroLiteral { clause: index });
        }
        checker.install(clause.clone());
    }
    // Propagate the input units to the root fixpoint.
    if !checker.root_conflict {
        if let Some(conflict) = checker.propagate() {
            checker.root_conflict = true;
            checker.root_conflict_cone = checker.conflict_cone(ConeSeed::Clause(conflict));
        }
    }
    let mut additions = 0usize;
    let mut deletions = 0usize;
    let mut ignored_deletions = 0usize;
    // Per addition step: (clause id, conflict cone), for trimming.
    let mut step_records: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for (index, step) in proof.steps().iter().enumerate() {
        if step.lits().contains(&0) {
            return Err(CheckError::ZeroLiteral { step: index });
        }
        match step {
            ProofStep::Add(lits) => {
                let cone = checker
                    .check_rup(lits)
                    .ok_or_else(|| CheckError::StepNotRup {
                        step: index,
                        clause: lits.clone(),
                    })?;
                let cid = checker.install(lits.clone());
                additions += 1;
                if options.trim {
                    step_records.push((index, cid, cone));
                }
            }
            ProofStep::Delete(lits) => {
                deletions += 1;
                if !checker.delete(lits) {
                    ignored_deletions += 1;
                }
            }
        }
    }
    velv_obs::global()
        .counter(
            "velv_proof_steps_total",
            "Proof steps verified (additions and deletions).",
        )
        .add((additions + deletions) as u64);
    let (input_core, trimmed_additions) = if options.trim {
        let num_inputs = cnf.len();
        // Seed the backward pass: every requested terminal step, or the last
        // addition step by default.
        let mut needed: Vec<bool> = vec![false; checker.clauses.len()];
        let mut trimmed = 0usize;
        if options.trim_seeds.is_empty() {
            if let Some(&(_, terminal_cid, _)) = step_records.last() {
                needed[terminal_cid] = true;
            }
        } else {
            let by_step: HashMap<usize, usize> = step_records
                .iter()
                .map(|&(step, cid, _)| (step, cid))
                .collect();
            for seed in &options.trim_seeds {
                if let Some(&cid) = by_step.get(seed) {
                    needed[cid] = true;
                }
            }
        }
        for &(_, cid, ref cone) in step_records.iter().rev() {
            if !needed[cid] {
                continue;
            }
            trimmed += 1;
            for &used in cone {
                needed[used] = true;
            }
        }
        let core: Vec<usize> = (0..num_inputs).filter(|&i| needed[i]).collect();
        (Some(core), Some(trimmed))
    } else {
        (None, None)
    };
    Ok(CheckReport {
        additions,
        deletions,
        ignored_deletions,
        derived_empty: checker.root_conflict,
        input_core,
        trimmed_additions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(cnf: &[Vec<i32>], proof: &Proof) -> Result<CheckReport, CheckError> {
        check_proof(cnf, proof, &CheckOptions::default())
    }

    #[test]
    fn empty_clause_is_rup_for_contradictory_units() {
        let cnf = vec![vec![1], vec![-1]];
        let mut proof = Proof::new();
        proof.add(vec![]);
        let report = check(&cnf, &proof).unwrap();
        assert!(report.derived_empty);
    }

    #[test]
    fn resolution_chain_checks() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ ¬b) — classic UNSAT square.
        let cnf = vec![vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]];
        let mut proof = Proof::new();
        proof.add(vec![2]); // resolvent of the first two clauses: RUP
        proof.add(vec![]);
        let report = check(&cnf, &proof).unwrap();
        assert!(report.derived_empty);
        assert_eq!(report.additions, 2);
    }

    #[test]
    fn non_consequence_is_rejected() {
        let cnf = vec![vec![1, 2]];
        let mut proof = Proof::new();
        proof.add(vec![1]); // not RUP: {¬1} propagates nothing conflicting
        match check(&cnf, &proof) {
            Err(CheckError::StepNotRup { step: 0, .. }) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn premature_empty_clause_is_rejected() {
        let cnf = vec![vec![1, 2], vec![-1, 2]];
        let mut proof = Proof::new();
        proof.add(vec![]);
        assert!(check(&cnf, &proof).is_err());
    }

    #[test]
    fn deletions_are_applied_and_can_break_later_steps() {
        let cnf = vec![vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]];
        // Valid with the full database...
        let mut proof = Proof::new();
        proof.add(vec![2]);
        proof.add(vec![]);
        assert!(check(&cnf, &proof).unwrap().derived_empty);
        // ...but deleting a needed clause first invalidates the derivation.
        let mut broken = Proof::new();
        broken.delete(vec![1, 2]);
        broken.add(vec![2]);
        assert!(check(&cnf, &broken).is_err());
    }

    #[test]
    fn deletion_of_unknown_clause_is_ignored() {
        let cnf = vec![vec![1, 2], vec![-1, 2]];
        let mut proof = Proof::new();
        proof.delete(vec![7, 8]);
        proof.add(vec![2]);
        let report = check(&cnf, &proof).unwrap();
        assert_eq!(report.ignored_deletions, 1);
        assert!(!report.derived_empty);
    }

    #[test]
    fn deletion_of_a_root_reason_is_ignored() {
        // Clause [1] forces x1 at the root; deleting it must not unassign x1,
        // or the following steps would wrongly fail.
        let cnf = vec![vec![1], vec![-1, 2], vec![-2]];
        let mut proof = Proof::new();
        proof.delete(vec![1]);
        proof.add(vec![]);
        let report = check(&cnf, &proof).unwrap();
        assert!(report.derived_empty);
        assert_eq!(report.ignored_deletions, 1);
    }

    #[test]
    fn tautological_addition_is_trivially_rup() {
        let cnf = vec![vec![1, 2]];
        let mut proof = Proof::new();
        proof.add(vec![3, -3]);
        assert!(check(&cnf, &proof).is_ok());
    }

    #[test]
    fn assumption_terminal_clause_checks() {
        // x1 → x2 → x3; under assumptions {x1, ¬x3} this is UNSAT, and the
        // clause ¬x1 ∨ x3 over the negated assumptions is RUP.
        let cnf = vec![vec![-1, 2], vec![-2, 3]];
        let mut proof = Proof::new();
        proof.add(vec![-1, 3]);
        let report = check(&cnf, &proof).unwrap();
        assert!(!report.derived_empty);
        assert_eq!(report.additions, 1);
    }

    #[test]
    fn trimming_reports_the_used_input_core() {
        // Clause 3 (x4 ∨ x5) is irrelevant to the contradiction.
        let cnf = vec![vec![1], vec![-1, 2], vec![-2], vec![4, 5]];
        let mut proof = Proof::new();
        proof.add(vec![]);
        let report = check_proof(
            &cnf,
            &proof,
            &CheckOptions {
                trim: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.derived_empty);
        let core = report.input_core.unwrap();
        assert!(
            core.contains(&0) && core.contains(&1) && core.contains(&2),
            "{core:?}"
        );
        assert!(
            !core.contains(&3),
            "irrelevant clause not in core: {core:?}"
        );
        assert_eq!(report.trimmed_additions, Some(1));
    }

    #[test]
    fn trimming_drops_unused_steps() {
        let cnf = vec![vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]];
        let mut proof = Proof::new();
        proof.add(vec![2]); // needed
        proof.add(vec![2, 1]); // subsumed, never used
        proof.add(vec![]);
        let report = check_proof(
            &cnf,
            &proof,
            &CheckOptions {
                trim: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.additions, 3);
        assert_eq!(report.trimmed_additions, Some(2));
    }

    #[test]
    fn trim_seeds_cover_multiple_terminals() {
        // Two independent "obligations" over disjoint clause sets: terminal
        // clauses ¬1 (from clauses 0–1) and ¬4 (from clauses 2–3).  Seeding
        // both terminals must pull both halves into the core; the default
        // (last-step) seed only needs the second half.
        let cnf = vec![vec![-1, 2], vec![-2], vec![-4, 5], vec![-5]];
        let mut proof = Proof::new();
        proof.add(vec![-1]);
        proof.add(vec![-4]);
        let both = check_proof(
            &cnf,
            &proof,
            &CheckOptions {
                trim: true,
                trim_seeds: vec![0, 1],
            },
        )
        .unwrap();
        assert_eq!(both.input_core.unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(both.trimmed_additions, Some(2));
        let last_only = check_proof(
            &cnf,
            &proof,
            &CheckOptions {
                trim: true,
                trim_seeds: Vec::new(),
            },
        )
        .unwrap();
        assert_eq!(last_only.input_core.unwrap(), vec![2, 3]);
        assert_eq!(last_only.trimmed_additions, Some(1));
    }

    #[test]
    fn zero_literal_in_an_input_clause_is_rejected() {
        let cnf = vec![vec![1], vec![2, 0]];
        let proof = Proof::new();
        assert!(matches!(
            check(&cnf, &proof),
            Err(CheckError::InputZeroLiteral { clause: 1 })
        ));
    }

    #[test]
    fn zero_literal_is_rejected() {
        let cnf = vec![vec![1]];
        let mut proof = Proof::new();
        proof.add(vec![0]);
        assert!(matches!(
            check(&cnf, &proof),
            Err(CheckError::ZeroLiteral { step: 0 })
        ));
    }
}
