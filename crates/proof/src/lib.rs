//! Certification of SAT verdicts: DRAT proofs and an independent checker.
//!
//! A CDCL refutation is only as trustworthy as the engine that produced it.
//! This crate closes that gap for the UNSAT pole of the verification flow:
//! the solver emits every learned clause and every clause deletion as a
//! [DRAT](https://satcompetition.github.io/2024/certificates.html) proof
//! ([`Proof`], with text and binary serializations in [`drat`]), and the
//! [`checker`] replays the proof against the original CNF with *reverse unit
//! propagation* (RUP): each added clause must yield a conflict by unit
//! propagation when its negation is asserted.
//!
//! The checker is deliberately independent of the `velv_sat` solver crate: it
//! has its own tiny watched-literal propagation core, works on plain
//! DIMACS-coded `i32` literals, and shares no code with the engines whose
//! answers it audits.  A bug in the solver's propagation, conflict analysis or
//! clause management therefore cannot silently re-validate its own faulty
//! proofs.
//!
//! Besides forward checking, the checker can backward-*trim* a verified proof:
//! starting from the terminal step it marks the clauses actually used in each
//! RUP derivation, reporting the subset of the input clauses (the used-clause
//! core) and the number of proof steps that matter.
//!
//! # Example
//!
//! ```
//! use velv_proof::{check_proof, CheckOptions, Proof};
//!
//! // x ∧ (¬x ∨ y) ∧ ¬y is unsatisfiable; the empty clause is RUP.
//! let cnf = vec![vec![1], vec![-1, 2], vec![-2]];
//! let mut proof = Proof::new();
//! proof.add(vec![]);
//! let report = check_proof(&cnf, &proof, &CheckOptions::default()).unwrap();
//! assert!(report.derived_empty);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod drat;

pub use checker::{check_proof, CheckError, CheckOptions, CheckReport};
pub use drat::{Proof, ProofStep};
