//! Criterion benchmark: the SAT back ends on a fixed correctness CNF
//! (satisfiable buggy instance and unsatisfiable correct instance).

use velv_bench::microbench::Criterion;
use velv_bench::{criterion_group, criterion_main};
use velv_core::{TranslationOptions, Verifier};
use velv_models::dlx::{bug_catalog, Dlx, DlxConfig, DlxSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::dpll::DpllSolver;
use velv_sat::local_search::WalkSatSolver;
use velv_sat::{Budget, Solver};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_backends");
    group.sample_size(10);

    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::base());
    let spec = DlxSpecification::new(config);
    let correct = verifier.translate(&Dlx::correct(config), &spec);
    let bug = bug_catalog(config)[0];
    let buggy = verifier.translate(&Dlx::buggy(config, bug), &spec);

    group.bench_function("chaff_unsat_dlx1", |b| {
        b.iter(|| CdclSolver::chaff().solve(&correct.cnf))
    });
    group.bench_function("berkmin_unsat_dlx1", |b| {
        b.iter(|| CdclSolver::berkmin().solve(&correct.cnf))
    });
    group.bench_function("chaff_sat_dlx1_buggy", |b| {
        b.iter(|| CdclSolver::chaff().solve(&buggy.cnf))
    });
    group.bench_function("dpll_budgeted_dlx1_buggy", |b| {
        b.iter(|| DpllSolver::new().solve_with_budget(&buggy.cnf, Budget::step_limit(20_000)))
    });
    group.bench_function("walksat_budgeted_dlx1_buggy", |b| {
        b.iter(|| WalkSatSolver::new().solve_with_budget(&buggy.cnf, Budget::step_limit(20_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
