//! Criterion benchmark: the sparse transitivity triangulation and the full
//! translation of the transitivity-requiring out-of-order designs.

use std::collections::BTreeSet;
use velv_bench::microbench::Criterion;
use velv_bench::{criterion_group, criterion_main};
use velv_core::encode::transitivity::triangulate;
use velv_core::{TranslationOptions, Verifier};
use velv_eufm::Context;
use velv_models::ooo::{Ooo, OooSpecification};

fn bench_transitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitivity");
    group.sample_size(10);

    // A ring plus chords: a graph with many cycles.
    let mut ctx = Context::new();
    let symbols: Vec<_> = (0..64).map(|i| ctx.symbol(&format!("g{i}"))).collect();
    let mut edges = BTreeSet::new();
    for i in 0..64usize {
        let a = symbols[i];
        let b = symbols[(i + 1) % 64];
        edges.insert(if a <= b { (a, b) } else { (b, a) });
        let c2 = symbols[(i + 7) % 64];
        edges.insert(if a <= c2 { (a, c2) } else { (c2, a) });
    }
    group.bench_function("triangulate_ring64", |b| b.iter(|| triangulate(&edges)));

    group.bench_function("translate_ooo3_eij", |b| {
        let implementation = Ooo::new(3);
        let spec = OooSpecification::new();
        let verifier = Verifier::new(TranslationOptions::base());
        b.iter(|| verifier.translate(&implementation, &spec));
    });
    group.finish();
}

criterion_group!(benches, bench_transitivity);
criterion_main!(benches);
