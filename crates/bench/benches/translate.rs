//! Criterion benchmark: the EUFM → CNF translation pipeline per design and
//! encoding (the front-end cost of every experiment table).

use velv_bench::microbench::Criterion;
use velv_bench::{criterion_group, criterion_main};
use velv_core::{TranslationOptions, Verifier};
use velv_models::dlx::{Dlx, DlxConfig, DlxSpecification};
use velv_models::vliw::{Vliw, VliwConfig, VliwSpecification};

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate");
    group.sample_size(10);

    group.bench_function("dlx1_eij", |b| {
        let config = DlxConfig::single_issue();
        let implementation = Dlx::correct(config);
        let spec = DlxSpecification::new(config);
        let verifier = Verifier::new(TranslationOptions::base());
        b.iter(|| verifier.translate(&implementation, &spec));
    });
    group.bench_function("dlx2_full_eij", |b| {
        let config = DlxConfig::dual_issue_full();
        let implementation = Dlx::correct(config);
        let spec = DlxSpecification::new(config);
        let verifier = Verifier::new(TranslationOptions::base());
        b.iter(|| verifier.translate(&implementation, &spec));
    });
    group.bench_function("dlx1_small_domain", |b| {
        let config = DlxConfig::single_issue();
        let implementation = Dlx::correct(config);
        let spec = DlxSpecification::new(config);
        let verifier = Verifier::new(TranslationOptions::base().with_small_domain());
        b.iter(|| verifier.translate(&implementation, &spec));
    });
    group.bench_function("vliw_reduced_eij", |b| {
        let config = VliwConfig::with_slots(3);
        let implementation = Vliw::correct(config);
        let spec = VliwSpecification::new(config);
        let verifier = Verifier::new(TranslationOptions::base());
        b.iter(|| verifier.translate(&implementation, &spec));
    });
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
