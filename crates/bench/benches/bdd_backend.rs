//! Criterion benchmark: BDD construction for the encoded correctness formula
//! (the decision-diagram back end of Table 1 / Fig. 7).

use velv_bench::microbench::Criterion;
use velv_bench::{criterion_group, criterion_main};
use velv_core::{TranslationOptions, Verifier};
use velv_models::dlx::{bug_catalog, Dlx, DlxConfig, DlxSpecification};

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_backend");
    group.sample_size(10);

    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::base());
    let spec = DlxSpecification::new(config);
    let correct = verifier.translate(&Dlx::correct(config), &spec);
    let bug = bug_catalog(config)[0];
    let buggy = verifier.translate(&Dlx::buggy(config, bug), &spec);

    group.bench_function("bdd_correct_dlx1", |b| {
        b.iter(|| verifier.check_with_bdds(&correct, 2_000_000))
    });
    group.bench_function("bdd_buggy_dlx1", |b| {
        b.iter(|| verifier.check_with_bdds(&buggy, 2_000_000))
    });
    group.finish();
}

criterion_group!(benches, bench_bdd);
criterion_main!(benches);
