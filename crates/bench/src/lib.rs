//! Shared infrastructure for the experiment harness that reproduces the
//! tables and figures of Velev & Bryant (DAC 2001 / JSC 2003).
//!
//! Each binary in `src/bin/` regenerates one table or figure: it builds the
//! relevant benchmark designs, runs the verification flow with the appropriate
//! options and back ends, and prints the measured values next to the values
//! reported in the paper together with a qualitative PASS/CHECK verdict on the
//! shape (who wins, by roughly what factor).
//!
//! Absolute times are not comparable to the paper's 336 MHz Sun4: the designs
//! here are scaled down and the machine is different.  The suite sizes default
//! to a scaled-down number of buggy variants so that every binary finishes in
//! seconds; set `VELV_FULL=1` to run the full 100-variant suites.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod microbench;

use std::time::{Duration, Instant};
use velv_core::{TranslationOptions, Verdict, Verifier};
use velv_hdl::Processor;
use velv_sat::{Budget, Solver};

/// Number of buggy variants to run per suite (scaled down unless `VELV_FULL=1`).
pub fn suite_size(full_size: usize) -> usize {
    if std::env::var("VELV_FULL").is_ok_and(|v| v == "1") {
        full_size
    } else {
        full_size.min(12)
    }
}

/// Result of one verification run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Name of the design / obligation.
    pub name: String,
    /// Outcome.
    pub verdict_correct: bool,
    /// Whether a counterexample was produced.
    pub verdict_buggy: bool,
    /// Wall-clock time.
    pub time: Duration,
}

/// Verifies one design with a SAT solver and measures the wall-clock time.
pub fn timed_verify(
    verifier: &Verifier,
    implementation: &dyn Processor,
    specification: &dyn Processor,
    solver: &mut dyn Solver,
    budget: Budget,
) -> RunResult {
    let start = Instant::now();
    let verdict = verifier.verify_with_budget(implementation, specification, solver, budget);
    RunResult {
        name: implementation.name().to_owned(),
        verdict_correct: verdict.is_correct(),
        verdict_buggy: verdict.is_buggy(),
        time: start.elapsed(),
    }
}

/// Verifies one design with a specific options set, returning the verdict and time.
pub fn timed_verify_with_options(
    options: TranslationOptions,
    implementation: &dyn Processor,
    specification: &dyn Processor,
    solver: &mut dyn Solver,
    budget: Budget,
) -> (Verdict, Duration) {
    let verifier = Verifier::new(options);
    let start = Instant::now();
    let verdict = verifier.verify_with_budget(implementation, specification, solver, budget);
    (verdict, start.elapsed())
}

/// Pretty-prints a header for an experiment table.
pub fn print_header(title: &str, note: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{note}");
    println!("================================================================");
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Summary statistics over a set of per-benchmark times.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeSummary {
    /// Minimum time in seconds.
    pub min: f64,
    /// Maximum time in seconds.
    pub max: f64,
    /// Mean time in seconds.
    pub mean: f64,
}

/// Computes min/max/mean of a set of durations.
pub fn summarize(times: &[Duration]) -> TimeSummary {
    if times.is_empty() {
        return TimeSummary::default();
    }
    let secs: Vec<f64> = times.iter().map(|d| d.as_secs_f64()).collect();
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = secs.iter().cloned().fold(0.0, f64::max);
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    TimeSummary { min, max, mean }
}

/// Prints a PASS/CHECK verdict on a qualitative expectation.
pub fn shape_check(description: &str, holds: bool) {
    let status = if holds { "PASS " } else { "CHECK" };
    println!("[{status}] {description}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_times() {
        let times = [Duration::from_millis(100), Duration::from_millis(300)];
        let s = summarize(&times);
        assert!((s.min - 0.1).abs() < 1e-9);
        assert!((s.max - 0.3).abs() < 1e-9);
        assert!((s.mean - 0.2).abs() < 1e-9);
        assert_eq!(summarize(&[]).max, 0.0);
    }

    #[test]
    fn suite_size_is_scaled_without_env() {
        // The environment variable is not set in tests, so suites are capped.
        assert!(suite_size(100) <= 100);
        assert!(suite_size(5) <= 5);
    }
}
