//! A minimal recursive-descent JSON parser for the committed `BENCH_*.json`
//! files — enough of RFC 8259 to read what the harness itself writes
//! (objects, arrays, strings with the common escapes, numbers, booleans,
//! null), with no external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included) as `f64` — the harness never writes
    /// integers beyond 2^53.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, keys sorted (BENCH files never rely on key order).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` of an object, if this is an object and has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is not.
///
/// # Errors
///
/// Returns the first syntax error with its byte offset.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs never appear in harness output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_shape() {
        let doc = r#"{
  "harness": "satbench",
  "smoke": false,
  "runs": [
    {"preset": "chaff", "instance": "php-7-6", "time_s": 0.123456,
     "conflicts": 1000, "conflicts_per_sec": 8100.5,
     "metrics": {"engine_conflicts_total{preset=\"chaff\"}": 1000}}
  ]
}"#;
        let json = parse(doc).expect("parses");
        assert_eq!(json.get("harness").unwrap().as_str(), Some("satbench"));
        assert_eq!(json.get("smoke"), Some(&Json::Bool(false)));
        let runs = json.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("conflicts").unwrap().as_f64(), Some(1000.0));
        let metrics = run.get("metrics").unwrap().as_object().unwrap();
        assert_eq!(
            metrics["engine_conflicts_total{preset=\"chaff\"}"],
            Json::Number(1000.0)
        );
    }

    #[test]
    fn escapes_and_numbers_round_trip() {
        let json = parse(r#"["a\"b\\c\nd", -1.5e3, 0.25, null, true]"#).unwrap();
        let items = json.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("a\"b\\c\nd"));
        assert_eq!(items[1].as_f64(), Some(-1500.0));
        assert_eq!(items[2].as_f64(), Some(0.25));
        assert_eq!(items[3], Json::Null);
        assert_eq!(items[4], Json::Bool(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
