//! A minimal, dependency-free stand-in for the slice of the Criterion API the
//! benchmark files use (`benchmark_group` / `sample_size` / `bench_function` /
//! `iter`), so `cargo bench` works in offline environments.
//!
//! Each `bench_function` runs one warm-up call followed by `sample_size`
//! timed calls and prints min/mean/max wall-clock times.  This is a
//! measurement harness, not a statistics engine: for the qualitative "who
//! wins, by roughly what factor" comparisons of the paper's tables that is
//! all the experiments need.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function (mirrors
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("== {name}");
        BenchmarkGroup { sample_size: 10 }
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up call, then `sample_size` timed calls.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        let times = &bencher.times;
        if times.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{id:<40} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} samples)",
            min,
            mean,
            max,
            times.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then one timed call per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let _ = black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            let _ = black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// Builds the function that `criterion_main!` calls (mirrors Criterion's
/// macro of the same name).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors Criterion's macro of the
/// same name).
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            $name();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut group = Criterion::default().benchmark_group("test");
        group
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
