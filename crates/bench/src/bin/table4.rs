//! Table 4: encoding statistics (primary Boolean variables, CNF variables,
//! CNF clauses) for the eij and small-domain encodings on the correct
//! out-of-order superscalar designs of width 2..6.

use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_models::ooo::{Ooo, OooSpecification};

fn main() {
    print_header(
        "Table 4 — encoding statistics for out-of-order superscalar designs",
        "paper: eij uses more primary Boolean variables but fewer CNF variables/clauses than small-domain; both grow steeply with issue width",
    );
    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "width", "eij prim", "cnf vars", "clauses", "sd prim", "cnf vars", "clauses"
    );
    let mut shape_primary = true;
    for width in 2..=6 {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        let eij = Verifier::new(TranslationOptions::base()).translate(&implementation, &spec);
        let sd = Verifier::new(TranslationOptions::base().with_small_domain())
            .translate(&implementation, &spec);
        println!(
            "{:>5} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}",
            width,
            eij.stats.primary_bool_vars,
            eij.stats.cnf_vars,
            eij.stats.cnf_clauses,
            sd.stats.primary_bool_vars,
            sd.stats.cnf_vars,
            sd.stats.cnf_clauses
        );
        if eij.stats.primary_bool_vars < sd.stats.primary_bool_vars {
            shape_primary = false;
        }
    }
    shape_check(
        "the eij encoding uses at least as many primary Boolean variables as small-domain",
        shape_primary,
    );
}
