//! Table 3: eij vs small-domain encodings on the buggy VLIW suite
//! (Chaff and BerkMin, single run of the tool flow).

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check, suite_size, summarize};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{bug_catalog, Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 3 — eij vs small-domain on buggy 9VLIW-MC-BP",
        "paper (1 run): Chaff eij max 180.4 avg 32.5 | small-domain max 594.0 avg 100.4; BerkMin eij 151.4/43.6 | small-domain 245.0/85.0",
    );
    let config = VliwConfig::base();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let spec = VliwSpecification::new(config);
    let budget = Budget::time_limit(Duration::from_secs(30));

    let mut results = Vec::new();
    for (solver_name, make_solver) in [
        ("Chaff", CdclSolver::chaff as fn() -> CdclSolver),
        ("BerkMin", CdclSolver::berkmin as fn() -> CdclSolver),
    ] {
        for (enc_name, options) in [
            ("eij", TranslationOptions::base()),
            (
                "small-domain",
                TranslationOptions::base().with_small_domain(),
            ),
        ] {
            let times: Vec<Duration> = suite
                .iter()
                .map(|&bug| {
                    let verifier = Verifier::new(options.clone());
                    let start = Instant::now();
                    let mut solver = make_solver();
                    let _ = verifier.verify_with_budget(
                        &Vliw::buggy(config, bug),
                        &spec,
                        &mut solver,
                        budget.clone(),
                    );
                    start.elapsed()
                })
                .collect();
            let summary = summarize(&times);
            println!(
                "{:<10} {:<14} max {:>8.3} s   avg {:>8.3} s",
                solver_name, enc_name, summary.max, summary.mean
            );
            results.push((solver_name, enc_name, summary));
        }
    }
    let chaff_eij = results
        .iter()
        .find(|r| r.0 == "Chaff" && r.1 == "eij")
        .unwrap()
        .2;
    let chaff_sd = results
        .iter()
        .find(|r| r.0 == "Chaff" && r.1 == "small-domain")
        .unwrap()
        .2;
    shape_check(
        "the eij encoding detects bugs at least as fast as the small-domain encoding (average, Chaff)",
        chaff_eij.mean <= chaff_sd.mean * 1.1,
    );
}
