//! `satbench` — reproducible CDCL performance harness.
//!
//! Runs a fixed, fully seeded suite against the four CDCL presets and writes
//! the measured throughput to `BENCH_cdcl.json`, seeding the repository's
//! performance trajectory: every engine change can be compared against the
//! committed numbers of the previous one.
//!
//! The suite covers the three formula classes the engine sees in practice:
//!
//! * **pigeonhole** PHP(n+1, n) — dense, UNSAT, resolution-hard; exercises
//!   conflict analysis and clause learning.
//! * **random 3-SAT** at the phase transition (m/n ≈ 4.26, seeded) —
//!   exercises propagation, restarts and the decision heuristic.
//! * **DLX correctness formulas** from `velv_core` — the paper's actual
//!   workload (Table 1/2 class): buggy designs (SAT) and the correct design
//!   (UNSAT) of the single- and dual-issue DLX.
//!
//! Three subsystem comparisons ride along:
//!
//! * **decomposition**: the weak criteria of a design checked one solver per
//!   obligation (monolithic) vs. one persistent incremental solver shared by
//!   all obligations under per-obligation assumptions;
//! * **transitivity**: eager triangulated side constraints vs. lazy
//!   refinement with the incremental solver, on the transitivity-heavy
//!   out-of-order designs;
//! * **certify**: the cost of certified verdicts — plain solving vs. solving
//!   with DRAT proof logging, plus the independent checker's replay time, on
//!   the DLX correct-design proofs.
//!
//! A fourth subsystem benchmark, **serve**, measures the serving layer of
//! `velv_serve`: a bug-catalog sweep is submitted twice to an in-process
//! verification service — the cold sweep pays translation + solving through
//! one shared batch session, the warm sweep returns every verdict from the
//! fingerprint-keyed cache — and a concurrent re-sweep hammers the cache from
//! several client threads.  Throughput (jobs/sec) and the cache-hit ratio are
//! recorded separately in `BENCH_serve.json`.
//!
//! A fifth benchmark, **persist**, measures the durability layer: raw
//! `velv_store` append throughput under each fsync policy (`always`,
//! `every-8`, `os`), the recovery-scan rate of a reopened log, and a full
//! service warm boot — restart on a populated store directory, replay the
//! log into the cache, and answer the whole catalog without re-solving.  Its
//! rows land in the `persist` array of `BENCH_serve.json`.
//!
//! Usage: `satbench [--smoke] [--out PATH] [--serve-out PATH]
//! [--only cdcl|serve|persist] [--trace PATH] [--profile DIR]`.
//! `--smoke` shrinks every instance so the whole run takes well under a
//! second — CI uses it to keep the harness from rotting without paying for a
//! real measurement.  `--only serve` regenerates `BENCH_serve.json` without
//! re-measuring the solver suites.  `--trace` records every span and event of
//! the run to a JSONL file and self-checks the capture with the trace checker
//! before exiting.  `--profile DIR` writes one `SolveProfile` JSONL artifact
//! per (preset, instance) run of the CDCL suite to `DIR` — decimated
//! time-series, restart markers and span-derived phase trees — and aborts if
//! any artifact fails to reparse.
//!
//! Each preset-suite row of `BENCH_cdcl.json` also carries a `metrics`
//! object: the per-run delta of the global `velv_obs` metric registry, so
//! the committed numbers can be cross-checked against the instrumentation.

use std::time::{Duration, Instant};
use velv_core::{TranslationOptions, Verdict, Verifier};

/// The harness counts its own heap: every committed row carries the peak
/// heap bytes of its measured region and the per-scope allocation deltas, so
/// memory regressions are gated alongside throughput regressions.
#[global_allocator]
static ALLOC: velv_obs::CountingAlloc = velv_obs::CountingAlloc;
use velv_models::dlx::{bug_catalog, Dlx, DlxConfig, DlxSpecification};
use velv_models::ooo::{Ooo, OooSpecification};
use velv_sat::cdcl::{CdclConfig, CdclSolver};
use velv_sat::generators::{pigeonhole, random_3sat};
use velv_sat::{Budget, CnfFormula, SatResult, Solver};

/// One named benchmark instance.
struct Instance {
    name: String,
    cnf: CnfFormula,
}

/// Per-solve profiling context of a `--profile DIR` run: the artifact
/// directory and the installed process [`velv_obs::ProfileSink`].
struct Profiler {
    dir: std::path::PathBuf,
    sink: std::sync::Arc<velv_obs::ProfileSink>,
}

impl Profiler {
    /// Builds, writes and self-reparses the `SolveProfile` of one measured
    /// run.  A profile that does not round-trip is a harness bug, so it
    /// aborts the whole benchmark (CI runs `--smoke --profile` exactly for
    /// this check).
    fn write(
        &self,
        preset: &str,
        instance: &str,
        result: &str,
        time_s: f64,
        stats: &velv_sat::SolverStats,
        recorder: &velv_obs::SharedSolveRecorder,
    ) -> velv_obs::SolveProfile {
        // Drain this thread's trace buffer so the sink has seen every span
        // of the run before the tree is extracted.
        velv_obs::flush();
        let phases = self.sink.take_roots();
        let profile = {
            let rec = recorder.lock().expect("bench recorder lock");
            velv_obs::SolveProfile {
                instance: instance.to_owned(),
                solver: preset.to_owned(),
                result: result.to_owned(),
                wall_us: (time_s * 1e6) as u64,
                stride: rec.stride(),
                offered: rec.offered(),
                conflicts: stats.conflicts,
                propagations: stats.propagations,
                decisions: stats.decisions,
                restarts: stats.restarts,
                samples: rec.series(),
                markers: rec.markers().to_vec(),
                phases,
            }
        };
        let text = profile.to_jsonl();
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                        c
                    } else {
                        '-'
                    }
                })
                .collect()
        };
        let path = self.dir.join(format!(
            "{}--{}.profile.jsonl",
            sanitize(preset),
            sanitize(instance)
        ));
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("satbench: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        let reread = std::fs::read_to_string(&path).unwrap_or_default();
        match velv_obs::SolveProfile::parse(&reread) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!(
                    "satbench: profile artifact {} does not reparse: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
}

/// Measured outcome of one (preset, instance) run.
struct Measurement {
    preset: &'static str,
    instance: String,
    result: &'static str,
    time_s: f64,
    conflicts: u64,
    propagations: u64,
    decisions: u64,
    conflicts_per_sec: f64,
    propagations_per_sec: f64,
    /// Peak heap bytes of the measured region (the counting allocator's
    /// high-water mark after a [`HeapMeter::start`] reset).
    peak_heap_bytes: u64,
    /// Per-run delta of the global metric registry (counters that grew).
    metrics: Vec<(String, u64)>,
}

/// Brackets one measured region with the counting allocator: `start` resets
/// the heap high-water marks, `finish` reads the region's peak and the
/// per-scope allocation growth.  The peak is never zero — `reset_peaks`
/// clamps the mark to the bytes already live, and the harness itself is on
/// the counted allocator.
struct HeapMeter {
    before: velv_obs::MemSnapshot,
}

impl HeapMeter {
    fn start() -> Self {
        velv_obs::mem::reset_peaks();
        HeapMeter {
            before: velv_obs::mem::snapshot(),
        }
    }

    /// Returns `(peak heap bytes, per-scope allocation deltas)`; the deltas
    /// ride in the row's `metrics` object so `benchdiff` ranks scope-level
    /// memory movement exactly like any moved counter.
    fn finish(self) -> (u64, Vec<(String, u64)>) {
        let after = velv_obs::mem::snapshot();
        let peak = after.peak_bytes.max(0) as u64;
        let scopes = self
            .before
            .scopes
            .iter()
            .zip(after.scopes.iter())
            .filter_map(|(before, after)| {
                let grew = after.total_bytes.saturating_sub(before.total_bytes);
                (grew > 0).then(|| (format!("mem_scope_alloc_bytes_{}", after.name), grew))
            })
            .collect();
        (peak, scopes)
    }
}

/// The per-run metric attribution of a benchmark row, as `(flat key, value)`
/// pairs.  Counters (and histogram count/sum fields) are cumulative, so they
/// are attributed as *growth* over the `before` snapshot; gauges are levels,
/// not counters — differencing them against the previous run's final reading
/// produced garbage (a solve whose learnt DB ended *smaller* than the last
/// run's simply vanished from the row), so a gauge is reported as its
/// absolute end-of-run reading whenever the run moved it.
fn registry_delta(before: &velv_obs::Snapshot, after: &velv_obs::Snapshot) -> Vec<(String, u64)> {
    use velv_obs::MetricValue;
    let old: std::collections::HashMap<String, &MetricValue> = before
        .metrics
        .iter()
        .map(|m| (m.full_name().replace(' ', "_"), &m.value))
        .collect();
    let mut deltas = Vec::new();
    for sample in &after.metrics {
        let key = sample.full_name().replace(' ', "_");
        match &sample.value {
            MetricValue::Counter(now) => {
                let prev = match old.get(&key) {
                    Some(MetricValue::Counter(v)) => *v,
                    _ => 0,
                };
                let grew = now.saturating_sub(prev);
                if grew > 0 {
                    deltas.push((key, grew));
                }
            }
            MetricValue::Gauge(now) => {
                let prev = match old.get(&key) {
                    Some(MetricValue::Gauge(v)) => Some(*v),
                    _ => None,
                };
                if prev != Some(*now) {
                    if let Ok(level) = u64::try_from(*now) {
                        deltas.push((key, level));
                    }
                }
            }
            MetricValue::Histogram(h) => {
                let (prev_count, prev_sum) = match old.get(&key) {
                    Some(MetricValue::Histogram(p)) => (p.count, p.sum),
                    _ => (0, 0),
                };
                let count = h.count.saturating_sub(prev_count);
                let sum = h.sum.saturating_sub(prev_sum);
                if count > 0 {
                    // Same key shape as `Snapshot::flat_fields`: the suffix
                    // goes on the name, before the labels.
                    let suffixed = |suffix: &str| {
                        let mut renamed = sample.clone();
                        renamed.name = format!("{}{suffix}", sample.name);
                        renamed.full_name().replace(' ', "_")
                    };
                    deltas.push((suffixed("_count"), count));
                    deltas.push((suffixed("_sum"), sum));
                }
            }
        }
    }
    deltas
}

/// Seeded random 3-SAT at clause/variable ratio 4.26 (the phase transition).
fn phase_transition_3sat(num_vars: usize, seed: u64) -> CnfFormula {
    let num_clauses = (num_vars as f64 * 4.26).round() as usize;
    random_3sat(num_vars, num_clauses, seed)
}

fn suite(smoke: bool) -> Vec<Instance> {
    let mut instances = Vec::new();
    let holes: &[usize] = if smoke { &[4] } else { &[6, 7] };
    for &h in holes {
        instances.push(Instance {
            name: format!("php-{}-{}", h + 1, h),
            cnf: pigeonhole(h),
        });
    }
    let (n, seeds): (usize, &[u64]) = if smoke { (25, &[1]) } else { (125, &[1, 2, 3]) };
    for &seed in seeds {
        instances.push(Instance {
            name: format!("r3sat-n{n}-s{seed}"),
            cnf: phase_transition_3sat(n, seed),
        });
    }
    // DLX correctness formulas (the paper's workload).
    let verifier = Verifier::new(TranslationOptions::default());
    if smoke {
        let config = DlxConfig::single_issue();
        let spec = DlxSpecification::new(config);
        let translation = verifier.translate(&Dlx::correct(config), &spec);
        instances.push(Instance {
            name: "dlx1-correct".to_owned(),
            cnf: translation.cnf,
        });
    } else {
        for config in [DlxConfig::single_issue(), DlxConfig::dual_issue_full()] {
            let spec = DlxSpecification::new(config);
            let translation = verifier.translate(&Dlx::correct(config), &spec);
            instances.push(Instance {
                name: format!("{}-correct", config.name()),
                cnf: translation.cnf,
            });
            for bug in bug_catalog(config).into_iter().take(2) {
                let translation = verifier.translate(&Dlx::buggy(config, bug), &spec);
                instances.push(Instance {
                    name: format!("{}-{bug:?}", config.name()),
                    cnf: translation.cnf,
                });
            }
        }
    }
    instances
}

fn run(instances: &[Instance], smoke: bool, profiler: Option<&Profiler>) -> Vec<Measurement> {
    let budget = if smoke {
        Budget::step_limit(20_000)
    } else {
        Budget {
            max_conflicts: Some(2_000_000),
            max_time: Some(Duration::from_secs(60)),
            ..Budget::default()
        }
    };
    type Preset = (&'static str, fn() -> CdclSolver);
    let presets: [Preset; 4] = [
        ("chaff", CdclSolver::chaff),
        ("berkmin", CdclSolver::berkmin),
        ("grasp", CdclSolver::grasp),
        ("sato", CdclSolver::sato),
    ];
    let mut measurements = Vec::new();
    for instance in instances {
        for (name, build) in presets {
            let mut solver = build();
            let recorder = profiler.map(|_| velv_obs::shared_recorder());
            let _recorder_guard = recorder.clone().map(velv_sat::install_solve_recorder);
            let before = velv_obs::global().snapshot();
            let meter = HeapMeter::start();
            let bench_span = profiler.map(|_| velv_obs::span("bench.solve"));
            let start = Instant::now();
            let result = solver.solve_with_budget(&instance.cnf, budget.clone());
            let time = start.elapsed().as_secs_f64();
            drop(bench_span);
            let (peak_heap_bytes, scope_deltas) = meter.finish();
            let mut metrics = registry_delta(&before, &velv_obs::global().snapshot());
            metrics.extend(scope_deltas);
            let stats = solver.stats();
            let result = match result {
                SatResult::Sat(_) => "sat",
                SatResult::Unsat => "unsat",
                SatResult::Unknown(_) => "unknown",
            };
            if let (Some(profiler), Some(recorder)) = (profiler, &recorder) {
                let profile = profiler.write(name, &instance.name, result, time, &stats, recorder);
                let phase = profile
                    .phases
                    .first()
                    .map(|root| format!("{} {:.0}ms", root.name, root.total_us as f64 / 1e3))
                    .unwrap_or_else(|| "no spans".to_owned());
                println!(
                    "  profile {}/{}: {} samples (stride {}), {phase}",
                    name,
                    instance.name,
                    profile.samples.len(),
                    profile.stride
                );
            }
            measurements.push(Measurement {
                preset: name,
                instance: instance.name.clone(),
                result,
                time_s: time,
                conflicts: stats.conflicts,
                propagations: stats.propagations,
                decisions: stats.decisions,
                conflicts_per_sec: stats.conflicts as f64 / time.max(1e-9),
                propagations_per_sec: stats.propagations as f64 / time.max(1e-9),
                peak_heap_bytes,
                metrics,
            });
        }
    }
    measurements
}

fn verdict_label(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Correct => "unsat",
        Verdict::Buggy(_) => "sat",
        Verdict::Unknown(_) => "unknown",
    }
}

/// Decomposition benchmark: every obligation translated and checked with its
/// own fresh solver (the pre-incremental flow) vs. one shared definitional
/// CNF checked by one persistent incremental solver under per-obligation
/// assumptions.  Measured end to end — translation plus solving — because
/// that is the trade the shared path changes: one pipeline pass with
/// hash-consed sharing and one solver instance against `N` full pipeline
/// passes and `N` cold solvers.
fn run_decomposition(measurements: &mut Vec<Measurement>, smoke: bool) {
    let configs: &[DlxConfig] = if smoke {
        &[DlxConfig::single_issue()]
    } else {
        &[DlxConfig::single_issue(), DlxConfig::dual_issue()]
    };
    let verifier = Verifier::new(TranslationOptions::default());
    let max_obligations = 8;
    for &config in configs {
        let spec = DlxSpecification::new(config);
        let problem = verifier.build_problem(&Dlx::correct(config), &spec);

        let meter = HeapMeter::start();
        let start = Instant::now();
        let translations = verifier.translate_obligations(&problem, max_obligations);
        let mut conflicts = 0;
        let mut propagations = 0;
        let mut decisions = 0;
        let mut monolithic_ok = true;
        for translation in &translations {
            let mut solver = CdclSolver::chaff();
            let verdict = verifier.check(translation, &mut solver, Budget::unlimited());
            monolithic_ok &= verdict.is_correct();
            let stats = solver.stats();
            conflicts += stats.conflicts;
            propagations += stats.propagations;
            decisions += stats.decisions;
        }
        let time = start.elapsed().as_secs_f64();
        let (peak_heap_bytes, scope_deltas) = meter.finish();
        measurements.push(Measurement {
            preset: "chaff-per-obligation",
            instance: format!("decompose-{}", config.name()),
            result: if monolithic_ok { "unsat" } else { "mixed" },
            time_s: time,
            conflicts,
            propagations,
            decisions,
            conflicts_per_sec: conflicts as f64 / time.max(1e-9),
            propagations_per_sec: propagations as f64 / time.max(1e-9),
            peak_heap_bytes,
            metrics: scope_deltas,
        });

        let meter = HeapMeter::start();
        let start = Instant::now();
        let shared = verifier.translate_obligations_shared(&problem, max_obligations);
        let mut solver =
            velv_sat::IncrementalSolver::with_formula(CdclConfig::chaff(), &shared.cnf);
        let (overall, _, _) = verifier.check_shared_with(&shared, &mut solver, Budget::unlimited());
        let time = start.elapsed().as_secs_f64();
        let (peak_heap_bytes, scope_deltas) = meter.finish();
        assert_eq!(
            overall.is_correct(),
            monolithic_ok,
            "shared and per-obligation decomposition must agree on {}",
            config.name()
        );
        let stats = solver.stats();
        measurements.push(Measurement {
            preset: "chaff-shared-incremental",
            instance: format!("decompose-{}", config.name()),
            result: verdict_label(&overall),
            time_s: time,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            decisions: stats.decisions,
            conflicts_per_sec: stats.conflicts as f64 / time.max(1e-9),
            propagations_per_sec: stats.propagations as f64 / time.max(1e-9),
            peak_heap_bytes,
            metrics: scope_deltas,
        });
    }
}

/// Transitivity benchmark: eager triangulated side constraints vs. lazy
/// incremental refinement, on the workloads whose encodings are
/// transitivity-heavy — the out-of-order cores, and the DLX pipelines with
/// positive equality disabled (every term variable general, so the
/// comparison graph is dense and the eager triangulation large).
fn run_transitivity(measurements: &mut Vec<Measurement>, smoke: bool) {
    let eager = Verifier::new(TranslationOptions::default());
    let lazy = Verifier::new(TranslationOptions::default().with_lazy_transitivity());
    let widths: &[usize] = if smoke { &[2] } else { &[2, 3] };
    for &width in widths {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        transitivity_pair(
            measurements,
            &format!("ooo-{width}"),
            &eager,
            &lazy,
            &implementation,
            &spec,
        );
    }

    // Dense comparison graphs: the DLX without positive equality.  (The
    // dual-issue variant is excluded — ~50 s per arm with parity between the
    // modes, which would double the whole harness for no signal.)
    let eager_nope = Verifier::new(TranslationOptions::default().without_positive_equality());
    let lazy_nope = Verifier::new(
        TranslationOptions::default()
            .without_positive_equality()
            .with_lazy_transitivity(),
    );
    let configs: &[DlxConfig] = if smoke {
        &[]
    } else {
        &[DlxConfig::single_issue()]
    };
    for &config in configs {
        let spec = DlxSpecification::new(config);
        let implementation = Dlx::correct(config);
        transitivity_pair(
            measurements,
            &format!("nope-{}", config.name()),
            &eager_nope,
            &lazy_nope,
            &implementation,
            &spec,
        );
    }
}

/// One eager-vs-lazy measurement pair on a single design, end to end
/// (translation plus check — the lazy encoding also skips the triangulation
/// and its chord variables at translation time).
fn transitivity_pair(
    measurements: &mut Vec<Measurement>,
    instance: &str,
    eager: &Verifier,
    lazy: &Verifier,
    implementation: &dyn velv_hdl::Processor,
    spec: &dyn velv_hdl::Processor,
) {
    let meter = HeapMeter::start();
    let start = Instant::now();
    let eager_translation = eager.translate(implementation, spec);
    let mut solver = CdclSolver::chaff();
    let eager_verdict = eager.check(&eager_translation, &mut solver, Budget::unlimited());
    let time = start.elapsed().as_secs_f64();
    let (peak_heap_bytes, scope_deltas) = meter.finish();
    let stats = solver.stats();
    measurements.push(Measurement {
        preset: "chaff-eager-transitivity",
        instance: instance.to_owned(),
        result: verdict_label(&eager_verdict),
        time_s: time,
        conflicts: stats.conflicts,
        propagations: stats.propagations,
        decisions: stats.decisions,
        conflicts_per_sec: stats.conflicts as f64 / time.max(1e-9),
        propagations_per_sec: stats.propagations as f64 / time.max(1e-9),
        peak_heap_bytes,
        metrics: scope_deltas,
    });

    let meter = HeapMeter::start();
    let start = Instant::now();
    let lazy_translation = lazy.translate(implementation, spec);
    let mut incremental =
        velv_sat::IncrementalSolver::with_formula(CdclConfig::chaff(), &lazy_translation.cnf);
    let (lazy_verdict, refinement) = velv_core::refine::check_with_refinement(
        &lazy_translation,
        &mut incremental,
        Budget::unlimited(),
    );
    let time = start.elapsed().as_secs_f64();
    let (peak_heap_bytes, scope_deltas) = meter.finish();
    assert_eq!(
        eager_verdict.is_correct(),
        lazy_verdict.is_correct(),
        "lazy and eager transitivity must agree on {instance} ({refinement} refinement)"
    );
    let stats = incremental.stats();
    measurements.push(Measurement {
        preset: "chaff-lazy-incremental",
        instance: instance.to_owned(),
        result: verdict_label(&lazy_verdict),
        time_s: time,
        conflicts: stats.conflicts,
        propagations: stats.propagations,
        decisions: stats.decisions,
        conflicts_per_sec: stats.conflicts as f64 / time.max(1e-9),
        propagations_per_sec: stats.propagations as f64 / time.max(1e-9),
        peak_heap_bytes,
        metrics: scope_deltas,
    });
}

/// Certification benchmark: the overhead of DRAT proof logging on the DLX
/// correct-design proofs (plain chaff vs. proof-logging chaff) and the
/// independent checker's replay time.  The acceptance bar for the subsystem
/// is logging overhead within 2× of the plain solve on the 2×DLX proof.
fn run_certify(measurements: &mut Vec<Measurement>, smoke: bool) {
    let configs: &[DlxConfig] = if smoke {
        &[DlxConfig::single_issue()]
    } else {
        &[DlxConfig::single_issue(), DlxConfig::dual_issue_full()]
    };
    let verifier = Verifier::new(TranslationOptions::default());
    for &config in configs {
        let spec = DlxSpecification::new(config);
        let translation = verifier.translate(&Dlx::correct(config), &spec);
        let instance = format!("certify-{}", config.name());

        let mut plain = CdclSolver::chaff();
        let meter = HeapMeter::start();
        let start = Instant::now();
        let plain_result = plain.solve_with_budget(&translation.cnf, Budget::unlimited());
        let plain_time = start.elapsed().as_secs_f64();
        let (peak_heap_bytes, scope_deltas) = meter.finish();
        assert!(plain_result.is_unsat(), "{instance}: correct design");
        let stats = plain.stats();
        measurements.push(Measurement {
            preset: "chaff-plain",
            instance: instance.clone(),
            result: "unsat",
            time_s: plain_time,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            decisions: stats.decisions,
            conflicts_per_sec: stats.conflicts as f64 / plain_time.max(1e-9),
            propagations_per_sec: stats.propagations as f64 / plain_time.max(1e-9),
            peak_heap_bytes,
            metrics: scope_deltas,
        });

        // Through the `Solver` trait hook, as a backend-agnostic caller would.
        let mut logging = CdclSolver::chaff();
        let shared = velv_sat::SharedProof::new();
        let meter = HeapMeter::start();
        let start = Instant::now();
        let logged_result = logging
            .solve_with_proof(&translation.cnf, &[], Budget::unlimited(), &shared)
            .expect("the CDCL presets produce proofs");
        let logging_time = start.elapsed().as_secs_f64();
        let (peak_heap_bytes, scope_deltas) = meter.finish();
        assert!(logged_result.is_unsat(), "{instance}");
        let proof = shared.take();
        let stats = logging.stats();
        measurements.push(Measurement {
            preset: "chaff-proof-logging",
            instance: instance.clone(),
            result: "unsat",
            time_s: logging_time,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            decisions: stats.decisions,
            conflicts_per_sec: stats.conflicts as f64 / logging_time.max(1e-9),
            propagations_per_sec: stats.propagations as f64 / logging_time.max(1e-9),
            peak_heap_bytes,
            metrics: scope_deltas,
        });

        let clauses = velv_sat::dimacs::cnf_to_dimacs_i32(&translation.cnf);
        let steps = proof.len() as u64;
        let meter = HeapMeter::start();
        let start = Instant::now();
        let report =
            velv_proof::check_proof(&clauses, &proof, &velv_proof::CheckOptions::default())
                .unwrap_or_else(|e| panic!("{instance}: proof rejected: {e}"));
        let check_time = start.elapsed().as_secs_f64();
        let (peak_heap_bytes, scope_deltas) = meter.finish();
        assert!(report.derived_empty, "{instance}");
        measurements.push(Measurement {
            preset: "drat-checker",
            instance,
            result: "verified",
            time_s: check_time,
            conflicts: steps, // proof steps replayed, in the conflicts column
            propagations: 0,
            decisions: 0,
            conflicts_per_sec: steps as f64 / check_time.max(1e-9),
            propagations_per_sec: 0.0,
            peak_heap_bytes,
            metrics: scope_deltas,
        });
    }
}

/// One measured phase of the serve benchmark.
struct ServeSweep {
    label: &'static str,
    jobs: usize,
    seconds: f64,
    jobs_per_sec: f64,
}

/// Serving-layer benchmark (see the module docs): returns the measured
/// sweeps plus the service's final counters.
fn run_serve(smoke: bool) -> (Vec<ServeSweep>, velv_serve::ServiceStats, usize) {
    use velv_serve::{JobSpec, ModelRef, ServeHandle, ServiceConfig};

    let workers = if smoke { 2 } else { 4 };
    let service = ServeHandle::start(
        ServiceConfig::default()
            .with_workers(workers)
            .with_cache_bytes(256 << 20),
    );
    let bugs = if smoke { 2 } else { 12 };
    let catalog = || -> Vec<JobSpec> {
        let mut specs = vec![JobSpec::new(ModelRef::dlx1_correct())];
        for bug in 0..bugs {
            specs.push(JobSpec::new(ModelRef::dlx1_bug(bug)));
        }
        specs
    };
    let catalog_jobs = catalog().len();
    let mut sweeps = Vec::new();

    // Cold sweep: unique fingerprints, one shared batch session.
    let start = Instant::now();
    let tickets = service.submit_batch(catalog()).expect("batch accepted");
    for ticket in &tickets {
        let result = ticket.wait();
        assert!(
            !matches!(result.verdict, Verdict::Unknown(_)),
            "cold sweep job {} came back undecided",
            result.name
        );
    }
    let seconds = start.elapsed().as_secs_f64();
    sweeps.push(ServeSweep {
        label: "cold-batch",
        jobs: catalog_jobs,
        seconds,
        jobs_per_sec: catalog_jobs as f64 / seconds.max(1e-9),
    });

    // Warm sweep: identical fingerprints, served from the cache.
    let start = Instant::now();
    let tickets = service.submit_batch(catalog()).expect("batch accepted");
    for ticket in &tickets {
        assert!(ticket.wait().from_cache, "warm sweep must hit the cache");
    }
    let seconds = start.elapsed().as_secs_f64();
    sweeps.push(ServeSweep {
        label: "warm-batch",
        jobs: catalog_jobs,
        seconds,
        jobs_per_sec: catalog_jobs as f64 / seconds.max(1e-9),
    });

    // Concurrent warm re-sweep: several client threads hammer the cache.
    let clients = if smoke { 2 } else { 4 };
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let service = service.clone();
            let specs = catalog();
            scope.spawn(move || {
                for spec in specs {
                    let result = service.submit(spec).expect("accepted").wait();
                    assert!(result.from_cache);
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let jobs = clients * catalog_jobs;
    sweeps.push(ServeSweep {
        label: "warm-concurrent",
        jobs,
        seconds,
        jobs_per_sec: jobs as f64 / seconds.max(1e-9),
    });

    // Shut down first so the worker gauges have settled before the snapshot.
    service.shutdown();
    let stats = service.stats();
    (sweeps, stats, workers)
}

/// One measured phase of the persistence benchmark.
struct PersistRow {
    label: String,
    records: usize,
    seconds: f64,
    per_sec: f64,
}

/// Persistence benchmark: raw verdict-store append throughput under each
/// fsync policy, the recovery scan rate, and a full service warm boot
/// (restart + log replay + cache-served catalog) — the durability costs a
/// `velvd --store` deployment actually pays.
fn run_persist(smoke: bool) -> Vec<PersistRow> {
    use velv_serve::{JobSpec, ModelRef, ServeHandle, ServiceConfig};
    use velv_store::{FsyncPolicy, Store, StoreConfig};

    let mut rows = Vec::new();
    let base = std::env::temp_dir().join(format!("velv_bench_persist_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // A representative payload: the encoded form of a decided verdict is a
    // few hundred bytes; every 8th record carries a 4 KiB DRAT sidecar.
    let payload = vec![0x56u8; 240];
    let sidecar = vec![0x44u8; 4 << 10];
    let policies: [(&str, FsyncPolicy, usize); 3] = [
        (
            "append-fsync-always",
            FsyncPolicy::Always,
            if smoke { 16 } else { 256 },
        ),
        (
            "append-fsync-every-8",
            FsyncPolicy::EveryN(8),
            if smoke { 64 } else { 1024 },
        ),
        (
            "append-fsync-os",
            FsyncPolicy::Os,
            if smoke { 256 } else { 8192 },
        ),
    ];
    let mut scan_dir = None;
    let mut scan_records = 0usize;
    for (label, fsync, records) in policies {
        let dir = base.join(label);
        let mut config = StoreConfig::new(&dir);
        config.fsync = fsync;
        let (store, _) = Store::open(config).expect("open bench store");
        let start = Instant::now();
        for i in 0..records {
            let side = if i % 8 == 0 {
                Some(sidecar.as_slice())
            } else {
                None
            };
            store
                .append(i as u128, &payload, side)
                .expect("bench append");
        }
        store.sync().expect("bench sync");
        let seconds = start.elapsed().as_secs_f64();
        rows.push(PersistRow {
            label: label.to_owned(),
            records,
            seconds,
            per_sec: records as f64 / seconds.max(1e-9),
        });
        // The largest log doubles as the recovery-scan instance.
        if records > scan_records {
            scan_records = records;
            scan_dir = Some(dir);
        }
    }

    // Recovery scan: reopen the largest log and time the boot-path scan that
    // rebuilds the index (recorded by the store itself).
    let (_store, report) =
        Store::open(StoreConfig::new(scan_dir.expect("a scan log"))).expect("reopen bench store");
    let seconds = report.scan_time.as_secs_f64();
    rows.push(PersistRow {
        label: "recovery-scan".to_owned(),
        records: report.records as usize,
        seconds,
        per_sec: report.records as f64 / seconds.max(1e-9),
    });

    // Service warm boot: decide a small catalog with a store attached, kill
    // the service, restart on the same directory and re-sweep.  The restart
    // must replay every decided verdict and serve the sweep from cache.
    let store_dir = base.join("service");
    let catalog = |bugs: usize| -> Vec<JobSpec> {
        let mut specs = vec![JobSpec::new(ModelRef::dlx1_correct())];
        for bug in 0..bugs {
            specs.push(JobSpec::new(ModelRef::dlx1_bug(bug)));
        }
        specs
    };
    let bugs = if smoke { 2 } else { 6 };
    let config = || {
        let mut config = ServiceConfig::default().with_workers(if smoke { 2 } else { 4 });
        config.store_dir = Some(store_dir.clone());
        config
    };
    let service = ServeHandle::try_start(config()).expect("start with a store");
    let tickets = service.submit_batch(catalog(bugs)).expect("batch accepted");
    for ticket in &tickets {
        assert!(
            !matches!(ticket.wait().verdict, Verdict::Unknown(_)),
            "persist sweep job came back undecided"
        );
    }
    let persisted = service.stats().persisted;
    service.shutdown();
    drop(service);

    let start = Instant::now();
    let service = ServeHandle::try_start(config()).expect("warm restart");
    for ticket in &service.submit_batch(catalog(bugs)).expect("batch accepted") {
        assert!(ticket.wait().from_cache, "warm boot must serve from cache");
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = service.stats();
    assert_eq!(stats.replayed, persisted, "every persisted verdict replays");
    assert_eq!(stats.fresh_solves, 0, "warm boot re-solves nothing");
    service.shutdown();
    rows.push(PersistRow {
        label: "warm-boot-replay".to_owned(),
        records: persisted as usize,
        seconds,
        per_sec: persisted as f64 / seconds.max(1e-9),
    });

    let _ = std::fs::remove_dir_all(&base);
    rows
}

fn write_serve_json(
    path: &str,
    sweeps: &[ServeSweep],
    persist: &[PersistRow],
    stats: &velv_serve::ServiceStats,
    workers: usize,
    smoke: bool,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"harness\": \"satbench-serve\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"sweeps\": [\n");
    for (i, sweep) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"jobs\": {}, \"seconds\": {:.6}, \"jobs_per_sec\": {:.2}}}{}\n",
            sweep.label,
            sweep.jobs,
            sweep.seconds,
            sweep.jobs_per_sec,
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"persist\": [\n");
    for (i, row) in persist.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"records\": {}, \"seconds\": {:.6}, \"records_per_sec\": {:.2}}}{}\n",
            row.label,
            row.records,
            row.seconds,
            row.per_sec,
            if i + 1 < persist.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    for (key, value) in stats.fields() {
        out.push_str(&format!("  \"{}\": {},\n", key.replace('-', "_"), value));
    }
    out.push_str(&format!(
        "  \"cache_hit_ratio\": {:.4}\n}}\n",
        stats.cache.hit_ratio()
    ));
    std::fs::write(path, out)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, measurements: &[Measurement], smoke: bool) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"harness\": \"satbench\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let metrics = if m.metrics.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> = m
                .metrics
                .iter()
                .map(|(key, value)| format!("\"{}\": {value}", json_escape(key)))
                .collect();
            format!(", \"metrics\": {{{}}}", entries.join(", "))
        };
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"instance\": \"{}\", \"result\": \"{}\", \
             \"time_s\": {:.6}, \"conflicts\": {}, \"propagations\": {}, \
             \"decisions\": {}, \"conflicts_per_sec\": {:.1}, \"propagations_per_sec\": {:.1}, \
             \"peak_heap_bytes\": {}{}}}{}\n",
            json_escape(m.preset),
            json_escape(&m.instance),
            m.result,
            m.time_s,
            m.conflicts,
            m.propagations,
            m.decisions,
            m.conflicts_per_sec,
            m.propagations_per_sec,
            m.peak_heap_bytes,
            metrics,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_cdcl.json".to_owned());
    let serve_out_path = flag_value("--serve-out").unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let trace_path = flag_value("--trace");
    let only = flag_value("--only");
    // `persist` rides with the serve suite: both land in the serve JSON, so
    // regenerating one without the other would commit a half-empty file.
    let run_cdcl_suites = only.as_deref().is_none_or(|o| o == "cdcl");
    let run_serve_suite = only
        .as_deref()
        .is_none_or(|o| o == "serve" || o == "persist");
    if let Some(other) = only.as_deref() {
        if other != "cdcl" && other != "serve" && other != "persist" {
            eprintln!("satbench: unknown --only {other} (want cdcl, serve or persist)");
            std::process::exit(2);
        }
    }

    // Sink wiring: `--trace` alone installs the JSONL file sink as before;
    // `--profile` installs a `ProfileSink` (teeing to the file sink when both
    // are given) so per-solve phase trees can be extracted without replaying
    // the trace.
    let file_sink = trace_path
        .as_ref()
        .map(|path| match velv_obs::JsonlFileSink::create(path) {
            Ok(sink) => {
                println!("satbench: tracing to {path}");
                std::sync::Arc::new(sink)
            }
            Err(e) => {
                eprintln!("satbench: cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        });
    let profiler = flag_value("--profile").map(|dir| {
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("satbench: cannot create profile dir {}: {e}", dir.display());
            std::process::exit(1);
        }
        let sink = std::sync::Arc::new(match &file_sink {
            Some(inner) => velv_obs::ProfileSink::with_inner(inner.clone()),
            None => velv_obs::ProfileSink::new(),
        });
        println!("satbench: writing solve profiles to {}", dir.display());
        Profiler { dir, sink }
    });
    match (&profiler, &file_sink) {
        (Some(profiler), _) => velv_obs::install_sink(profiler.sink.clone()),
        (None, Some(sink)) => velv_obs::install_sink(sink.clone()),
        (None, None) => {}
    }

    if run_cdcl_suites {
        let instances = suite(smoke);
        println!(
            "satbench: {} instances x 4 presets{}",
            instances.len(),
            if smoke { " (smoke)" } else { "" }
        );
        let mut measurements = run(&instances, smoke, profiler.as_ref());
        run_decomposition(&mut measurements, smoke);
        run_transitivity(&mut measurements, smoke);
        run_certify(&mut measurements, smoke);
        println!(
            "{:<28} {:<8} {:>8} {:>10} {:>12} {:>14} {:>10}",
            "instance", "preset", "result", "time (s)", "confl/s", "props/s", "peak-kb"
        );
        for m in &measurements {
            println!(
                "{:<28} {:<8} {:>8} {:>10.3} {:>12.0} {:>14.0} {:>10}",
                m.instance,
                m.preset,
                m.result,
                m.time_s,
                m.conflicts_per_sec,
                m.propagations_per_sec,
                m.peak_heap_bytes >> 10,
            );
        }
        match write_json(&out_path, &measurements, smoke) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if run_serve_suite {
        println!(
            "satbench: serve throughput sweep{}",
            if smoke { " (smoke)" } else { "" }
        );
        let (sweeps, stats, workers) = run_serve(smoke);
        println!(
            "{:<18} {:>6} {:>10} {:>12}",
            "sweep", "jobs", "time (s)", "jobs/s"
        );
        for sweep in &sweeps {
            println!(
                "{:<18} {:>6} {:>10.3} {:>12.1}",
                sweep.label, sweep.jobs, sweep.seconds, sweep.jobs_per_sec
            );
        }
        println!(
            "cache hits {} / lookups {} (ratio {:.2}), dedup joins {}, fresh solves {}",
            stats.cache.hits,
            stats.cache.hits + stats.cache.misses,
            stats.cache.hit_ratio(),
            stats.dedup_joins,
            stats.fresh_solves
        );
        assert!(
            stats.cache.hit_ratio() > 0.0,
            "the repeated catalog sweep must produce cache hits"
        );
        println!(
            "satbench: persistence sweep{}",
            if smoke { " (smoke)" } else { "" }
        );
        let persist = run_persist(smoke);
        println!(
            "{:<22} {:>8} {:>10} {:>14}",
            "phase", "records", "time (s)", "records/s"
        );
        for row in &persist {
            println!(
                "{:<22} {:>8} {:>10.3} {:>14.1}",
                row.label, row.records, row.seconds, row.per_sec
            );
        }
        match write_serve_json(&serve_out_path, &sweeps, &persist, &stats, workers, smoke) {
            Ok(()) => println!("wrote {serve_out_path}"),
            Err(e) => {
                eprintln!("failed to write {serve_out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Drain the tracer and self-check the capture: the harness is a single
    // process whose worker threads have all exited, so every span must have
    // closed and reached the file.
    if profiler.is_some() || trace_path.is_some() {
        velv_obs::uninstall_sink();
    }
    if let Some(path) = &trace_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("satbench: cannot read back trace file {path}: {e}");
            std::process::exit(1);
        });
        match velv_obs::check_trace(&text) {
            Ok(summary) => {
                assert!(
                    summary.records > 0,
                    "the traced run must produce trace records"
                );
                assert_eq!(
                    summary.unclosed, 0,
                    "a fully drained single-process trace leaves no span open"
                );
                println!(
                    "trace {path}: {} records ({} spans, {} events), all spans closed",
                    summary.records, summary.spans_opened, summary.events
                );
            }
            Err(e) => {
                eprintln!("satbench: malformed trace capture {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
