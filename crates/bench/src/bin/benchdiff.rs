//! `benchdiff` — regression attribution between two `BENCH_cdcl.json` files.
//!
//! Compares a baseline and a current benchmark file row by row (keyed by
//! `(instance, preset)`), ranks the deltas by significance, and for the rows
//! that moved names the per-run registry counters that moved with them — so
//! a throughput regression points at *which* engine counter changed, not
//! just that the wall clock did.
//!
//! ```text
//! benchdiff BASELINE.json CURRENT.json [--threshold PCT] [--out PATH]
//! ```
//!
//! A row is *significant* when its time, conflicts-per-second or peak heap
//! bytes moved by more than the threshold (default 5%), or its result label
//! changed — a memory regression ranks exactly like a throughput regression.  Rows
//! present in only one file are reported as added/removed.  The tool is
//! informational: it always exits 0 on a successful comparison (CI uploads
//! its output as an artifact rather than gating on it), and exits nonzero
//! only when an input cannot be read or parsed.

use std::collections::BTreeMap;
use velv_bench::json::{self, Json};

/// One benchmark row, as read from a `runs` array entry.
#[derive(Clone, Debug)]
struct Row {
    result: String,
    time_s: f64,
    conflicts: f64,
    conflicts_per_sec: f64,
    propagations_per_sec: f64,
    peak_heap_bytes: f64,
    metrics: BTreeMap<String, f64>,
}

/// The comparison of one `(instance, preset)` row across the two files.
struct Delta {
    key: String,
    baseline: Row,
    current: Row,
    /// Largest relative movement across time and throughput, in [0, inf).
    significance: f64,
    result_changed: bool,
}

fn usage() -> ! {
    eprintln!("usage: benchdiff BASELINE.json CURRENT.json [--threshold PCT] [--out PATH]");
    std::process::exit(2);
}

fn load(path: &str) -> BTreeMap<String, Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot parse {path}: {e}");
        std::process::exit(1);
    });
    let runs = doc.get("runs").and_then(Json::as_array).unwrap_or_else(|| {
        eprintln!("benchdiff: {path} has no `runs` array (is it a BENCH_cdcl file?)");
        std::process::exit(1);
    });
    let mut rows = BTreeMap::new();
    for run in runs {
        let field = |name: &str| run.get(name).and_then(Json::as_f64).unwrap_or(0.0);
        let text_field = |name: &str| {
            run.get(name)
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned()
        };
        let metrics = run
            .get("metrics")
            .and_then(Json::as_object)
            .map(|map| {
                map.iter()
                    .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                    .collect()
            })
            .unwrap_or_default();
        let key = format!("{} [{}]", text_field("instance"), text_field("preset"));
        rows.insert(
            key,
            Row {
                result: text_field("result"),
                time_s: field("time_s"),
                conflicts: field("conflicts"),
                conflicts_per_sec: field("conflicts_per_sec"),
                propagations_per_sec: field("propagations_per_sec"),
                peak_heap_bytes: field("peak_heap_bytes"),
                metrics,
            },
        );
    }
    rows
}

/// Relative movement of `current` against `baseline`, signed; 0 when the
/// baseline is 0 (nothing meaningful to divide by).
fn rel(baseline: f64, current: f64) -> f64 {
    if baseline.abs() < 1e-12 {
        0.0
    } else {
        (current - baseline) / baseline
    }
}

fn percent(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// The registry counters of a row that moved by more than `threshold`,
/// ranked by relative movement, largest first.
fn moved_counters(baseline: &Row, current: &Row, threshold: f64) -> Vec<(String, f64, f64, f64)> {
    let mut moved = Vec::new();
    let keys: std::collections::BTreeSet<&String> = baseline
        .metrics
        .keys()
        .chain(current.metrics.keys())
        .collect();
    for key in keys {
        let old = baseline.metrics.get(key).copied().unwrap_or(0.0);
        let new = current.metrics.get(key).copied().unwrap_or(0.0);
        let movement = if old.abs() < 1e-12 && new.abs() < 1e-12 {
            0.0
        } else if old.abs() < 1e-12 {
            f64::INFINITY // appeared
        } else {
            rel(old, new).abs()
        };
        if movement > threshold {
            moved.push((key.clone(), old, new, movement));
        }
    }
    moved.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    moved
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut threshold = 0.05;
    let mut out_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => threshold = pct / 100.0,
                _ => usage(),
            },
            "--out" => match iter.next() {
                Some(path) => out_path = Some(path.clone()),
                None => usage(),
            },
            _ if arg.starts_with("--") => usage(),
            _ => positional.push(arg.clone()),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        usage();
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut deltas = Vec::new();
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for (key, row) in &current {
        match baseline.get(key) {
            None => added.push(key.clone()),
            Some(base) => {
                let significance = [
                    rel(base.time_s, row.time_s).abs(),
                    rel(base.conflicts_per_sec, row.conflicts_per_sec).abs(),
                    rel(base.propagations_per_sec, row.propagations_per_sec).abs(),
                    rel(base.peak_heap_bytes, row.peak_heap_bytes).abs(),
                ]
                .into_iter()
                .fold(0.0, f64::max);
                deltas.push(Delta {
                    key: key.clone(),
                    baseline: base.clone(),
                    current: row.clone(),
                    significance,
                    result_changed: base.result != row.result,
                });
            }
        }
    }
    for key in baseline.keys() {
        if !current.contains_key(key) {
            removed.push(key.clone());
        }
    }

    // Result flips first (a verdict change dwarfs any throughput delta),
    // then by relative movement.
    deltas.sort_by(|a, b| {
        b.result_changed.cmp(&a.result_changed).then(
            b.significance
                .partial_cmp(&a.significance)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });

    println!("benchdiff: {baseline_path} -> {current_path}");
    println!(
        "{} common rows, {} added, {} removed, threshold {:.1}%",
        deltas.len(),
        added.len(),
        removed.len(),
        threshold * 100.0
    );
    let mut report = String::new();
    report.push_str("{\n");
    report.push_str(&format!(
        "  \"baseline\": \"{baseline_path}\",\n  \"current\": \"{current_path}\",\n"
    ));
    report.push_str(&format!("  \"threshold\": {threshold},\n"));
    report.push_str("  \"deltas\": [\n");
    let mut significant = 0usize;
    let mut emitted = 0usize;
    for delta in &deltas {
        let flagged = delta.result_changed || delta.significance > threshold;
        if !flagged {
            continue;
        }
        significant += 1;
        let time = rel(delta.baseline.time_s, delta.current.time_s);
        let confl = rel(
            delta.baseline.conflicts_per_sec,
            delta.current.conflicts_per_sec,
        );
        let heap = rel(
            delta.baseline.peak_heap_bytes,
            delta.current.peak_heap_bytes,
        );
        let marker = if delta.result_changed {
            " RESULT CHANGED"
        } else if heap.abs() > threshold && heap.abs() >= time.abs() {
            if heap > 0.0 {
                " more memory"
            } else {
                " less memory"
            }
        } else if time > 0.0 {
            " slower"
        } else {
            " faster"
        };
        println!(
            "  {:<44} time {} confl/s {} heap {}{}",
            delta.key,
            percent(time),
            percent(confl),
            percent(heap),
            marker
        );
        if heap.abs() > threshold {
            println!(
                "    peak heap: {:.0} -> {:.0} bytes",
                delta.baseline.peak_heap_bytes, delta.current.peak_heap_bytes
            );
        }
        if delta.result_changed {
            println!(
                "    result: {} -> {}",
                delta.baseline.result, delta.current.result
            );
        }
        if delta.baseline.conflicts != delta.current.conflicts {
            // A changed conflict count means the search trajectory itself
            // moved, not just the machine's speed.
            println!(
                "    conflicts: {:.0} -> {:.0} (trajectory changed)",
                delta.baseline.conflicts, delta.current.conflicts
            );
        }
        let moved = moved_counters(&delta.baseline, &delta.current, threshold);
        for (name, old, new, _) in moved.iter().take(4) {
            println!("    counter {name}: {old:.0} -> {new:.0}");
        }
        if moved.len() > 4 {
            println!("    ... and {} more moved counters", moved.len() - 4);
        }
        if emitted > 0 {
            report.push_str(",\n");
        }
        emitted += 1;
        let counters: Vec<String> = moved
            .iter()
            .take(8)
            .map(|(name, old, new, _)| {
                format!(
                    "{{\"name\": \"{}\", \"baseline\": {old}, \"current\": {new}}}",
                    name.replace('\\', "\\\\").replace('"', "\\\"")
                )
            })
            .collect();
        report.push_str(&format!(
            "    {{\"row\": \"{}\", \"result_changed\": {}, \"time_rel\": {:.4}, \
             \"conflicts_per_sec_rel\": {:.4}, \"peak_heap_rel\": {:.4}, \
             \"moved_counters\": [{}]}}",
            delta.key.replace('\\', "\\\\").replace('"', "\\\""),
            delta.result_changed,
            time,
            confl,
            heap,
            counters.join(", ")
        ));
    }
    if emitted > 0 {
        report.push('\n');
    }
    report.push_str("  ],\n");
    report.push_str(&format!(
        "  \"added\": [{}],\n",
        added
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    report.push_str(&format!(
        "  \"removed\": [{}]\n}}\n",
        removed
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    if significant == 0 {
        println!("  no row moved beyond the threshold");
    }
    for key in &added {
        println!("  added   {key}");
    }
    for key in &removed {
        println!("  removed {key}");
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("benchdiff: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
