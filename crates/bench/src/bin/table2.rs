//! Table 2: structural variations (base / ER / AC / ER+AC) and Chaff parameter
//! variations, run "in parallel" (minimum time per benchmark) on the buggy
//! VLIW suite.

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check, suite_size, summarize};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{bug_catalog, Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::presets::chaff_parameter_variations;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 2 — structural and parameter variations on buggy 9VLIW-MC-BP",
        "paper: base Chaff max 180.4s avg 32.5s; 4 structural runs max 74.9s avg 14.4s; 4 parameter runs max 176.8s avg 15.0s",
    );
    let config = VliwConfig::base();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let spec = VliwSpecification::new(config);
    let budget = Budget::time_limit(Duration::from_secs(30));

    // Base run.
    let base_times: Vec<Duration> = suite
        .iter()
        .map(|&bug| {
            let verifier = Verifier::new(TranslationOptions::base());
            let start = Instant::now();
            let mut solver = CdclSolver::chaff();
            let _ = verifier.verify_with_budget(
                &Vliw::buggy(config, bug),
                &spec,
                &mut solver,
                budget.clone(),
            );
            start.elapsed()
        })
        .collect();

    // Four parallel structural variations: take the minimum time per benchmark.
    let structural_times: Vec<Duration> = suite
        .iter()
        .map(|&bug| {
            TranslationOptions::structural_variations()
                .into_iter()
                .map(|(_, options)| {
                    let verifier = Verifier::new(options);
                    let start = Instant::now();
                    let mut solver = CdclSolver::chaff();
                    let _ = verifier.verify_with_budget(
                        &Vliw::buggy(config, bug),
                        &spec,
                        &mut solver,
                        budget.clone(),
                    );
                    start.elapsed()
                })
                .min()
                .expect("four variations")
        })
        .collect();

    // Four parallel parameter variations of Chaff on the base formula.
    let parameter_times: Vec<Duration> = suite
        .iter()
        .map(|&bug| {
            let verifier = Verifier::new(TranslationOptions::base());
            let translation = verifier.translate(&Vliw::buggy(config, bug), &spec);
            chaff_parameter_variations()
                .into_iter()
                .map(|mut solver| {
                    let start = Instant::now();
                    let _ = verifier.check(&translation, solver.as_mut(), budget.clone());
                    start.elapsed()
                })
                .min()
                .expect("four parameter variations")
        })
        .collect();

    let base = summarize(&base_times);
    let structural = summarize(&structural_times);
    let parameter = summarize(&parameter_times);
    println!(
        "{:<38} {:>10} {:>10}",
        "configuration (Chaff)", "max (s)", "avg (s)"
    );
    println!(
        "{:<38} {:>10.3} {:>10.3}",
        "base (1 run)", base.max, base.mean
    );
    println!(
        "{:<38} {:>10.3} {:>10.3}",
        "base,ER,AC,ER+AC (4 runs, min)", structural.max, structural.mean
    );
    println!(
        "{:<38} {:>10.3} {:>10.3}",
        "base + 3 parameter variations (min)", parameter.max, parameter.mean
    );

    shape_check(
        "parallel structural variations do not increase the average detection time",
        structural.mean <= base.mean * 1.05,
    );
    shape_check(
        "parallel parameter variations do not increase the average detection time",
        parameter.mean <= base.mean * 1.05,
    );
}
