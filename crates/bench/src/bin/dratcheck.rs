//! `dratcheck` — check a DRAT proof against a DIMACS CNF from the CLI.
//!
//! Replays a proof produced by a proof-logging solve (or by any external
//! DRAT-emitting solver) through the independent RUP checker of `velv_proof`.
//!
//! Usage: `dratcheck [--binary] [--trim] CNF_FILE PROOF_FILE`
//!
//! * `--binary` — parse the proof in the binary DRAT encoding instead of the
//!   text format.
//! * `--trim`   — backward-trim the verified proof and report the used
//!   input-clause core.
//!
//! Exit status: 0 when the proof is verified, 1 when it is rejected, 2 on
//! usage or I/O errors.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;
use velv_proof::{check_proof, CheckOptions};
use velv_sat::dimacs::{cnf_to_dimacs_i32, parse_drat_binary, parse_drat_text, read_dimacs};

fn usage() -> ExitCode {
    eprintln!("usage: dratcheck [--binary] [--trim] CNF_FILE PROOF_FILE");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut binary = false;
    let mut trim = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--binary" => binary = true,
            "--trim" => trim = true,
            "--help" | "-h" => return usage(),
            _ => paths.push(arg),
        }
    }
    let [cnf_path, proof_path] = match <[String; 2]>::try_from(paths) {
        Ok(paths) => paths,
        Err(_) => return usage(),
    };

    let cnf_file = match File::open(&cnf_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dratcheck: cannot open {cnf_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cnf = match read_dimacs(BufReader::new(cnf_file)) {
        Ok(cnf) => cnf,
        Err(e) => {
            eprintln!("dratcheck: {cnf_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let proof = {
        let bytes = match std::fs::read(&proof_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dratcheck: cannot read {proof_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let parsed = if binary {
            parse_drat_binary(&bytes)
        } else {
            match String::from_utf8(bytes) {
                Ok(text) => parse_drat_text(&text),
                Err(_) => {
                    eprintln!("dratcheck: {proof_path} is not UTF-8 text; did you mean --binary?");
                    return ExitCode::from(2);
                }
            }
        };
        match parsed {
            Ok(p) => p,
            Err(e) => {
                eprintln!("dratcheck: {proof_path}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let clauses = cnf_to_dimacs_i32(&cnf);
    println!(
        "dratcheck: {} clauses, {} proof steps ({} additions)",
        clauses.len(),
        proof.len(),
        proof.num_additions(),
    );
    let start = Instant::now();
    match check_proof(
        &clauses,
        &proof,
        &CheckOptions {
            trim,
            ..Default::default()
        },
    ) {
        Ok(report) => {
            let elapsed = start.elapsed();
            println!(
                "VERIFIED in {elapsed:?}: {} additions, {} deletions ({} ignored), empty clause {}",
                report.additions,
                report.deletions,
                report.ignored_deletions,
                if report.derived_empty {
                    "derived"
                } else {
                    "not derived"
                },
            );
            if let (Some(core), Some(trimmed)) = (&report.input_core, report.trimmed_additions) {
                println!(
                    "trim: {} of {} input clauses used, {} of {} additions kept",
                    core.len(),
                    clauses.len(),
                    trimmed,
                    report.additions,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("REJECTED after {:?}: {e}", start.elapsed());
            ExitCode::FAILURE
        }
    }
}
