//! Table 5: CPU time to prove the correct out-of-order superscalar designs
//! (Chaff and BerkMin, eij and small-domain encodings), width 2..6.

use std::time::Instant;
use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_models::ooo::{Ooo, OooSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 5 — proving the out-of-order designs unsatisfiable",
        "paper: times grow steeply with width; eij beats small-domain; e.g. width 6: Chaff 68,896s vs 132,428s",
    );
    println!(
        "{:>5} {:>16} {:>16} {:>16} {:>16}",
        "width", "Chaff eij (s)", "Chaff sd (s)", "BerkMin eij (s)", "BerkMin sd (s)"
    );
    let max_width: usize = if std::env::var("VELV_FULL").is_ok_and(|v| v == "1") {
        6
    } else {
        5
    };
    let mut all_correct = true;
    let mut eij_not_slower = true;
    for width in 2..=max_width {
        let implementation = Ooo::new(width);
        let spec = OooSpecification::new();
        let mut row = Vec::new();
        for make_solver in [CdclSolver::chaff as fn() -> CdclSolver, CdclSolver::berkmin] {
            for options in [
                TranslationOptions::base(),
                TranslationOptions::base().with_small_domain(),
            ] {
                let verifier = Verifier::new(options);
                let translation = verifier.translate(&implementation, &spec);
                let mut solver = make_solver();
                let start = Instant::now();
                let verdict = verifier.check(&translation, &mut solver, Budget::unlimited());
                all_correct &= verdict.is_correct();
                row.push(start.elapsed().as_secs_f64());
            }
        }
        println!(
            "{:>5} {:>16.3} {:>16.3} {:>16.3} {:>16.3}",
            width, row[0], row[1], row[2], row[3]
        );
        if row[0] > row[1] * 1.5 {
            eij_not_slower = false;
        }
    }
    shape_check(
        "every out-of-order design is proven correct (UNSAT)",
        all_correct,
    );
    shape_check(
        "the eij encoding is not substantially slower than small-domain (Chaff)",
        eij_not_slower,
    );
}
