//! Portfolio experiment: for the Table-1 benchmarks (buggy variants of
//! 2×DLX-CC-MC-EX-BP), compare the wall-clock time of the racing portfolio
//! against the best and the median single engine on the same translation.
//!
//! The paper's conclusion is that no fixed procedure choice is safe; the
//! portfolio's claim is that racing them costs roughly the best engine's time
//! (plus thread startup) without having to know the winner in advance.

use std::time::{Duration, Instant};
use velv_bench::{print_header, secs, shape_check, suite_size};
use velv_core::{Backend, TranslationOptions, Verifier};
use velv_models::dlx::{bug_catalog, Dlx, DlxConfig, DlxSpecification};
use velv_sat::presets::SolverKind;
use velv_sat::Budget;

fn main() {
    print_header(
        "Portfolio — racing SAT presets and BDDs on buggy 2xDLX-CC-MC-EX-BP",
        "portfolio wall-clock vs. best and median single engine on the same CNF",
    );
    let config = DlxConfig::dual_issue_full();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);
    let limit = Budget::time_limit(Duration::from_secs(25));

    let singles = [
        Backend::Sat(SolverKind::Chaff),
        Backend::Sat(SolverKind::BerkMin),
        Backend::Sat(SolverKind::Grasp),
        Backend::Sat(SolverKind::Sato),
        Backend::Bdd {
            node_limit: 200_000,
        },
    ];
    let race = Backend::Portfolio(singles.to_vec());

    println!(
        "{:<34} {:>10} {:>10} {:>10}   winner",
        "benchmark", "best", "median", "race"
    );
    let mut race_beats_median = 0usize;
    let mut races_decided = 0usize;
    let mut total_overhead = 0.0f64;
    for &bug in &suite {
        let translation = verifier.translate(&Dlx::buggy(config, bug), &spec);

        // Sequential runs: one engine at a time on the shared translation.
        let mut times: Vec<(String, Duration, bool)> = Vec::new();
        for backend in &singles {
            let start = Instant::now();
            let verdict = verifier.check_with_backend(&translation, backend, limit.clone());
            times.push((backend.label(), start.elapsed(), verdict.is_buggy()));
        }
        let mut decided: Vec<Duration> = times
            .iter()
            .filter(|(_, _, ok)| *ok)
            .map(|(_, t, _)| *t)
            .collect();
        decided.sort_unstable();
        let best = decided.first().copied();
        let median = decided.get(decided.len() / 2).copied();

        // The race on the same translation.
        let start = Instant::now();
        let outcome =
            verifier.check_portfolio(&translation, std::slice::from_ref(&race), limit.clone());
        let race_time = start.elapsed();

        let name = format!("{bug:?}");
        let short: String = name.chars().take(32).collect();
        println!(
            "{:<34} {:>9}s {:>9}s {:>9}s   {}",
            short,
            best.map_or("--".to_owned(), secs),
            median.map_or("--".to_owned(), secs),
            secs(race_time),
            outcome.winner.as_deref().unwrap_or("--"),
        );
        if outcome.verdict.is_buggy() {
            races_decided += 1;
            if let Some(median) = median {
                if race_time <= median + Duration::from_millis(50) {
                    race_beats_median += 1;
                }
            }
            if let Some(best) = best {
                total_overhead += race_time.as_secs_f64() - best.as_secs_f64();
            }
        }
    }

    println!(
        "\nraces decided: {races_decided}/{}; mean overhead vs. best single engine: {:+.3}s",
        suite.len(),
        if races_decided > 0 {
            total_overhead / races_decided as f64
        } else {
            0.0
        },
    );
    shape_check(
        "the portfolio decides every benchmark the best single engine decides",
        races_decided == suite.len(),
    );
    shape_check(
        "racing is at worst about as slow as the median single engine",
        race_beats_median * 4 >= races_decided * 3,
    );
}
