//! Section 8 prose: conservative approximations (translation boxes and
//! automatically abstracted memories) on the correct exception-enabled VLIW.

use std::time::Instant;
use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Section 8 — conservative approximations on the correct 9VLIW-MC-BP-EX",
        "paper: without the approximations Chaff needs 914s vs 660s with them — an insignificant overhead compared with analysing false negatives",
    );
    let config = VliwConfig::with_exceptions();
    let implementation = Vliw::correct(config);
    let spec = VliwSpecification::new(config);

    let configurations = [
        ("no approximations", TranslationOptions::base()),
        (
            "translation boxes on PC and CFM",
            TranslationOptions {
                translation_boxes: vec!["pc".to_owned(), "cfm".to_owned()],
                ..TranslationOptions::base()
            },
        ),
        (
            "ALAT abstracted automatically",
            TranslationOptions {
                abstract_memories: vec!["alat".to_owned()],
                ..TranslationOptions::base()
            },
        ),
    ];
    println!(
        "{:<36} {:>12} {:>10} {:>10}",
        "configuration", "chaff (s)", "verdict", "cnf vars"
    );
    let mut all_correct = true;
    for (name, options) in configurations {
        let verifier = Verifier::new(options);
        let translation = verifier.translate(&implementation, &spec);
        let mut solver = CdclSolver::chaff();
        let start = Instant::now();
        let verdict = verifier.check(&translation, &mut solver, Budget::unlimited());
        let elapsed = start.elapsed().as_secs_f64();
        all_correct &= verdict.is_correct();
        println!(
            "{:<36} {:>12.3} {:>10} {:>10}",
            name,
            elapsed,
            if verdict.is_correct() {
                "correct"
            } else {
                "CHECK"
            },
            translation.stats.cnf_vars
        );
    }
    shape_check(
        "the conservative approximations do not produce false negatives on this design",
        all_correct,
    );
}
