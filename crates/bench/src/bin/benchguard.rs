//! `benchguard` — a perf-regression gate over committed benchmark files.
//!
//! Two independent gates, each armed by its flag pair:
//!
//! * **Serving throughput** (`--baseline`/`--current`, `BENCH_serve.json`):
//!   fails (exit 1) when any shared sweep's `jobs_per_sec` falls below
//!   `min-ratio` of the baseline.  The ratio is deliberately generous by
//!   default (`0.10`): CI machines vary wildly, so the gate catches
//!   order-of-magnitude collapses (a lock left held, a busy-wait, an
//!   accidental serialization), not noise.
//! * **Peak heap** (`--cdcl-baseline`/`--cdcl-current`, `BENCH_cdcl.json`):
//!   fails when any shared `(instance, preset)` row's `peak_heap_bytes`
//!   exceeds `max-heap-ratio` (default `1.2`) of the committed baseline.
//!   Heap peaks are near-deterministic — unlike wall clock, a 20% ceiling is
//!   tight enough to catch a leaked arena or an unbounded learnt DB without
//!   flaking on machine speed.  Baseline rows with a zero or missing peak
//!   (older files) are skipped.
//!
//! ```text
//! benchguard [--baseline BENCH_serve.json --current /tmp/BENCH_serve.json [--min-ratio R]]
//!            [--cdcl-baseline BENCH_cdcl.json --cdcl-current /tmp/BENCH_cdcl.json [--max-heap-ratio R]]
//! ```
//!
//! The parser is a purpose-built scan for these two schemas (the workspace
//! is dependency-free): it finds the `"sweeps"` (or `"runs"`) array and
//! pulls the gated fields out of each element.

/// One throughput sweep row: label plus measured rate.
#[derive(Debug, PartialEq)]
struct Sweep {
    label: String,
    jobs_per_sec: f64,
}

/// Extracts the string value following `"key":` in `object`, or `None`.
fn string_field(object: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let rest = after.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// Extracts the numeric value following `"key":` in `object`, or `None`.
fn number_field(object: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Pulls the `sweeps` rows out of a `BENCH_serve.json` document.
fn parse_sweeps(text: &str) -> Result<Vec<Sweep>, String> {
    let start = text
        .find("\"sweeps\"")
        .ok_or_else(|| "no \"sweeps\" array".to_owned())?;
    let after = &text[start..];
    let open = after
        .find('[')
        .ok_or_else(|| "\"sweeps\" is not an array".to_owned())?;
    let close = after[open..]
        .find(']')
        .ok_or_else(|| "unterminated \"sweeps\" array".to_owned())?;
    let body = &after[open + 1..open + close];
    let mut sweeps = Vec::new();
    let mut rest = body;
    while let Some(obj_start) = rest.find('{') {
        let obj_end = rest[obj_start..]
            .find('}')
            .ok_or_else(|| "unterminated sweep object".to_owned())?;
        let object = &rest[obj_start..obj_start + obj_end + 1];
        let label = string_field(object, "label")
            .ok_or_else(|| format!("sweep without label: {object}"))?;
        let jobs_per_sec = number_field(object, "jobs_per_sec")
            .ok_or_else(|| format!("sweep without jobs_per_sec: {object}"))?;
        sweeps.push(Sweep {
            label,
            jobs_per_sec,
        });
        rest = &rest[obj_start + obj_end + 1..];
    }
    if sweeps.is_empty() {
        return Err("empty \"sweeps\" array".to_owned());
    }
    Ok(sweeps)
}

/// One CDCL benchmark row: `(instance, preset)` key plus its peak heap bytes.
#[derive(Debug, PartialEq)]
struct HeapRow {
    key: String,
    peak_heap_bytes: f64,
}

/// Pulls `(instance, preset, peak_heap_bytes)` rows out of a
/// `BENCH_cdcl.json` document.  Run objects nest a `metrics` object, so the
/// scan tracks brace depth instead of cutting at the first `}`.
fn parse_heap_rows(text: &str) -> Result<Vec<HeapRow>, String> {
    let start = text
        .find("\"runs\"")
        .ok_or_else(|| "no \"runs\" array".to_owned())?;
    let after = &text[start..];
    let open = after
        .find('[')
        .ok_or_else(|| "\"runs\" is not an array".to_owned())?;
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut object_start = 0usize;
    let mut closed = false;
    for (i, c) in after[open..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    object_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced braces in \"runs\"".to_owned())?;
                if depth == 0 {
                    let object = &after[open + object_start..open + i + 1];
                    let instance = string_field(object, "instance")
                        .ok_or_else(|| format!("run without instance: {object}"))?;
                    let preset = string_field(object, "preset")
                        .ok_or_else(|| format!("run without preset: {object}"))?;
                    rows.push(HeapRow {
                        key: format!("{instance} [{preset}]"),
                        peak_heap_bytes: number_field(object, "peak_heap_bytes").unwrap_or(0.0),
                    });
                }
            }
            ']' if depth == 0 => {
                closed = true;
                break;
            }
            _ => {}
        }
    }
    if !closed {
        return Err("unterminated \"runs\" array".to_owned());
    }
    if rows.is_empty() {
        return Err("empty \"runs\" array".to_owned());
    }
    Ok(rows)
}

fn usage() -> ! {
    eprintln!(
        "usage: benchguard [--baseline BENCH_serve.json --current BENCH_serve.json [--min-ratio R]] \
         [--cdcl-baseline BENCH_cdcl.json --cdcl-current BENCH_cdcl.json [--max-heap-ratio R]]"
    );
    std::process::exit(2);
}

fn load_sweeps(path: &str) -> Vec<Sweep> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchguard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_sweeps(&text).unwrap_or_else(|e| {
        eprintln!("benchguard: {path}: {e}");
        std::process::exit(2);
    })
}

fn load_heap_rows(path: &str) -> Vec<HeapRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchguard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_heap_rows(&text).unwrap_or_else(|e| {
        eprintln!("benchguard: {path}: {e}");
        std::process::exit(2);
    })
}

/// The serving-throughput gate; returns `true` on regression.
fn gate_sweeps(baseline_path: &str, current_path: &str, min_ratio: f64) -> bool {
    let baseline = load_sweeps(baseline_path);
    let current = load_sweeps(current_path);
    let mut failed = false;
    let mut compared = 0;
    for base in &baseline {
        // Smoke runs may carry fewer sweeps than a full baseline; gate only
        // on the labels both files measured.
        let Some(cur) = current.iter().find(|s| s.label == base.label) else {
            println!(
                "benchguard: {:<16} baseline {:>10.2} jobs/s, not measured in current run (skipped)",
                base.label, base.jobs_per_sec
            );
            continue;
        };
        compared += 1;
        let floor = base.jobs_per_sec * min_ratio;
        let verdict = if cur.jobs_per_sec >= floor {
            "ok"
        } else {
            failed = true;
            "REGRESSION"
        };
        println!(
            "benchguard: {:<16} baseline {:>10.2} jobs/s, current {:>10.2} jobs/s, floor {:>10.2} ({verdict})",
            base.label, base.jobs_per_sec, cur.jobs_per_sec, floor
        );
    }
    if compared == 0 {
        eprintln!("benchguard: no sweep label is shared between baseline and current");
        std::process::exit(2);
    }
    if failed {
        eprintln!(
            "benchguard: serving throughput regressed below {min_ratio} of the committed baseline"
        );
    } else {
        println!("benchguard: {compared} sweep(s) within bounds");
    }
    failed
}

/// The peak-heap gate; returns `true` on regression.
fn gate_heap(baseline_path: &str, current_path: &str, max_ratio: f64) -> bool {
    let baseline = load_heap_rows(baseline_path);
    let current = load_heap_rows(current_path);
    let mut failed = false;
    let mut compared = 0;
    for base in &baseline {
        if base.peak_heap_bytes <= 0.0 {
            continue; // older baseline without memory columns
        }
        // Smoke runs cover fewer instances than a full baseline; gate only
        // on the rows both files measured.
        let Some(cur) = current.iter().find(|r| r.key == base.key) else {
            continue;
        };
        compared += 1;
        let ceiling = base.peak_heap_bytes * max_ratio;
        let verdict = if cur.peak_heap_bytes <= ceiling {
            "ok"
        } else {
            failed = true;
            "HEAP REGRESSION"
        };
        println!(
            "benchguard: {:<44} baseline {:>12.0} B, current {:>12.0} B, ceiling {:>12.0} ({verdict})",
            base.key, base.peak_heap_bytes, cur.peak_heap_bytes, ceiling
        );
    }
    if compared == 0 {
        eprintln!("benchguard: no heap-measured row is shared between baseline and current");
        std::process::exit(2);
    }
    if failed {
        eprintln!(
            "benchguard: peak heap exceeded {max_ratio}x of the committed baseline on some row"
        );
    } else {
        println!("benchguard: {compared} heap row(s) within the {max_ratio}x ceiling");
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut min_ratio = 0.10f64;
    let mut cdcl_baseline_path = None;
    let mut cdcl_current_path = None;
    let mut max_heap_ratio = 1.2f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => baseline_path = Some(value()),
            "--current" => current_path = Some(value()),
            "--min-ratio" => match value().parse::<f64>() {
                Ok(r) if r > 0.0 && r <= 1.0 => min_ratio = r,
                _ => usage(),
            },
            "--cdcl-baseline" => cdcl_baseline_path = Some(value()),
            "--cdcl-current" => cdcl_current_path = Some(value()),
            "--max-heap-ratio" => match value().parse::<f64>() {
                Ok(r) if r >= 1.0 => max_heap_ratio = r,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let serve_pair = match (baseline_path, current_path) {
        (Some(b), Some(c)) => Some((b, c)),
        (None, None) => None,
        _ => usage(),
    };
    let cdcl_pair = match (cdcl_baseline_path, cdcl_current_path) {
        (Some(b), Some(c)) => Some((b, c)),
        (None, None) => None,
        _ => usage(),
    };
    if serve_pair.is_none() && cdcl_pair.is_none() {
        usage();
    }

    let mut failed = false;
    if let Some((baseline, current)) = &serve_pair {
        failed |= gate_sweeps(baseline, current, min_ratio);
    }
    if let Some((baseline, current)) = &cdcl_pair {
        failed |= gate_heap(baseline, current, max_heap_ratio);
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "harness": "satbench-serve",
      "sweeps": [
        {"label": "cold-batch", "jobs": 13, "seconds": 0.1, "jobs_per_sec": 88.46},
        {"label": "warm-batch", "jobs": 13, "seconds": 0.01, "jobs_per_sec": 1435.21}
      ],
      "persist": [{"label": "not-a-sweep", "records_per_sec": 1.0}]
    }"#;

    #[test]
    fn sweeps_parse_labels_and_rates() {
        let sweeps = parse_sweeps(DOC).expect("parses");
        assert_eq!(sweeps.len(), 2, "the persist array is not scanned");
        assert_eq!(sweeps[0].label, "cold-batch");
        assert!((sweeps[0].jobs_per_sec - 88.46).abs() < 1e-9);
        assert_eq!(sweeps[1].label, "warm-batch");
        assert!((sweeps[1].jobs_per_sec - 1435.21).abs() < 1e-9);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_sweeps("{}").is_err());
        assert!(parse_sweeps("{\"sweeps\": []}").is_err());
        assert!(parse_sweeps("{\"sweeps\": [{\"label\": \"x\"}]}").is_err());
    }

    const CDCL_DOC: &str = r#"{
      "harness": "satbench",
      "runs": [
        {"preset": "chaff", "instance": "php-7-6", "peak_heap_bytes": 123456,
         "metrics": {"velv_sat_conflicts": 42, "mem_scope_alloc_bytes_sat.arena": 9000}},
        {"preset": "grasp", "instance": "php-7-6", "time_s": 0.5}
      ]
    }"#;

    #[test]
    fn heap_rows_survive_the_nested_metrics_object() {
        let rows = parse_heap_rows(CDCL_DOC).expect("parses");
        assert_eq!(rows.len(), 2, "the nested metrics braces are not rows");
        assert_eq!(rows[0].key, "php-7-6 [chaff]");
        assert!((rows[0].peak_heap_bytes - 123456.0).abs() < 1e-9);
        assert_eq!(rows[1].key, "php-7-6 [grasp]");
        assert_eq!(
            rows[1].peak_heap_bytes, 0.0,
            "a missing peak reads as zero and is skipped by the gate"
        );
    }

    #[test]
    fn malformed_cdcl_documents_are_rejected() {
        assert!(parse_heap_rows("{}").is_err());
        assert!(parse_heap_rows("{\"runs\": []}").is_err());
        assert!(parse_heap_rows("{\"runs\": [{\"preset\": \"chaff\"}]}").is_err());
        assert!(parse_heap_rows("{\"runs\": [{\"preset\": \"x\", \"instance\": \"y\"}").is_err());
    }
}
