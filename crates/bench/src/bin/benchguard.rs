//! `benchguard` — a perf-regression gate over `BENCH_serve.json` files.
//!
//! Compares the serving-throughput sweeps of a freshly measured
//! `BENCH_serve.json` against a committed baseline and fails (exit 1) when
//! any shared sweep's `jobs_per_sec` falls below `min-ratio` of the
//! baseline.  The ratio is deliberately generous by default (`0.10`): CI
//! machines vary wildly, so the gate catches order-of-magnitude collapses
//! (a lock left held, a busy-wait, an accidental serialization), not noise.
//!
//! ```text
//! benchguard --baseline BENCH_serve.json --current /tmp/BENCH_serve.json [--min-ratio R]
//! ```
//!
//! The parser is a purpose-built scan for this one schema (the workspace is
//! dependency-free): it finds the `"sweeps"` array and pulls `label` and
//! `jobs_per_sec` out of each `{...}` element.

/// One throughput sweep row: label plus measured rate.
#[derive(Debug, PartialEq)]
struct Sweep {
    label: String,
    jobs_per_sec: f64,
}

/// Extracts the string value following `"key":` in `object`, or `None`.
fn string_field(object: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let rest = after.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// Extracts the numeric value following `"key":` in `object`, or `None`.
fn number_field(object: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let after = &object[object.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Pulls the `sweeps` rows out of a `BENCH_serve.json` document.
fn parse_sweeps(text: &str) -> Result<Vec<Sweep>, String> {
    let start = text
        .find("\"sweeps\"")
        .ok_or_else(|| "no \"sweeps\" array".to_owned())?;
    let after = &text[start..];
    let open = after
        .find('[')
        .ok_or_else(|| "\"sweeps\" is not an array".to_owned())?;
    let close = after[open..]
        .find(']')
        .ok_or_else(|| "unterminated \"sweeps\" array".to_owned())?;
    let body = &after[open + 1..open + close];
    let mut sweeps = Vec::new();
    let mut rest = body;
    while let Some(obj_start) = rest.find('{') {
        let obj_end = rest[obj_start..]
            .find('}')
            .ok_or_else(|| "unterminated sweep object".to_owned())?;
        let object = &rest[obj_start..obj_start + obj_end + 1];
        let label = string_field(object, "label")
            .ok_or_else(|| format!("sweep without label: {object}"))?;
        let jobs_per_sec = number_field(object, "jobs_per_sec")
            .ok_or_else(|| format!("sweep without jobs_per_sec: {object}"))?;
        sweeps.push(Sweep {
            label,
            jobs_per_sec,
        });
        rest = &rest[obj_start + obj_end + 1..];
    }
    if sweeps.is_empty() {
        return Err("empty \"sweeps\" array".to_owned());
    }
    Ok(sweeps)
}

fn usage() -> ! {
    eprintln!(
        "usage: benchguard --baseline BENCH_serve.json --current BENCH_serve.json [--min-ratio R]"
    );
    std::process::exit(2);
}

fn load_sweeps(path: &str) -> Vec<Sweep> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchguard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_sweeps(&text).unwrap_or_else(|e| {
        eprintln!("benchguard: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut min_ratio = 0.10f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => baseline_path = Some(value()),
            "--current" => current_path = Some(value()),
            "--min-ratio" => match value().parse::<f64>() {
                Ok(r) if r > 0.0 && r <= 1.0 => min_ratio = r,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        usage();
    };

    let baseline = load_sweeps(&baseline_path);
    let current = load_sweeps(&current_path);
    let mut failed = false;
    let mut compared = 0;
    for base in &baseline {
        // Smoke runs may carry fewer sweeps than a full baseline; gate only
        // on the labels both files measured.
        let Some(cur) = current.iter().find(|s| s.label == base.label) else {
            println!(
                "benchguard: {:<16} baseline {:>10.2} jobs/s, not measured in current run (skipped)",
                base.label, base.jobs_per_sec
            );
            continue;
        };
        compared += 1;
        let floor = base.jobs_per_sec * min_ratio;
        let verdict = if cur.jobs_per_sec >= floor {
            "ok"
        } else {
            failed = true;
            "REGRESSION"
        };
        println!(
            "benchguard: {:<16} baseline {:>10.2} jobs/s, current {:>10.2} jobs/s, floor {:>10.2} ({verdict})",
            base.label, base.jobs_per_sec, cur.jobs_per_sec, floor
        );
    }
    if compared == 0 {
        eprintln!("benchguard: no sweep label is shared between baseline and current");
        std::process::exit(2);
    }
    if failed {
        eprintln!(
            "benchguard: serving throughput regressed below {min_ratio} of the committed baseline"
        );
        std::process::exit(1);
    }
    println!("benchguard: {compared} sweep(s) within bounds");
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "harness": "satbench-serve",
      "sweeps": [
        {"label": "cold-batch", "jobs": 13, "seconds": 0.1, "jobs_per_sec": 88.46},
        {"label": "warm-batch", "jobs": 13, "seconds": 0.01, "jobs_per_sec": 1435.21}
      ],
      "persist": [{"label": "not-a-sweep", "records_per_sec": 1.0}]
    }"#;

    #[test]
    fn sweeps_parse_labels_and_rates() {
        let sweeps = parse_sweeps(DOC).expect("parses");
        assert_eq!(sweeps.len(), 2, "the persist array is not scanned");
        assert_eq!(sweeps[0].label, "cold-batch");
        assert!((sweeps[0].jobs_per_sec - 88.46).abs() < 1e-9);
        assert_eq!(sweeps[1].label, "warm-batch");
        assert!((sweeps[1].jobs_per_sec - 1435.21).abs() < 1e-9);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_sweeps("{}").is_err());
        assert!(parse_sweeps("{\"sweeps\": []}").is_err());
        assert!(parse_sweeps("{\"sweeps\": [{\"label\": \"x\"}]}").is_err());
    }
}
