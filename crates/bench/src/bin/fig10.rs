//! Fig. 10: per-benchmark comparison of the eij and small-domain encodings on
//! the buggy VLIW suite (BerkMin, one run of the tool flow).

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check, suite_size};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{bug_catalog, Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Fig. 10 — per-benchmark eij vs small-domain times (BerkMin)",
        "paper: the eij encoding is faster on 87 of the 100 buggy VLIW designs",
    );
    let config = VliwConfig::base();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let spec = VliwSpecification::new(config);
    let budget = Budget::time_limit(Duration::from_secs(30));

    let mut eij_faster = 0usize;
    println!("{:>4} {:>12} {:>14}", "bug", "eij (s)", "small-dom (s)");
    for (i, &bug) in suite.iter().enumerate() {
        let mut times = Vec::new();
        for options in [
            TranslationOptions::base(),
            TranslationOptions::base().with_small_domain(),
        ] {
            let verifier = Verifier::new(options);
            let start = Instant::now();
            let mut solver = CdclSolver::berkmin();
            let _ = verifier.verify_with_budget(
                &Vliw::buggy(config, bug),
                &spec,
                &mut solver,
                budget.clone(),
            );
            times.push(start.elapsed());
        }
        if times[0] <= times[1] {
            eij_faster += 1;
        }
        println!(
            "{:>4} {:>12.3} {:>14.3}",
            i,
            times[0].as_secs_f64(),
            times[1].as_secs_f64()
        );
    }
    println!("eij faster on {eij_faster} of {} designs", suite.len());
    shape_check(
        "the eij encoding is faster on the majority of the buggy designs",
        eij_faster * 2 >= suite.len(),
    );
}
