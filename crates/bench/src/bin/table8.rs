//! Table 8: decomposed evaluation on the *correct* VLIW designs — the
//! verification time is the maximum over the weak criteria (all of them must
//! be proven).

use std::time::Instant;
use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 8 — decomposition on the correct 9VLIW-MC-BP and 9VLIW-MC-BP-EX",
        "paper: 9VLIW-MC-BP Chaff 759s -> 349s (8 runs) -> 264s (16); BerkMin 224 -> 134 -> 63; EX variant similar with 11/22 runs",
    );
    for (config, splits) in [
        (VliwConfig::base(), [1usize, 8, 16]),
        (VliwConfig::with_exceptions(), [1usize, 11, 22]),
    ] {
        let implementation = Vliw::correct(config);
        let spec = VliwSpecification::new(config);
        let verifier = Verifier::new(TranslationOptions::base());
        println!("--- {}", config.name());
        let mut times = Vec::new();
        for &n in &splits {
            let start = Instant::now();
            let (all_correct, max_primary) = if n == 1 {
                let translation = verifier.translate(&implementation, &spec);
                let mut solver = CdclSolver::chaff();
                let verdict = verifier.check(&translation, &mut solver, Budget::unlimited());
                (verdict.is_correct(), translation.stats.primary_bool_vars)
            } else {
                let problem = verifier.build_problem(&implementation, &spec);
                let translations = verifier.translate_obligations(&problem, n);
                let mut ok = true;
                let mut max_primary = 0;
                // Parallel runs: the verification time is the maximum single
                // obligation time, which we approximate by the longest check.
                let mut max_single = std::time::Duration::ZERO;
                for t in &translations {
                    let mut solver = CdclSolver::chaff();
                    let s = Instant::now();
                    ok &= verifier
                        .check(t, &mut solver, Budget::unlimited())
                        .is_correct();
                    max_single = max_single.max(s.elapsed());
                    max_primary = max_primary.max(t.stats.primary_bool_vars);
                }
                println!(
                    "    ({} obligations, longest single obligation {:.3} s)",
                    translations.len(),
                    max_single.as_secs_f64()
                );
                (ok, max_primary)
            };
            let elapsed = start.elapsed();
            println!(
                "  {:>2} weak criteria: total {:>8.3} s, max primary vars {:>6}, all proven: {}",
                n,
                elapsed.as_secs_f64(),
                max_primary,
                all_correct
            );
            times.push((n, elapsed, all_correct));
        }
        shape_check(
            &format!(
                "{}: every weak criterion of the correct design is proven",
                config.name()
            ),
            times.iter().all(|(_, _, ok)| *ok),
        );
    }
}
