//! Section 4 prose: CNF sizes of the correctness formulas of the benchmark
//! designs and verification times of the correct versions.

use std::time::Instant;
use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_hdl::Processor;
use velv_models::dlx::{Dlx, DlxConfig, DlxSpecification};
use velv_models::vliw::{Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Section 4 — CNF statistics and correct-design verification times",
        "paper: 1xDLX-C 776 vars / 3,725 clauses; 2xDLX-CC 1,516 / 12,812; 2xDLX-CC-MC-EX-BP 4,583 / 41,704; 9VLIW-MC-BP 20,093 / 179,492",
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "design", "cnf vars", "clauses", "primary", "chaff (s)", "berkmin (s)"
    );
    let verifier = Verifier::new(TranslationOptions::base());
    let mut sizes = Vec::new();
    let designs: Vec<(Box<dyn Processor>, Box<dyn Processor>)> = vec![
        (
            Box::new(Dlx::correct(DlxConfig::single_issue())),
            Box::new(DlxSpecification::new(DlxConfig::single_issue())),
        ),
        (
            Box::new(Dlx::correct(DlxConfig::dual_issue())),
            Box::new(DlxSpecification::new(DlxConfig::dual_issue())),
        ),
        (
            Box::new(Dlx::correct(DlxConfig::dual_issue_full())),
            Box::new(DlxSpecification::new(DlxConfig::dual_issue_full())),
        ),
        (
            Box::new(Vliw::correct(VliwConfig::base())),
            Box::new(VliwSpecification::new(VliwConfig::base())),
        ),
    ];
    for (implementation, spec) in &designs {
        let translation = verifier.translate(implementation.as_ref(), spec.as_ref());
        let mut times = Vec::new();
        for mut solver in [CdclSolver::chaff(), CdclSolver::berkmin()] {
            let start = Instant::now();
            let verdict = verifier.check(&translation, &mut solver, Budget::unlimited());
            assert!(
                verdict.is_correct(),
                "{} must verify",
                implementation.name()
            );
            times.push(start.elapsed().as_secs_f64());
        }
        println!(
            "{:<22} {:>10} {:>10} {:>12} {:>12.3} {:>12.3}",
            implementation.name(),
            translation.stats.cnf_vars,
            translation.stats.cnf_clauses,
            translation.stats.primary_bool_vars,
            times[0],
            times[1]
        );
        sizes.push(translation.stats.cnf_clauses);
    }
    shape_check(
        "formula sizes grow monotonically from 1xDLX-C to 2xDLX-CC to the full dual-issue to the VLIW",
        sizes.windows(2).all(|w| w[0] <= w[1]),
    );
}
