//! Table 6: decomposed (weak-criteria) evaluation on the buggy VLIW suite —
//! minimum / maximum / average bug-detection time with 1, 8 and 16 parallel
//! weak criteria (the fastest falsified obligation detects the bug).

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check, suite_size, summarize};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{bug_catalog, Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 6 — decomposition on buggy 9VLIW-MC-BP (Chaff)",
        "paper: 1 run min 3.7 max 180.4 avg 32.5; 8 runs 0.3/31.3/4.1; 16 runs 0.2/17.5/2.8",
    );
    let config = VliwConfig::base();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let spec = VliwSpecification::new(config);
    let verifier = Verifier::new(TranslationOptions::base());
    let budget = Budget::time_limit(Duration::from_secs(30));

    let mut summaries = Vec::new();
    for &obligations in &[1usize, 8, 16] {
        let times: Vec<Duration> = suite
            .iter()
            .map(|&bug| {
                let implementation = Vliw::buggy(config, bug);
                if obligations == 1 {
                    let start = Instant::now();
                    let mut solver = CdclSolver::chaff();
                    let _ = verifier.verify_with_budget(
                        &implementation,
                        &spec,
                        &mut solver,
                        budget.clone(),
                    );
                    start.elapsed()
                } else {
                    // Parallel weak criteria: the detection time is the time of
                    // the fastest falsified obligation.
                    let problem = verifier.build_problem(&implementation, &spec);
                    let translations = verifier.translate_obligations(&problem, obligations);
                    translations
                        .iter()
                        .filter_map(|t| {
                            let mut solver = CdclSolver::chaff();
                            let start = Instant::now();
                            let verdict = verifier.check(t, &mut solver, budget.clone());
                            verdict.is_buggy().then(|| start.elapsed())
                        })
                        .min()
                        .unwrap_or_else(|| Duration::from_secs(30))
                }
            })
            .collect();
        let summary = summarize(&times);
        println!(
            "{:>3} weak criteria: min {:>8.3} s  max {:>8.3} s  avg {:>8.3} s",
            obligations, summary.min, summary.max, summary.mean
        );
        summaries.push(summary);
    }
    shape_check(
        "decomposition reduces the average bug-detection time",
        summaries[2].mean <= summaries[0].mean * 1.05,
    );
}
