//! Table 9: satisfiability-checking time with and without positive equality.
//!
//! Without positive equality every term variable is treated as a g-term (the
//! original Goel et al. encoding), which blows up the formula; the paper
//! reports time-outs and memory-outs for the larger designs.

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_hdl::Processor;
use velv_models::dlx::{bug_catalog as dlx_bugs, Dlx, DlxConfig, DlxSpecification};
use velv_models::vliw::{bug_catalog as vliw_bugs, Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn run(
    name: &str,
    implementation: &dyn Processor,
    spec: &dyn Processor,
    limit: Duration,
) -> (f64, f64, bool) {
    let mut times = Vec::new();
    let mut decided_with_pe = false;
    for options in [
        TranslationOptions::base(),
        TranslationOptions::base().without_positive_equality(),
    ] {
        let with_pe = options.positive_equality;
        let verifier = Verifier::new(options);
        let start = Instant::now();
        let translation = verifier.translate(implementation, spec);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.check(&translation, &mut solver, Budget::time_limit(limit));
        let elapsed = start.elapsed().as_secs_f64();
        if with_pe {
            decided_with_pe = verdict.is_correct() || verdict.is_buggy();
        }
        times.push(elapsed);
    }
    println!("{:<30} {:>16.3} {:>20.3}", name, times[0], times[1]);
    (times[0], times[1], decided_with_pe)
}

fn main() {
    print_header(
        "Table 9 — with and without positive equality (Chaff)",
        "paper: 1xDLX-C 0.19s vs 9177s; 2xDLX-CC-MC-EX-BP 22s vs >24h; 9VLIW-MC-BP 759s vs out of memory",
    );
    println!(
        "{:<30} {:>16} {:>20}",
        "benchmark", "pos.eq. (s)", "no pos.eq. (s)"
    );
    let limit = Duration::from_secs(60);
    let mut rows = Vec::new();

    let dlx1 = DlxConfig::single_issue();
    rows.push(run(
        "1xDLX-C",
        &Dlx::correct(dlx1),
        &DlxSpecification::new(dlx1),
        limit,
    ));
    let bug = dlx_bugs(dlx1)[0];
    rows.push(run(
        "1xDLX-C-buggy",
        &Dlx::buggy(dlx1, bug),
        &DlxSpecification::new(dlx1),
        limit,
    ));

    let dlx2 = DlxConfig::dual_issue_full();
    rows.push(run(
        "2xDLX-CC-MC-EX-BP",
        &Dlx::correct(dlx2),
        &DlxSpecification::new(dlx2),
        limit,
    ));
    let bug = dlx_bugs(dlx2)[0];
    rows.push(run(
        "2xDLX-CC-MC-EX-BP-buggy",
        &Dlx::buggy(dlx2, bug),
        &DlxSpecification::new(dlx2),
        limit,
    ));

    let vliw = VliwConfig::base();
    rows.push(run(
        "9VLIW-MC-BP",
        &Vliw::correct(vliw),
        &VliwSpecification::new(vliw),
        limit,
    ));
    let bug = vliw_bugs(vliw)[0];
    rows.push(run(
        "9VLIW-MC-BP-buggy",
        &Vliw::buggy(vliw, bug),
        &VliwSpecification::new(vliw),
        limit,
    ));

    shape_check(
        "every benchmark is decided with positive equality enabled",
        rows.iter().all(|(_, _, decided)| *decided),
    );
    shape_check(
        "disabling positive equality never speeds things up",
        rows.iter()
            .all(|(with, without, _)| *without >= *with * 0.8),
    );
}
