//! Table 1: comparison of SAT procedures on the buggy versions of
//! 2×DLX-CC-MC-EX-BP — fraction of the suite each procedure solves within
//! increasing time limits.

use std::time::Duration;
use velv_bench::{print_header, shape_check, suite_size};
use velv_core::{TranslationOptions, Verifier};
use velv_models::dlx::{bug_catalog, Dlx, DlxConfig, DlxSpecification};
use velv_sat::presets::SolverKind;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 1 — SAT procedures on buggy 2xDLX-CC-MC-EX-BP",
        "paper: Chaff 100%/100%/100%, BerkMin 97/100/100, DLM-3 51/82/98, GRASP 14/21/24, BDDs 2/2/3 (limits 24/240/2400 s)",
    );
    let config = DlxConfig::dual_issue_full();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);

    // Scaled time limits (the paper used 24/240/2400 s on a 336 MHz machine).
    let limits = [
        Duration::from_millis(250),
        Duration::from_millis(2500),
        Duration::from_secs(25),
    ];

    // Translate once per buggy design, then give each solver the same CNF.
    let translations: Vec<_> = suite
        .iter()
        .map(|&bug| verifier.translate(&Dlx::buggy(config, bug), &spec))
        .collect();

    println!(
        "{:<42} {:>10} {:>10} {:>10}",
        "SAT procedure", "<0.25s", "<2.5s", "<25s"
    );
    let mut chaff_solved = 0usize;
    let mut dpll_solved = 0usize;
    for kind in SolverKind::all() {
        let mut solved = [0usize; 3];
        for translation in &translations {
            for (i, limit) in limits.iter().enumerate() {
                let mut solver = kind.build();
                let verdict =
                    verifier.check(translation, solver.as_mut(), Budget::time_limit(*limit));
                if verdict.is_buggy() {
                    solved[i] += 1;
                }
            }
        }
        let pct = |n: usize| 100.0 * n as f64 / translations.len().max(1) as f64;
        println!(
            "{:<42} {:>9.0}% {:>9.0}% {:>9.0}%",
            kind.label(),
            pct(solved[0]),
            pct(solved[1]),
            pct(solved[2])
        );
        if *kind == SolverKind::Chaff {
            chaff_solved = solved[2];
        }
        if *kind == SolverKind::Dpll {
            dpll_solved = solved[2];
        }
    }
    // BDD back end row.
    let mut bdd_solved = 0usize;
    for translation in &translations {
        if verifier.check_with_bdds(translation, 200_000).is_buggy() {
            bdd_solved += 1;
        }
    }
    println!(
        "{:<42} {:>9.0}% (node-limited)",
        "BDDs (CUDD analogue)",
        100.0 * bdd_solved as f64 / translations.len().max(1) as f64
    );

    shape_check(
        "Chaff-class CDCL solves the whole suite within the largest limit",
        chaff_solved == translations.len(),
    );
    shape_check(
        "non-learning DPLL and BDDs solve strictly fewer instances than CDCL",
        dpll_solved <= chaff_solved && bdd_solved <= chaff_solved,
    );
}
