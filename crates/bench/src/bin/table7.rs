//! Table 7: the four "actual design bugs" made while extending the VLIW with
//! exceptions (9VLIW-MC-BP-EX), detected with a monolithic criterion and with
//! ~20 weak criteria evaluated in parallel.

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{Vliw, VliwBug, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Table 7 — four design bugs of 9VLIW-MC-BP-EX, monolithic vs decomposed",
        "paper: Chaff detects them in 12.2–108.4 s monolithically; ~20 weak criteria reduce the times roughly 2x",
    );
    let config = VliwConfig::with_exceptions();
    let spec = VliwSpecification::new(config);
    let verifier = Verifier::new(TranslationOptions::base());
    let budget = Budget::time_limit(Duration::from_secs(60));
    let bugs = [
        VliwBug::EpcNotSaved,
        VliwBug::ExceptionIgnoredByWrite { slot: 0 },
        VliwBug::CfmUpdatedSpeculatively,
        VliwBug::NoSquashOnMispredict,
    ];

    println!(
        "{:<34} {:>16} {:>16} {:>14}",
        "bug", "monolithic (s)", "decomposed (s)", "primary vars"
    );
    let mut all_detected = true;
    for (i, &bug) in bugs.iter().enumerate() {
        let implementation = Vliw::buggy(config, bug);
        let translation = verifier.translate(&implementation, &spec);
        let mut solver = CdclSolver::chaff();
        let start = Instant::now();
        let mono_verdict = verifier.check(&translation, &mut solver, budget.clone());
        let mono_time = start.elapsed();

        let problem = verifier.build_problem(&implementation, &spec);
        let obligations = verifier.translate_obligations(&problem, 20);
        let decomposed_time = obligations
            .iter()
            .filter_map(|t| {
                let mut solver = CdclSolver::chaff();
                let start = Instant::now();
                let verdict = verifier.check(t, &mut solver, budget.clone());
                verdict.is_buggy().then(|| start.elapsed())
            })
            .min()
            .unwrap_or(Duration::from_secs(60));

        all_detected &= mono_verdict.is_buggy();
        println!(
            "{:<34} {:>16.3} {:>16.3} {:>14}",
            format!("Bug{} ({bug:?})", i + 1),
            mono_time.as_secs_f64(),
            decomposed_time.as_secs_f64(),
            translation.stats.primary_bool_vars
        );
    }
    shape_check("all four design bugs are detected", all_detected);
}
