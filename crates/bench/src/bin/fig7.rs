//! Fig. 7: Chaff (one monolithic run) vs BDDs (16 decomposed parallel runs) on
//! the buggy VLIW suite.  The BDD runs are node-limited, which plays the role
//! of the memory limit of the paper's machine.

use std::time::{Duration, Instant};
use velv_bench::{print_header, shape_check, suite_size};
use velv_core::{TranslationOptions, Verifier};
use velv_models::vliw::{bug_catalog, Vliw, VliwConfig, VliwSpecification};
use velv_sat::cdcl::CdclSolver;
use velv_sat::Budget;

fn main() {
    print_header(
        "Fig. 7 — Chaff (1 monolithic run) vs BDDs (decomposed, 16 runs) on buggy 9VLIW-MC-BP",
        "paper: the difference is up to four orders of magnitude in favour of Chaff",
    );
    let config = VliwConfig::base();
    let suite: Vec<_> = bug_catalog(config)
        .into_iter()
        .take(suite_size(100))
        .collect();
    let spec = VliwSpecification::new(config);
    let verifier = Verifier::new(TranslationOptions::base());
    let budget = Budget::time_limit(Duration::from_secs(30));
    let bdd_node_limit = 300_000;

    println!(
        "{:>4} {:>12} {:>14} {:>10}",
        "bug", "chaff (s)", "bdd-16 (s)", "bdd found"
    );
    let mut chaff_total = 0.0;
    let mut bdd_total = 0.0;
    let mut chaff_found = 0usize;
    let mut bdd_found = 0usize;
    for (i, &bug) in suite.iter().enumerate() {
        let implementation = Vliw::buggy(config, bug);
        let start = Instant::now();
        let mut solver = CdclSolver::chaff();
        let verdict =
            verifier.verify_with_budget(&implementation, &spec, &mut solver, budget.clone());
        let chaff_time = start.elapsed().as_secs_f64();
        chaff_found += verdict.is_buggy() as usize;

        // BDD evaluation of 16 weak criteria "in parallel": minimum time of a
        // falsified obligation, or the total if none is found.
        let problem = verifier.build_problem(&implementation, &spec);
        let translations = verifier.translate_obligations(&problem, 16);
        let start = Instant::now();
        let mut best: Option<f64> = None;
        for t in &translations {
            let s = Instant::now();
            let v = verifier.check_with_bdds(t, bdd_node_limit);
            if v.is_buggy() {
                let elapsed = s.elapsed().as_secs_f64();
                best = Some(best.map_or(elapsed, |b: f64| b.min(elapsed)));
            }
        }
        let bdd_time = best.unwrap_or(start.elapsed().as_secs_f64());
        bdd_found += best.is_some() as usize;

        chaff_total += chaff_time;
        bdd_total += bdd_time;
        println!(
            "{:>4} {:>12.3} {:>14.3} {:>10}",
            i,
            chaff_time,
            bdd_time,
            best.is_some()
        );
    }
    println!(
        "chaff: {}/{} bugs found, total {:.3} s; BDDs: {}/{} bugs found, total {:.3} s",
        chaff_found,
        suite.len(),
        chaff_total,
        bdd_found,
        suite.len(),
        bdd_total
    );
    shape_check(
        "Chaff finds every bug of the suite",
        chaff_found == suite.len(),
    );
    shape_check(
        "the SAT back end dominates the BDD back end (more bugs found or less total time)",
        chaff_found >= bdd_found && (bdd_found < suite.len() || chaff_total <= bdd_total),
    );
}
