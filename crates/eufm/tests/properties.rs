//! Property-based tests of the EUFM context, evaluator and polarity analysis.

use proptest::prelude::*;
use velv_eufm::{Context, Evaluator, FormulaId, Interpretation, PolarityAnalysis, Support};

/// A small AST we generate randomly and then lower into a `Context`, so that
/// shrinking works on a plain value type.
#[derive(Clone, Debug)]
enum Ast {
    Var(u8),
    PropVar(u8),
    Eq(Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    And(Box<Ast>, Box<Ast>),
    Or(Box<Ast>, Box<Ast>),
    IteF(Box<Ast>, Box<Ast>, Box<Ast>),
}

/// Term-level AST used inside equations.
#[derive(Clone, Debug)]
enum TAst {
    Var(u8),
    Uf(u8, Vec<TAst>),
    Ite(Box<Ast>, Box<TAst>, Box<TAst>),
}

fn term_strategy() -> impl Strategy<Value = TAst> {
    let leaf = (0u8..6).prop_map(TAst::Var);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..3, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| TAst::Uf(f, args)),
            (formula_leaf(), inner.clone(), inner).prop_map(|(c, a, b)| TAst::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn formula_leaf() -> impl Strategy<Value = Ast> {
    prop_oneof![
        (0u8..4).prop_map(Ast::PropVar),
        (0u8..6, 0u8..6).prop_map(|(a, b)| Ast::Eq(Box::new(Ast::Var(a)), Box::new(Ast::Var(b)))),
    ]
}

fn formula_strategy() -> impl Strategy<Value = Ast> {
    let leaf = formula_leaf();
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Ast::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| Ast::IteF(Box::new(c), Box::new(a), Box::new(b))),
        ]
    })
}

fn lower_term(ctx: &mut Context, t: &TAst) -> velv_eufm::TermId {
    match t {
        TAst::Var(i) => ctx.term_var(&format!("v{i}")),
        TAst::Uf(f, args) => {
            let lowered: Vec<_> = args.iter().map(|a| lower_term(ctx, a)).collect();
            ctx.uf(&format!("f{f}"), lowered)
        }
        TAst::Ite(c, a, b) => {
            let cf = lower(ctx, c);
            let at = lower_term(ctx, a);
            let bt = lower_term(ctx, b);
            ctx.ite_term(cf, at, bt)
        }
    }
}

fn lower(ctx: &mut Context, ast: &Ast) -> FormulaId {
    match ast {
        Ast::Var(i) => ctx.term_var(&format!("v{i}")).pipe_eq_self(ctx),
        Ast::PropVar(i) => ctx.prop_var(&format!("p{i}")),
        Ast::Eq(a, b) => {
            let (a, b) = (term_of(ctx, a), term_of(ctx, b));
            ctx.eq(a, b)
        }
        Ast::Not(a) => {
            let f = lower(ctx, a);
            ctx.not(f)
        }
        Ast::And(a, b) => {
            let (fa, fb) = (lower(ctx, a), lower(ctx, b));
            ctx.and(fa, fb)
        }
        Ast::Or(a, b) => {
            let (fa, fb) = (lower(ctx, a), lower(ctx, b));
            ctx.or(fa, fb)
        }
        Ast::IteF(c, a, b) => {
            let (fc, fa, fb) = (lower(ctx, c), lower(ctx, a), lower(ctx, b));
            ctx.ite_formula(fc, fa, fb)
        }
    }
}

fn term_of(ctx: &mut Context, ast: &Ast) -> velv_eufm::TermId {
    match ast {
        Ast::Var(i) => ctx.term_var(&format!("v{i}")),
        _ => ctx.term_var("v0"),
    }
}

trait PipeEqSelf {
    fn pipe_eq_self(self, ctx: &mut Context) -> FormulaId;
}

impl PipeEqSelf for velv_eufm::TermId {
    fn pipe_eq_self(self, ctx: &mut Context) -> FormulaId {
        // A term used where a formula is expected: wrap it as `t = t`, i.e. `true`.
        ctx.eq(self, self)
    }
}

fn interpretation_from_seed(ctx: &mut Context, seed: u64) -> Interpretation {
    let mut interp = Interpretation::new();
    for i in 0..6u8 {
        let value = (seed >> (i * 2)) & 0x3;
        interp.set_term_var(ctx, &format!("v{i}"), value);
    }
    for i in 0..4u8 {
        let value = (seed >> (16 + i)) & 1 == 1;
        interp.set_prop_var(ctx, &format!("p{i}"), value);
    }
    interp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hash-consing: lowering the same AST twice yields the same node id.
    #[test]
    fn lowering_is_deterministic(ast in formula_strategy()) {
        let mut ctx = Context::new();
        let f1 = lower(&mut ctx, &ast);
        let f2 = lower(&mut ctx, &ast);
        prop_assert_eq!(f1, f2);
    }

    /// Local simplifications never change the truth value of a formula.
    #[test]
    fn double_negation_preserves_value(ast in formula_strategy(), seed in any::<u64>()) {
        let mut ctx = Context::new();
        let f = lower(&mut ctx, &ast);
        let nn = ctx.not(f);
        let nn = ctx.not(nn);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        prop_assert_eq!(ev.eval_formula(f), ev.eval_formula(nn));
    }

    /// De Morgan dual forms evaluate identically.
    #[test]
    fn de_morgan(ast1 in formula_strategy(), ast2 in formula_strategy(), seed in any::<u64>()) {
        let mut ctx = Context::new();
        let a = lower(&mut ctx, &ast1);
        let b = lower(&mut ctx, &ast2);
        let conj = ctx.and(a, b);
        let lhs = ctx.not(conj);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        let rhs = ctx.or(na, nb);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        prop_assert_eq!(ev.eval_formula(lhs), ev.eval_formula(rhs));
    }

    /// The implication `a ⇒ a` is always true and `a ∧ ¬a` is always false.
    #[test]
    fn tautology_and_contradiction(ast in formula_strategy(), seed in any::<u64>()) {
        let mut ctx = Context::new();
        let a = lower(&mut ctx, &ast);
        let taut = ctx.implies(a, a);
        let na = ctx.not(a);
        let contra = ctx.and(a, na);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        prop_assert!(ev.eval_formula(taut));
        prop_assert!(!ev.eval_formula(contra));
    }

    /// Equation evaluation agrees with the values of its sides.
    #[test]
    fn equation_matches_term_values(t1 in term_strategy(), t2 in term_strategy(), seed in any::<u64>()) {
        let mut ctx = Context::new();
        let a = lower_term(&mut ctx, &t1);
        let b = lower_term(&mut ctx, &t2);
        let eq = ctx.eq(a, b);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        let va = ev.eval_term(a).as_data();
        let vb = ev.eval_term(b).as_data();
        prop_assert_eq!(ev.eval_formula(eq), va == vb);
    }

    /// Every equation reported by the polarity analysis is reachable, and the
    /// g/p symbol sets are disjoint.
    #[test]
    fn polarity_classification_is_consistent(ast in formula_strategy()) {
        let mut ctx = Context::new();
        let f = lower(&mut ctx, &ast);
        let analysis = PolarityAnalysis::run(&ctx, f);
        for sym in &analysis.p_symbols {
            prop_assert!(!analysis.g_symbols.contains(sym));
        }
        let support = Support::of_formula(&ctx, f);
        for (eq, _) in &analysis.equations {
            // Equations found by the analysis mention only variables in the support.
            let eq_support = Support::of_formula(&ctx, *eq);
            for v in &eq_support.term_vars {
                prop_assert!(support.term_vars.contains(v));
            }
        }
    }
}
