//! Randomized property tests of the EUFM context, evaluator and polarity
//! analysis, driven by a deterministic seed so failures reproduce exactly.

use velv_eufm::{Context, Evaluator, FormulaId, Interpretation, PolarityAnalysis, Support};

/// A small AST we generate randomly and then lower into a `Context`, so the
/// generator stays independent of hash-consing.
#[derive(Clone, Debug)]
enum Ast {
    PropVar(u8),
    Eq(u8, u8),
    Not(Box<Ast>),
    And(Box<Ast>, Box<Ast>),
    Or(Box<Ast>, Box<Ast>),
    IteF(Box<Ast>, Box<Ast>, Box<Ast>),
}

/// Term-level AST used inside equations.
#[derive(Clone, Debug)]
enum TAst {
    Var(u8),
    Uf(u8, Vec<TAst>),
    Ite(Box<Ast>, Box<TAst>, Box<TAst>),
}

/// Deterministic SplitMix64, independent of any external crate (same
/// construction as `velv_sat::rng`, duplicated here because this crate has no
/// dependencies).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_leaf(rng: &mut Rng) -> Ast {
    if rng.below(2) == 0 {
        Ast::PropVar(rng.below(4) as u8)
    } else {
        Ast::Eq(rng.below(6) as u8, rng.below(6) as u8)
    }
}

fn random_formula(rng: &mut Rng, depth: u32) -> Ast {
    if depth == 0 {
        return random_leaf(rng);
    }
    match rng.below(5) {
        0 => random_leaf(rng),
        1 => Ast::Not(Box::new(random_formula(rng, depth - 1))),
        2 => Ast::And(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
        3 => Ast::Or(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
        _ => Ast::IteF(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
    }
}

fn random_term(rng: &mut Rng, depth: u32) -> TAst {
    if depth == 0 {
        return TAst::Var(rng.below(6) as u8);
    }
    match rng.below(3) {
        0 => TAst::Var(rng.below(6) as u8),
        1 => {
            let arity = 1 + rng.below(2) as usize;
            let args = (0..arity).map(|_| random_term(rng, depth - 1)).collect();
            TAst::Uf(rng.below(3) as u8, args)
        }
        _ => TAst::Ite(
            Box::new(random_leaf(rng)),
            Box::new(random_term(rng, depth - 1)),
            Box::new(random_term(rng, depth - 1)),
        ),
    }
}

fn lower_term(ctx: &mut Context, t: &TAst) -> velv_eufm::TermId {
    match t {
        TAst::Var(i) => ctx.term_var(&format!("v{i}")),
        TAst::Uf(f, args) => {
            let lowered: Vec<_> = args.iter().map(|a| lower_term(ctx, a)).collect();
            ctx.uf(&format!("f{f}"), lowered)
        }
        TAst::Ite(c, a, b) => {
            let cf = lower(ctx, c);
            let at = lower_term(ctx, a);
            let bt = lower_term(ctx, b);
            ctx.ite_term(cf, at, bt)
        }
    }
}

fn lower(ctx: &mut Context, ast: &Ast) -> FormulaId {
    match ast {
        Ast::PropVar(i) => ctx.prop_var(&format!("p{i}")),
        Ast::Eq(a, b) => {
            let ta = ctx.term_var(&format!("v{a}"));
            let tb = ctx.term_var(&format!("v{b}"));
            ctx.eq(ta, tb)
        }
        Ast::Not(a) => {
            let f = lower(ctx, a);
            ctx.not(f)
        }
        Ast::And(a, b) => {
            let (fa, fb) = (lower(ctx, a), lower(ctx, b));
            ctx.and(fa, fb)
        }
        Ast::Or(a, b) => {
            let (fa, fb) = (lower(ctx, a), lower(ctx, b));
            ctx.or(fa, fb)
        }
        Ast::IteF(c, a, b) => {
            let (fc, fa, fb) = (lower(ctx, c), lower(ctx, a), lower(ctx, b));
            ctx.ite_formula(fc, fa, fb)
        }
    }
}

fn interpretation_from_seed(ctx: &mut Context, seed: u64) -> Interpretation {
    let mut interp = Interpretation::new();
    for i in 0..6u8 {
        let value = (seed >> (i * 2)) & 0x3;
        interp.set_term_var(ctx, &format!("v{i}"), value);
    }
    for i in 0..4u8 {
        let value = (seed >> (16 + i)) & 1 == 1;
        interp.set_prop_var(ctx, &format!("p{i}"), value);
    }
    interp
}

const CASES: u64 = 128;

/// Hash-consing: lowering the same AST twice yields the same node id.
#[test]
fn lowering_is_deterministic() {
    let mut rng = Rng(0xE0F1);
    for _ in 0..CASES {
        let ast = random_formula(&mut rng, 4);
        let mut ctx = Context::new();
        let f1 = lower(&mut ctx, &ast);
        let f2 = lower(&mut ctx, &ast);
        assert_eq!(f1, f2, "{ast:?}");
    }
}

/// Local simplifications never change the truth value of a formula.
#[test]
fn double_negation_preserves_value() {
    let mut rng = Rng(0xE0F2);
    for _ in 0..CASES {
        let ast = random_formula(&mut rng, 4);
        let seed = rng.next();
        let mut ctx = Context::new();
        let f = lower(&mut ctx, &ast);
        let nn = ctx.not(f);
        let nn = ctx.not(nn);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        assert_eq!(ev.eval_formula(f), ev.eval_formula(nn), "{ast:?}");
    }
}

/// De Morgan dual forms evaluate identically.
#[test]
fn de_morgan() {
    let mut rng = Rng(0xE0F3);
    for _ in 0..CASES {
        let ast1 = random_formula(&mut rng, 3);
        let ast2 = random_formula(&mut rng, 3);
        let seed = rng.next();
        let mut ctx = Context::new();
        let a = lower(&mut ctx, &ast1);
        let b = lower(&mut ctx, &ast2);
        let conj = ctx.and(a, b);
        let lhs = ctx.not(conj);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        let rhs = ctx.or(na, nb);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        assert_eq!(ev.eval_formula(lhs), ev.eval_formula(rhs));
    }
}

/// The implication `a ⇒ a` is always true and `a ∧ ¬a` is always false.
#[test]
fn tautology_and_contradiction() {
    let mut rng = Rng(0xE0F4);
    for _ in 0..CASES {
        let ast = random_formula(&mut rng, 4);
        let seed = rng.next();
        let mut ctx = Context::new();
        let a = lower(&mut ctx, &ast);
        let taut = ctx.implies(a, a);
        let na = ctx.not(a);
        let contra = ctx.and(a, na);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(ev.eval_formula(taut));
        assert!(!ev.eval_formula(contra));
    }
}

/// Equation evaluation agrees with the values of its sides.
#[test]
fn equation_matches_term_values() {
    let mut rng = Rng(0xE0F5);
    for _ in 0..CASES {
        let t1 = random_term(&mut rng, 3);
        let t2 = random_term(&mut rng, 3);
        let seed = rng.next();
        let mut ctx = Context::new();
        let a = lower_term(&mut ctx, &t1);
        let b = lower_term(&mut ctx, &t2);
        let eq = ctx.eq(a, b);
        let interp = interpretation_from_seed(&mut ctx, seed);
        let mut ev = Evaluator::new(&ctx, interp);
        let va = ev.eval_term(a).as_data();
        let vb = ev.eval_term(b).as_data();
        assert_eq!(ev.eval_formula(eq), va == vb);
    }
}

/// Every equation reported by the polarity analysis is reachable, and the
/// g/p symbol sets are disjoint.
#[test]
fn polarity_classification_is_consistent() {
    let mut rng = Rng(0xE0F6);
    for _ in 0..CASES {
        let ast = random_formula(&mut rng, 4);
        let mut ctx = Context::new();
        let f = lower(&mut ctx, &ast);
        let analysis = PolarityAnalysis::run(&ctx, f);
        for sym in &analysis.p_symbols {
            assert!(!analysis.g_symbols.contains(sym));
        }
        let support = Support::of_formula(&ctx, f);
        for eq in analysis.equations.keys() {
            // Equations found by the analysis mention only variables in the support.
            let eq_support = Support::of_formula(&ctx, *eq);
            for v in &eq_support.term_vars {
                assert!(support.term_vars.contains(v));
            }
        }
    }
}
