//! Statistics over the expression DAG reachable from a formula.

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use std::collections::HashSet;

/// Node counts of the DAG reachable from one root formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DagStats {
    /// Distinct term-variable nodes.
    pub term_vars: usize,
    /// Distinct uninterpreted-function application nodes.
    pub uf_apps: usize,
    /// Distinct term-level `ITE` nodes.
    pub term_ites: usize,
    /// Distinct `read` nodes.
    pub reads: usize,
    /// Distinct `write` nodes.
    pub writes: usize,
    /// Distinct propositional-variable nodes.
    pub prop_vars: usize,
    /// Distinct uninterpreted-predicate application nodes.
    pub up_apps: usize,
    /// Distinct equation nodes.
    pub equations: usize,
    /// Distinct Boolean connective nodes (`not`, `and`, `or`, formula `ITE`).
    pub connectives: usize,
}

impl DagStats {
    /// Computes statistics for the DAG reachable from `root`.
    pub fn of_formula(ctx: &Context, root: FormulaId) -> Self {
        let mut stats = DagStats::default();
        let mut seen_f: HashSet<FormulaId> = HashSet::new();
        let mut seen_t: HashSet<TermId> = HashSet::new();
        let mut fstack = vec![root];
        let mut tstack: Vec<TermId> = Vec::new();
        while !fstack.is_empty() || !tstack.is_empty() {
            while let Some(f) = fstack.pop() {
                if !seen_f.insert(f) {
                    continue;
                }
                match ctx.formula(f) {
                    Formula::True | Formula::False => {}
                    Formula::Var(_) => stats.prop_vars += 1,
                    Formula::Up(_, args) => {
                        stats.up_apps += 1;
                        tstack.extend(args.iter().copied());
                    }
                    Formula::Not(a) => {
                        stats.connectives += 1;
                        fstack.push(*a);
                    }
                    Formula::And(a, b) | Formula::Or(a, b) => {
                        stats.connectives += 1;
                        fstack.push(*a);
                        fstack.push(*b);
                    }
                    Formula::Ite(c, a, b) => {
                        stats.connectives += 1;
                        fstack.push(*c);
                        fstack.push(*a);
                        fstack.push(*b);
                    }
                    Formula::Eq(a, b) => {
                        stats.equations += 1;
                        tstack.push(*a);
                        tstack.push(*b);
                    }
                }
            }
            while let Some(t) = tstack.pop() {
                if !seen_t.insert(t) {
                    continue;
                }
                match ctx.term(t) {
                    Term::Var(_) => stats.term_vars += 1,
                    Term::Uf(_, args) => {
                        stats.uf_apps += 1;
                        tstack.extend(args.iter().copied());
                    }
                    Term::Ite(c, a, b) => {
                        stats.term_ites += 1;
                        fstack.push(*c);
                        tstack.push(*a);
                        tstack.push(*b);
                    }
                    Term::Read(m, a) => {
                        stats.reads += 1;
                        tstack.push(*m);
                        tstack.push(*a);
                    }
                    Term::Write(m, a, d) => {
                        stats.writes += 1;
                        tstack.push(*m);
                        tstack.push(*a);
                        tstack.push(*d);
                    }
                }
            }
        }
        stats
    }

    /// Total number of distinct nodes reachable from the root.
    pub fn total_nodes(&self) -> usize {
        self.term_vars
            + self.uf_apps
            + self.term_ites
            + self.reads
            + self.writes
            + self.prop_vars
            + self.up_apps
            + self.equations
            + self.connectives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_each_node_once() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let e1 = ctx.eq(fa, fb);
        let e2 = ctx.eq(fa, a);
        let both = ctx.and(e1, e2);
        let again = ctx.and(both, e1); // shares e1
        let stats = DagStats::of_formula(&ctx, again);
        assert_eq!(stats.term_vars, 2);
        assert_eq!(stats.uf_apps, 2);
        assert_eq!(stats.equations, 2);
        assert_eq!(stats.connectives, 2);
        assert_eq!(stats.total_nodes(), 8);
    }

    #[test]
    fn memory_nodes_counted() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("m");
        let a = ctx.term_var("a");
        let d = ctx.term_var("d");
        let w = ctx.write(mem, a, d);
        let r = ctx.read(w, a);
        let eq = ctx.eq(r, d);
        let stats = DagStats::of_formula(&ctx, eq);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.equations, 1);
    }

    #[test]
    fn constant_formula_has_no_nodes() {
        let ctx = Context::new();
        let stats = DagStats::of_formula(&ctx, ctx.true_id());
        assert_eq!(stats.total_nodes(), 0);
    }
}
