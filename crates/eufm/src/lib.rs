//! Logic of Equality with Uninterpreted Functions and Memories (EUFM).
//!
//! This crate implements the term/formula logic that Burch and Dill proposed for
//! microprocessor correspondence checking and that Velev & Bryant's verification
//! flow (TLSim + EVC) is built on:
//!
//! * **Terms** abstract word-level values (data, register identifiers, addresses,
//!   whole memory states). A term is a term variable, an uninterpreted-function
//!   application, an `ITE` selecting between two terms, or a memory `read`/`write`.
//! * **Formulas** model the control path and the correctness condition. A formula
//!   is a propositional variable, an uninterpreted-predicate application, a Boolean
//!   connective, an `ITE` over formulas, or an equation between two terms.
//!
//! All expressions live in a [`Context`] and are *hash-consed*: structurally equal
//! expressions are represented by the same node, identified by a [`TermId`] or
//! [`FormulaId`]. Construction applies inexpensive local simplifications
//! (constant folding, `x = x` → `true`, double negation, …) so that downstream
//! translation works on a compact DAG.
//!
//! Besides construction the crate provides:
//!
//! * [`polarity`] — the positive/negative context analysis underlying *positive
//!   equality* (classification of equations into p-equations and g-equations),
//! * [`fingerprint`] — stable, order-independent structural hashes of the
//!   reachable DAG (the identity key of the `velv_serve` verdict cache),
//! * [`import`] — deep copies of expressions across contexts (used to merge a
//!   batch of independently built problems into one shared context),
//! * [`support`] — variable/function support computation,
//! * [`eval`] — a concrete evaluator used for counterexample validation and
//!   differential testing of the propositional translation,
//! * [`printer`] — an s-expression pretty printer,
//! * [`stats`] — DAG statistics.
//!
//! # Example
//!
//! ```
//! use velv_eufm::Context;
//!
//! let mut ctx = Context::new();
//! let a = ctx.term_var("a");
//! let b = ctx.term_var("b");
//! let fa = ctx.uf("f", vec![a]);
//! let fb = ctx.uf("f", vec![b]);
//! let premise = ctx.eq(a, b);
//! let conclusion = ctx.eq(fa, fb);
//! let consistency = ctx.implies(premise, conclusion);
//! // Functional consistency is not a tautology of the *syntax*; it is enforced
//! // during translation.  Here we just built the formula.
//! assert!(ctx.is_formula(consistency));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod eval;
pub mod fingerprint;
pub mod import;
pub mod node;
pub mod polarity;
pub mod printer;
pub mod stats;
pub mod support;
pub mod symbols;

pub use context::Context;
pub use eval::{evaluate, Evaluator, Interpretation, Value};
pub use fingerprint::{formula_fingerprint, term_fingerprint, Fingerprint};
pub use import::{import_formula, import_term, Importer};
pub use node::{Formula, FormulaId, Term, TermId};
pub use polarity::{EquationPolarity, PolarityAnalysis};
pub use stats::DagStats;
pub use support::Support;
pub use symbols::{Symbol, SymbolTable};
