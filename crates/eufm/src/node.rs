//! Expression node definitions for the EUFM DAG.

use crate::symbols::Symbol;
use std::fmt;

/// Identifier of a hash-consed term node inside a [`Context`](crate::Context).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

/// Identifier of a hash-consed formula node inside a [`Context`](crate::Context).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FormulaId(pub(crate) u32);

impl TermId {
    /// Raw index of the node in the context's term arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FormulaId {
    /// Raw index of the node in the context's formula arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for FormulaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A term of the EUFM logic.
///
/// Terms abstract word-level values: data operands, register identifiers,
/// memory addresses, program counters, and entire memory-array states.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A term variable (an uninterpreted-function symbol of arity zero).
    Var(Symbol),
    /// An uninterpreted-function application `f(t1, ..., tn)`.
    Uf(Symbol, Vec<TermId>),
    /// `ITE(c, t, e)`: evaluates to `t` when `c` holds and to `e` otherwise.
    Ite(FormulaId, TermId, TermId),
    /// Interpreted memory read: `read(mem, addr)`.
    Read(TermId, TermId),
    /// Interpreted memory write: `write(mem, addr, data)` — the new memory state.
    Write(TermId, TermId, TermId),
}

/// A formula of the EUFM logic.
///
/// Formulas model the control path of the processor and the correctness
/// condition itself.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A propositional variable (an uninterpreted predicate of arity zero).
    Var(Symbol),
    /// An uninterpreted-predicate application `P(t1, ..., tn)`.
    Up(Symbol, Vec<TermId>),
    /// Negation.
    Not(FormulaId),
    /// Binary conjunction (n-ary conjunction is built by chaining).
    And(FormulaId, FormulaId),
    /// Binary disjunction.
    Or(FormulaId, FormulaId),
    /// `ITE(c, t, e)` over formulas.
    Ite(FormulaId, FormulaId, FormulaId),
    /// Equation between two terms.
    Eq(TermId, TermId),
}

impl Term {
    /// Returns `true` for term variables.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` for uninterpreted-function applications.
    pub fn is_uf(&self) -> bool {
        matches!(self, Term::Uf(_, _))
    }

    /// Returns `true` for the interpreted memory operations `read`/`write`.
    pub fn is_memory_op(&self) -> bool {
        matches!(self, Term::Read(_, _) | Term::Write(_, _, _))
    }
}

impl Formula {
    /// Returns `true` for the Boolean constants.
    pub fn is_const(&self) -> bool {
        matches!(self, Formula::True | Formula::False)
    }

    /// Returns `true` for equations between terms.
    pub fn is_eq(&self) -> bool {
        matches!(self, Formula::Eq(_, _))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_kind_predicates() {
        let v = Term::Var(Symbol(0));
        let f = Term::Uf(Symbol(1), vec![TermId(0)]);
        let r = Term::Read(TermId(0), TermId(1));
        assert!(v.is_var() && !v.is_uf() && !v.is_memory_op());
        assert!(f.is_uf() && !f.is_var());
        assert!(r.is_memory_op());
    }

    #[test]
    fn formula_kind_predicates() {
        assert!(Formula::True.is_const());
        assert!(Formula::False.is_const());
        assert!(!Formula::Var(Symbol(0)).is_const());
        assert!(Formula::Eq(TermId(0), TermId(1)).is_eq());
    }

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(format!("{}", TermId(3)), "t3");
        assert_eq!(format!("{}", FormulaId(3)), "f3");
    }
}
