//! Deep-copying expressions from one [`Context`] into another.
//!
//! [`import_formula`] reconstructs the reachable DAG of a formula inside a
//! destination context, re-interning symbols by name and rebuilding every node
//! through the public constructors (so hash-consing and the local
//! simplifications apply in the destination exactly as they did in the
//! source).  Structurally identical subformulas imported from *different*
//! source contexts therefore unify in the destination — which is what lets
//! `velv_core` translate a whole batch of independently built verification
//! problems into one shared definitional CNF: common pipeline logic across
//! the batch entries is interned once and translated once.

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use std::collections::HashMap;

/// One pending node of the explicit (non-recursive) copy stack.
#[derive(Clone, Copy)]
enum Item {
    Term(TermId),
    Formula(FormulaId),
}

/// Memoized importer from `src` into `dst`.
///
/// The maps persist across [`Importer::formula`]/[`Importer::term`] calls, so
/// importing several roots that share structure copies the shared part once.
pub struct Importer<'s> {
    src: &'s Context,
    terms: HashMap<TermId, TermId>,
    formulas: HashMap<FormulaId, FormulaId>,
}

impl<'s> Importer<'s> {
    /// Creates an importer reading from `src`.
    pub fn new(src: &'s Context) -> Self {
        Importer {
            src,
            terms: HashMap::new(),
            formulas: HashMap::new(),
        }
    }

    /// Imports a formula of the source context into `dst`, returning its id
    /// in `dst`.
    pub fn formula(&mut self, dst: &mut Context, root: FormulaId) -> FormulaId {
        self.run(dst, Item::Formula(root));
        self.formulas[&root]
    }

    /// Imports a term of the source context into `dst`.
    pub fn term(&mut self, dst: &mut Context, root: TermId) -> TermId {
        self.run(dst, Item::Term(root));
        self.terms[&root]
    }

    fn done(&self, item: Item) -> bool {
        match item {
            Item::Term(id) => self.terms.contains_key(&id),
            Item::Formula(id) => self.formulas.contains_key(&id),
        }
    }

    fn children(&self, item: Item) -> Vec<Item> {
        match item {
            Item::Term(id) => match self.src.term(id) {
                Term::Var(_) => Vec::new(),
                Term::Uf(_, args) => args.iter().map(|&a| Item::Term(a)).collect(),
                Term::Ite(c, t, e) => vec![Item::Formula(*c), Item::Term(*t), Item::Term(*e)],
                Term::Read(m, a) => vec![Item::Term(*m), Item::Term(*a)],
                Term::Write(m, a, d) => vec![Item::Term(*m), Item::Term(*a), Item::Term(*d)],
            },
            Item::Formula(id) => match self.src.formula(id) {
                Formula::True | Formula::False | Formula::Var(_) => Vec::new(),
                Formula::Up(_, args) => args.iter().map(|&a| Item::Term(a)).collect(),
                Formula::Not(f) => vec![Item::Formula(*f)],
                Formula::And(a, b) | Formula::Or(a, b) => {
                    vec![Item::Formula(*a), Item::Formula(*b)]
                }
                Formula::Ite(c, t, e) => {
                    vec![Item::Formula(*c), Item::Formula(*t), Item::Formula(*e)]
                }
                Formula::Eq(a, b) => vec![Item::Term(*a), Item::Term(*b)],
            },
        }
    }

    fn finish(&mut self, dst: &mut Context, item: Item) {
        match item {
            Item::Term(id) => {
                let copied = match self.src.term(id) {
                    Term::Var(sym) => dst.term_var(self.src.symbol_name(*sym)),
                    Term::Uf(sym, args) => {
                        let args: Vec<TermId> = args.iter().map(|a| self.terms[a]).collect();
                        dst.uf(self.src.symbol_name(*sym), args)
                    }
                    Term::Ite(c, t, e) => {
                        dst.ite_term(self.formulas[c], self.terms[t], self.terms[e])
                    }
                    Term::Read(m, a) => dst.read(self.terms[m], self.terms[a]),
                    Term::Write(m, a, d) => dst.write(self.terms[m], self.terms[a], self.terms[d]),
                };
                self.terms.insert(id, copied);
            }
            Item::Formula(id) => {
                let copied = match self.src.formula(id) {
                    Formula::True => dst.true_id(),
                    Formula::False => dst.false_id(),
                    Formula::Var(sym) => dst.prop_var(self.src.symbol_name(*sym)),
                    Formula::Up(sym, args) => {
                        let args: Vec<TermId> = args.iter().map(|a| self.terms[a]).collect();
                        dst.up(self.src.symbol_name(*sym), args)
                    }
                    Formula::Not(f) => {
                        let inner = self.formulas[f];
                        dst.not(inner)
                    }
                    Formula::And(a, b) => dst.and(self.formulas[a], self.formulas[b]),
                    Formula::Or(a, b) => dst.or(self.formulas[a], self.formulas[b]),
                    Formula::Ite(c, t, e) => {
                        dst.ite_formula(self.formulas[c], self.formulas[t], self.formulas[e])
                    }
                    Formula::Eq(a, b) => dst.eq(self.terms[a], self.terms[b]),
                };
                self.formulas.insert(id, copied);
            }
        }
    }

    /// Iterative post-order copy (the correctness formulas are deep).
    fn run(&mut self, dst: &mut Context, root: Item) {
        let mut stack = vec![root];
        while let Some(&item) = stack.last() {
            if self.done(item) {
                stack.pop();
                continue;
            }
            let pending: Vec<Item> = self
                .children(item)
                .into_iter()
                .filter(|c| !self.done(*c))
                .collect();
            if pending.is_empty() {
                self.finish(dst, item);
                stack.pop();
            } else {
                stack.extend(pending);
            }
        }
    }
}

/// Imports one formula from `src` into `dst` (see [`Importer`]).
pub fn import_formula(dst: &mut Context, src: &Context, root: FormulaId) -> FormulaId {
    Importer::new(src).formula(dst, root)
}

/// Imports one term from `src` into `dst`.
pub fn import_term(dst: &mut Context, src: &Context, root: TermId) -> TermId {
    Importer::new(src).term(dst, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::formula_fingerprint;

    fn sample(ctx: &mut Context) -> FormulaId {
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let mem = ctx.term_var("mem");
        let fa = ctx.uf("f", vec![a, b]);
        let cond = ctx.up("P", vec![fa]);
        let written = ctx.write(mem, a, fa);
        let read = ctx.read(written, b);
        let sel = ctx.ite_term(cond, read, a);
        let eq = ctx.eq(sel, b);
        let p = ctx.prop_var("p");
        let np = ctx.not(p);
        let or = ctx.or(eq, np);
        let t = ctx.true_id();
        ctx.ite_formula(or, eq, t)
    }

    #[test]
    fn import_preserves_structure() {
        let mut src = Context::new();
        let root = sample(&mut src);
        let mut dst = Context::new();
        let copied = import_formula(&mut dst, &src, root);
        assert_eq!(
            formula_fingerprint(&src, root),
            formula_fingerprint(&dst, copied)
        );
    }

    #[test]
    fn imports_from_two_sources_unify_in_the_destination() {
        let mut src1 = Context::new();
        let root1 = sample(&mut src1);
        let mut src2 = Context::new();
        // Same structure, different construction history.
        let _ = src2.term_var("scratch");
        let root2 = sample(&mut src2);

        let mut dst = Context::new();
        let copied1 = import_formula(&mut dst, &src1, root1);
        let before = dst.num_formulas();
        let copied2 = import_formula(&mut dst, &src2, root2);
        assert_eq!(copied1, copied2, "hash-consing unifies the two imports");
        assert_eq!(
            dst.num_formulas(),
            before,
            "no new nodes on the second import"
        );
    }

    #[test]
    fn importer_memoizes_across_roots() {
        let mut src = Context::new();
        let a = src.term_var("a");
        let b = src.term_var("b");
        let shared = src.eq(a, b);
        let p = src.prop_var("p");
        let root1 = src.and(shared, p);
        let root2 = src.or(shared, p);

        let mut dst = Context::new();
        let mut importer = Importer::new(&src);
        let c1 = importer.formula(&mut dst, root1);
        let c2 = importer.formula(&mut dst, root2);
        assert_ne!(c1, c2);
        assert_eq!(
            formula_fingerprint(&dst, c1),
            formula_fingerprint(&src, root1)
        );
        assert_eq!(
            formula_fingerprint(&dst, c2),
            formula_fingerprint(&src, root2)
        );
    }

    #[test]
    fn deep_import_does_not_overflow() {
        let mut src = Context::new();
        let mut acc = src.prop_var("p0");
        for i in 1..50_000 {
            let p = src.prop_var(&format!("p{i}"));
            acc = src.and(acc, p);
        }
        let mut dst = Context::new();
        let copied = import_formula(&mut dst, &src, acc);
        assert_eq!(
            formula_fingerprint(&src, acc),
            formula_fingerprint(&dst, copied)
        );
    }
}
