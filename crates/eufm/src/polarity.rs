//! Polarity analysis of equations: the foundation of *positive equality*.
//!
//! An equation is a **p-equation** if every occurrence is under an even number
//! of negations and never inside the controlling formula of an `ITE`.  All
//! other equations are **g-equations** ("general").  Term variables and
//! uninterpreted-function symbols whose applications can reach a value
//! position of a g-equation are **g-symbols**; all remaining ones are
//! **p-symbols** and may be given a maximally diverse interpretation during
//! the propositional translation (Bryant, German & Velev, TOCL 2001).

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use crate::support::value_leaves;
use crate::symbols::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// In which syntactic contexts an equation occurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EquationPolarity {
    /// The equation occurs under an even number of negations and not inside
    /// an `ITE` control.
    pub positive: bool,
    /// The equation occurs under an odd number of negations or inside the
    /// controlling formula of an `ITE` operator.
    pub negative: bool,
}

impl EquationPolarity {
    /// Whether the equation is a p-equation (positive occurrences only).
    pub fn is_positive_only(self) -> bool {
        self.positive && !self.negative
    }

    /// Whether the equation is a g-equation (some negated/control occurrence).
    pub fn is_general(self) -> bool {
        self.negative
    }
}

/// Polarity bits used during the traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
struct Pol {
    pos: bool,
    neg: bool,
}

impl Pol {
    const POS: Pol = Pol {
        pos: true,
        neg: false,
    };
    const BOTH: Pol = Pol {
        pos: true,
        neg: true,
    };

    fn flip(self) -> Pol {
        Pol {
            pos: self.neg,
            neg: self.pos,
        }
    }

    fn union(self, other: Pol) -> Pol {
        Pol {
            pos: self.pos || other.pos,
            neg: self.neg || other.neg,
        }
    }

    fn contains(self, other: Pol) -> bool {
        (!other.pos || self.pos) && (!other.neg || self.neg)
    }
}

/// Result of the polarity analysis of one formula.
#[derive(Clone, Debug, Default)]
pub struct PolarityAnalysis {
    /// Polarity of every equation node reachable from the root.
    pub equations: BTreeMap<FormulaId, EquationPolarity>,
    /// Symbols (term variables and UF heads) that reach a value position of a
    /// g-equation.
    pub g_symbols: BTreeSet<Symbol>,
    /// Symbols that appear in value positions of equations but only of
    /// p-equations.
    pub p_symbols: BTreeSet<Symbol>,
}

impl PolarityAnalysis {
    /// Runs the analysis on `root` (interpreted as a formula that must hold,
    /// i.e. in positive context).
    pub fn run(ctx: &Context, root: FormulaId) -> Self {
        Self::run_many(ctx, std::iter::once(root))
    }

    /// Runs the analysis on several root formulas, all in positive context.
    pub fn run_many<I: IntoIterator<Item = FormulaId>>(ctx: &Context, roots: I) -> Self {
        let mut pol: BTreeMap<FormulaId, Pol> = BTreeMap::new();
        let mut work: Vec<(FormulaId, Pol)> = roots.into_iter().map(|r| (r, Pol::POS)).collect();
        // Terms whose ITE controls still need to be scanned (controls count as
        // negative context for the equations inside them).
        let mut term_seen: HashSet<TermId> = HashSet::new();
        let mut term_stack: Vec<TermId> = Vec::new();

        while let Some((f, p)) = work.pop() {
            let entry = pol.entry(f).or_default();
            if entry.contains(p) {
                continue;
            }
            *entry = entry.union(p);
            let p = *entry;
            match ctx.formula(f) {
                Formula::True | Formula::False | Formula::Var(_) => {}
                Formula::Up(_, args) => {
                    // Equations cannot occur inside terms except as ITE controls.
                    term_stack.extend(args.iter().copied());
                }
                Formula::Not(a) => work.push((*a, p.flip())),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    work.push((*a, p));
                    work.push((*b, p));
                }
                Formula::Ite(c, a, b) => {
                    // The controlling formula effectively occurs both ways.
                    work.push((*c, Pol::BOTH));
                    work.push((*a, p));
                    work.push((*b, p));
                }
                Formula::Eq(a, b) => {
                    term_stack.push(*a);
                    term_stack.push(*b);
                }
            }
            // Scan newly reachable terms for ITE controls and UP/UF arguments.
            while let Some(t) = term_stack.pop() {
                if !term_seen.insert(t) {
                    continue;
                }
                match ctx.term(t) {
                    Term::Var(_) => {}
                    Term::Uf(_, args) => term_stack.extend(args.iter().copied()),
                    Term::Ite(c, x, y) => {
                        work.push((*c, Pol::BOTH));
                        term_stack.push(*x);
                        term_stack.push(*y);
                    }
                    Term::Read(m, a) => {
                        term_stack.push(*m);
                        term_stack.push(*a);
                    }
                    Term::Write(m, a, d) => {
                        term_stack.push(*m);
                        term_stack.push(*a);
                        term_stack.push(*d);
                    }
                }
            }
        }

        // Classify equations and collect g-symbols / p-symbols.
        let mut analysis = PolarityAnalysis::default();
        for (&f, &p) in &pol {
            if let Formula::Eq(a, b) = ctx.formula(f) {
                let eq_pol = EquationPolarity {
                    positive: p.pos,
                    negative: p.neg,
                };
                analysis.equations.insert(f, eq_pol);
                let mut leaves = value_leaves(ctx, *a);
                leaves.extend(value_leaves(ctx, *b));
                if eq_pol.is_general() {
                    analysis.g_symbols.extend(leaves);
                } else {
                    analysis.p_symbols.extend(leaves);
                }
            }
        }
        // A symbol that reaches both kinds is a g-symbol.
        analysis.p_symbols = analysis
            .p_symbols
            .difference(&analysis.g_symbols)
            .copied()
            .collect();
        analysis
    }

    /// Whether `sym` was classified as a g-symbol (appears in some g-equation).
    pub fn is_g_symbol(&self, sym: Symbol) -> bool {
        self.g_symbols.contains(&sym)
    }

    /// Number of equations that are p-equations.
    pub fn p_equation_count(&self) -> usize {
        self.equations
            .values()
            .filter(|p| p.is_positive_only())
            .count()
    }

    /// Number of equations that are g-equations.
    pub fn g_equation_count(&self) -> usize {
        self.equations.values().filter(|p| p.is_general()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_equation_stays_p() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let eq = ctx.eq(a, b);
        let analysis = PolarityAnalysis::run(&ctx, eq);
        assert_eq!(analysis.g_equation_count(), 0);
        assert_eq!(analysis.p_equation_count(), 1);
        assert!(analysis.g_symbols.is_empty());
        assert_eq!(analysis.p_symbols.len(), 2);
    }

    #[test]
    fn negated_equation_becomes_g() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let eq = ctx.eq(a, b);
        let neq = ctx.not(eq);
        let analysis = PolarityAnalysis::run(&ctx, neq);
        assert_eq!(analysis.g_equation_count(), 1);
        assert!(analysis.is_g_symbol(ctx.symbols().lookup("a").unwrap()));
        assert!(analysis.is_g_symbol(ctx.symbols().lookup("b").unwrap()));
    }

    #[test]
    fn ite_control_counts_as_general() {
        let mut ctx = Context::new();
        let src1 = ctx.term_var("src1");
        let dest = ctx.term_var("dest");
        let fwd = ctx.term_var("fwd_data");
        let reg = ctx.term_var("reg_data");
        let result = ctx.term_var("result");
        let cond = ctx.eq(src1, dest);
        let operand = ctx.ite_term(cond, fwd, reg);
        let spec = ctx.eq(operand, result);
        let analysis = PolarityAnalysis::run(&ctx, spec);
        // The forwarding comparison is a g-equation; the outer data equation is p.
        assert_eq!(analysis.g_equation_count(), 1);
        assert_eq!(analysis.p_equation_count(), 1);
        let src1_sym = ctx.symbols().lookup("src1").unwrap();
        let dest_sym = ctx.symbols().lookup("dest").unwrap();
        let fwd_sym = ctx.symbols().lookup("fwd_data").unwrap();
        assert!(analysis.is_g_symbol(src1_sym));
        assert!(analysis.is_g_symbol(dest_sym));
        assert!(!analysis.is_g_symbol(fwd_sym));
    }

    #[test]
    fn double_negation_restores_positive() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let eq = ctx.eq(a, b);
        let nn = ctx.not(eq);
        let nn = ctx.not(nn);
        // The context simplifies double negation away, so the equation occurs
        // positively again.
        let analysis = PolarityAnalysis::run(&ctx, nn);
        assert_eq!(analysis.g_equation_count(), 0);
    }

    #[test]
    fn implication_antecedent_is_negative() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let c = ctx.term_var("c");
        let d = ctx.term_var("d");
        let ante = ctx.eq(a, b);
        let cons = ctx.eq(c, d);
        let imp = ctx.implies(ante, cons);
        let analysis = PolarityAnalysis::run(&ctx, imp);
        assert_eq!(analysis.g_equation_count(), 1);
        assert_eq!(analysis.p_equation_count(), 1);
        assert!(analysis.is_g_symbol(ctx.symbols().lookup("a").unwrap()));
        assert!(!analysis.is_g_symbol(ctx.symbols().lookup("c").unwrap()));
    }

    #[test]
    fn uf_results_classified_by_head_symbol() {
        let mut ctx = Context::new();
        let x = ctx.term_var("x");
        let y = ctx.term_var("y");
        let fx = ctx.uf("f", vec![x]);
        let fy = ctx.uf("f", vec![y]);
        let eq = ctx.eq(fx, fy);
        let neq = ctx.not(eq);
        let analysis = PolarityAnalysis::run(&ctx, neq);
        // `f` reaches a negative equation, so it is a g-symbol; its arguments do not.
        assert!(analysis.is_g_symbol(ctx.symbols().lookup("f").unwrap()));
        assert!(!analysis.is_g_symbol(ctx.symbols().lookup("x").unwrap()));
    }
}
