//! Rendering of EUFM expressions as s-expressions (for debugging and goldens).

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use std::fmt::Write as _;

/// Renders a term as an s-expression.
pub fn term_to_string(ctx: &Context, id: TermId) -> String {
    let mut out = String::new();
    write_term(ctx, id, &mut out, 0);
    out
}

/// Renders a formula as an s-expression.
pub fn formula_to_string(ctx: &Context, id: FormulaId) -> String {
    let mut out = String::new();
    write_formula(ctx, id, &mut out, 0);
    out
}

const MAX_DEPTH: usize = 200;

fn write_term(ctx: &Context, id: TermId, out: &mut String, depth: usize) {
    if depth > MAX_DEPTH {
        let _ = write!(out, "{id}");
        return;
    }
    match ctx.term(id) {
        Term::Var(sym) => {
            let _ = write!(out, "{}", ctx.symbol_name(*sym));
        }
        Term::Uf(sym, args) => {
            let _ = write!(out, "({}", ctx.symbol_name(*sym));
            for a in args {
                out.push(' ');
                write_term(ctx, *a, out, depth + 1);
            }
            out.push(')');
        }
        Term::Ite(c, a, b) => {
            out.push_str("(ite ");
            write_formula(ctx, *c, out, depth + 1);
            out.push(' ');
            write_term(ctx, *a, out, depth + 1);
            out.push(' ');
            write_term(ctx, *b, out, depth + 1);
            out.push(')');
        }
        Term::Read(m, a) => {
            out.push_str("(read ");
            write_term(ctx, *m, out, depth + 1);
            out.push(' ');
            write_term(ctx, *a, out, depth + 1);
            out.push(')');
        }
        Term::Write(m, a, d) => {
            out.push_str("(write ");
            write_term(ctx, *m, out, depth + 1);
            out.push(' ');
            write_term(ctx, *a, out, depth + 1);
            out.push(' ');
            write_term(ctx, *d, out, depth + 1);
            out.push(')');
        }
    }
}

fn write_formula(ctx: &Context, id: FormulaId, out: &mut String, depth: usize) {
    if depth > MAX_DEPTH {
        let _ = write!(out, "{id}");
        return;
    }
    match ctx.formula(id) {
        Formula::True => out.push_str("true"),
        Formula::False => out.push_str("false"),
        Formula::Var(sym) => {
            let _ = write!(out, "{}", ctx.symbol_name(*sym));
        }
        Formula::Up(sym, args) => {
            let _ = write!(out, "({}", ctx.symbol_name(*sym));
            for a in args {
                out.push(' ');
                write_term(ctx, *a, out, depth + 1);
            }
            out.push(')');
        }
        Formula::Not(a) => {
            out.push_str("(not ");
            write_formula(ctx, *a, out, depth + 1);
            out.push(')');
        }
        Formula::And(a, b) => {
            out.push_str("(and ");
            write_formula(ctx, *a, out, depth + 1);
            out.push(' ');
            write_formula(ctx, *b, out, depth + 1);
            out.push(')');
        }
        Formula::Or(a, b) => {
            out.push_str("(or ");
            write_formula(ctx, *a, out, depth + 1);
            out.push(' ');
            write_formula(ctx, *b, out, depth + 1);
            out.push(')');
        }
        Formula::Ite(c, a, b) => {
            out.push_str("(ite ");
            write_formula(ctx, *c, out, depth + 1);
            out.push(' ');
            write_formula(ctx, *a, out, depth + 1);
            out.push(' ');
            write_formula(ctx, *b, out, depth + 1);
            out.push(')');
        }
        Formula::Eq(a, b) => {
            out.push_str("(= ");
            write_term(ctx, *a, out, depth + 1);
            out.push(' ');
            write_term(ctx, *b, out, depth + 1);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_expression() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("f", vec![a, b]);
        let eq = ctx.eq(fa, a);
        let neg = ctx.not(eq);
        let s = formula_to_string(&ctx, neg);
        // `eq` orders its operands by node id, so the variable comes first.
        assert_eq!(s, "(not (= a (f a b)))");
    }

    #[test]
    fn renders_memory_and_ite() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("rf");
        let addr = ctx.term_var("addr");
        let data = ctx.term_var("data");
        let we = ctx.prop_var("we");
        let w = ctx.write(mem, addr, data);
        let next = ctx.ite_term(we, w, mem);
        let r = ctx.read(next, addr);
        let s = term_to_string(&ctx, r);
        assert_eq!(s, "(read (ite we (write rf addr data) rf) addr)");
    }

    #[test]
    fn renders_constants() {
        let ctx = Context::new();
        assert_eq!(formula_to_string(&ctx, ctx.true_id()), "true");
        assert_eq!(formula_to_string(&ctx, ctx.false_id()), "false");
    }
}
