//! Stable structural fingerprints of EUFM expressions.
//!
//! A [`Fingerprint`] is a 128-bit hash of the *reachable structure* of a term
//! or formula: leaves are hashed by symbol **name**, inner nodes by kind and
//! child fingerprints, and commutative connectives (`∧`, `∨`, `=`) hash their
//! operands order-insensitively.  The result is independent of
//!
//! * the [`Context`](crate::Context) the expression lives in,
//! * the order in which the DAG was constructed (node ids never enter the
//!   hash), and
//! * any unrelated scratch nodes interned in the same context,
//!
//! so two alpha-equivalent correctness formulas built in different sessions —
//! or by different front ends — fingerprint identically.  `velv_core` combines
//! this hash with a canonical serialization of the translation options to key
//! a verification job, and `velv_serve` uses that key for its verdict cache
//! and in-flight deduplication.
//!
//! The hash itself is a fixed-key construction over two independently mixed
//! 64-bit lanes (a SplitMix64-style finalizer); it involves no per-process
//! randomness, so fingerprints are stable across runs, builds and machines.
//! It is *not* cryptographic — collision resistance is that of a well-mixed
//! 128-bit hash, which is ample for cache keys but no defence against an
//! adversary crafting collisions.

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use std::collections::HashMap;
use std::fmt;

/// A stable 128-bit structural hash (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Folds extra canonical text (options, backend names, ...) into the
    /// fingerprint, producing a new stable fingerprint.  Used to derive a
    /// *job* key from a *formula* key.
    pub fn combine(self, text: &str) -> Fingerprint {
        let mut hasher = StableHasher::new(0xC0);
        hasher.write_u64(self.0 as u64);
        hasher.write_u64((self.0 >> 64) as u64);
        hasher.write_bytes(text.as_bytes());
        Fingerprint(hasher.finish())
    }

    /// The fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the output of [`Fingerprint::to_hex`].
    pub fn from_hex(hex: &str) -> Option<Fingerprint> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Two-lane 64-bit mixer with fixed keys; all operations are plain integer
/// arithmetic, so the digest is identical on every platform and run.
struct StableHasher {
    a: u64,
    b: u64,
}

/// SplitMix64 finalizer: a fast, well-distributed 64-bit bijection.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl StableHasher {
    fn new(tag: u8) -> Self {
        StableHasher {
            a: mix64(0x9e3779b97f4a7c15 ^ u64::from(tag)),
            b: mix64(0x6a09e667f3bcc909 ^ (u64::from(tag) << 32)),
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.a = mix64(self.a ^ x.wrapping_mul(0xff51afd7ed558ccd));
        self.b = mix64(self.b.wrapping_add(x).wrapping_mul(0xc4ceb9fe1a85ec53));
    }

    fn write_u128(&mut self, x: u128) {
        self.write_u64(x as u64);
        self.write_u64((x >> 64) as u64);
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn finish(&self) -> u128 {
        let lo = mix64(self.a ^ self.b.rotate_left(32));
        let hi = mix64(self.b ^ self.a.rotate_left(17));
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

/// Node kind tags.  Terms and formulas share the 128-bit space; distinct tags
/// keep, say, a term variable and a propositional variable of the same name
/// from colliding.
mod tag {
    pub const TERM_VAR: u8 = 1;
    pub const TERM_UF: u8 = 2;
    pub const TERM_ITE: u8 = 3;
    pub const TERM_READ: u8 = 4;
    pub const TERM_WRITE: u8 = 5;
    pub const F_TRUE: u8 = 10;
    pub const F_FALSE: u8 = 11;
    pub const F_VAR: u8 = 12;
    pub const F_UP: u8 = 13;
    pub const F_NOT: u8 = 14;
    pub const F_AND: u8 = 15;
    pub const F_OR: u8 = 16;
    pub const F_ITE: u8 = 17;
    pub const F_EQ: u8 = 18;
}

fn node_hash(tag: u8, name: Option<&str>, children: &[u128], commutative: bool) -> u128 {
    let mut hasher = StableHasher::new(tag);
    if let Some(name) = name {
        hasher.write_bytes(name.as_bytes());
    }
    if commutative && children.len() == 2 && children[0] > children[1] {
        hasher.write_u128(children[1]);
        hasher.write_u128(children[0]);
    } else {
        for &child in children {
            hasher.write_u128(child);
        }
    }
    hasher.finish()
}

/// One pending node of the explicit DFS stack (no recursion: the correctness
/// formulas of the wide designs are deep).
#[derive(Clone, Copy)]
enum Item {
    Term(TermId),
    Formula(FormulaId),
}

/// Memoized bottom-up hashing of the reachable DAG under the given roots.
struct Hashing<'a> {
    ctx: &'a Context,
    terms: HashMap<TermId, u128>,
    formulas: HashMap<FormulaId, u128>,
}

impl<'a> Hashing<'a> {
    fn new(ctx: &'a Context) -> Self {
        Hashing {
            ctx,
            terms: HashMap::new(),
            formulas: HashMap::new(),
        }
    }

    fn term_children(&self, id: TermId) -> Vec<Item> {
        match self.ctx.term(id) {
            Term::Var(_) => Vec::new(),
            Term::Uf(_, args) => args.iter().map(|&a| Item::Term(a)).collect(),
            Term::Ite(c, t, e) => vec![Item::Formula(*c), Item::Term(*t), Item::Term(*e)],
            Term::Read(m, a) => vec![Item::Term(*m), Item::Term(*a)],
            Term::Write(m, a, d) => vec![Item::Term(*m), Item::Term(*a), Item::Term(*d)],
        }
    }

    fn formula_children(&self, id: FormulaId) -> Vec<Item> {
        match self.ctx.formula(id) {
            Formula::True | Formula::False | Formula::Var(_) => Vec::new(),
            Formula::Up(_, args) => args.iter().map(|&a| Item::Term(a)).collect(),
            Formula::Not(f) => vec![Item::Formula(*f)],
            Formula::And(a, b) | Formula::Or(a, b) => {
                vec![Item::Formula(*a), Item::Formula(*b)]
            }
            Formula::Ite(c, t, e) => {
                vec![Item::Formula(*c), Item::Formula(*t), Item::Formula(*e)]
            }
            Formula::Eq(a, b) => vec![Item::Term(*a), Item::Term(*b)],
        }
    }

    fn done(&self, item: Item) -> bool {
        match item {
            Item::Term(id) => self.terms.contains_key(&id),
            Item::Formula(id) => self.formulas.contains_key(&id),
        }
    }

    fn lookup(&self, item: Item) -> u128 {
        match item {
            Item::Term(id) => self.terms[&id],
            Item::Formula(id) => self.formulas[&id],
        }
    }

    fn finish_term(&mut self, id: TermId) {
        let hash = match self.ctx.term(id) {
            Term::Var(sym) => {
                node_hash(tag::TERM_VAR, Some(self.ctx.symbol_name(*sym)), &[], false)
            }
            Term::Uf(sym, args) => {
                let children: Vec<u128> = args.iter().map(|a| self.terms[a]).collect();
                node_hash(
                    tag::TERM_UF,
                    Some(self.ctx.symbol_name(*sym)),
                    &children,
                    false,
                )
            }
            Term::Ite(c, t, e) => node_hash(
                tag::TERM_ITE,
                None,
                &[self.formulas[c], self.terms[t], self.terms[e]],
                false,
            ),
            Term::Read(m, a) => {
                node_hash(tag::TERM_READ, None, &[self.terms[m], self.terms[a]], false)
            }
            Term::Write(m, a, d) => node_hash(
                tag::TERM_WRITE,
                None,
                &[self.terms[m], self.terms[a], self.terms[d]],
                false,
            ),
        };
        self.terms.insert(id, hash);
    }

    fn finish_formula(&mut self, id: FormulaId) {
        let hash = match self.ctx.formula(id) {
            Formula::True => node_hash(tag::F_TRUE, None, &[], false),
            Formula::False => node_hash(tag::F_FALSE, None, &[], false),
            Formula::Var(sym) => {
                node_hash(tag::F_VAR, Some(self.ctx.symbol_name(*sym)), &[], false)
            }
            Formula::Up(sym, args) => {
                let children: Vec<u128> = args.iter().map(|a| self.terms[a]).collect();
                node_hash(
                    tag::F_UP,
                    Some(self.ctx.symbol_name(*sym)),
                    &children,
                    false,
                )
            }
            Formula::Not(f) => node_hash(tag::F_NOT, None, &[self.formulas[f]], false),
            Formula::And(a, b) => node_hash(
                tag::F_AND,
                None,
                &[self.formulas[a], self.formulas[b]],
                true,
            ),
            Formula::Or(a, b) => {
                node_hash(tag::F_OR, None, &[self.formulas[a], self.formulas[b]], true)
            }
            Formula::Ite(c, t, e) => node_hash(
                tag::F_ITE,
                None,
                &[self.formulas[c], self.formulas[t], self.formulas[e]],
                false,
            ),
            Formula::Eq(a, b) => node_hash(tag::F_EQ, None, &[self.terms[a], self.terms[b]], true),
        };
        self.formulas.insert(id, hash);
    }

    /// Iterative post-order: a node is pushed, then its unfinished children;
    /// when it surfaces again with all children hashed, it is finished.
    fn run(&mut self, root: Item) -> u128 {
        let mut stack = vec![root];
        while let Some(&item) = stack.last() {
            if self.done(item) {
                stack.pop();
                continue;
            }
            let children = match item {
                Item::Term(id) => self.term_children(id),
                Item::Formula(id) => self.formula_children(id),
            };
            let pending: Vec<Item> = children.into_iter().filter(|c| !self.done(*c)).collect();
            if pending.is_empty() {
                match item {
                    Item::Term(id) => self.finish_term(id),
                    Item::Formula(id) => self.finish_formula(id),
                }
                stack.pop();
            } else {
                stack.extend(pending);
            }
        }
        self.lookup(root)
    }
}

/// Structural fingerprint of a formula (see the module docs).
pub fn formula_fingerprint(ctx: &Context, root: FormulaId) -> Fingerprint {
    Fingerprint(Hashing::new(ctx).run(Item::Formula(root)))
}

/// Structural fingerprint of a term.
pub fn term_fingerprint(ctx: &Context, root: TermId) -> Fingerprint {
    Fingerprint(Hashing::new(ctx).run(Item::Term(root)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_order_does_not_matter() {
        // f(a) = f(b) ∧ p, constructed leaves-first ...
        let mut ctx1 = Context::new();
        let a1 = ctx1.term_var("a");
        let b1 = ctx1.term_var("b");
        let fa1 = ctx1.uf("f", vec![a1]);
        let fb1 = ctx1.uf("f", vec![b1]);
        let eq1 = ctx1.eq(fa1, fb1);
        let p1 = ctx1.prop_var("p");
        let root1 = ctx1.and(eq1, p1);

        // ... and the same formula with everything interned in reverse order,
        // with extra scratch nodes, and with the commutative operands flipped.
        let mut ctx2 = Context::new();
        let p2 = ctx2.prop_var("p");
        let scratch = ctx2.term_var("zzz-scratch");
        let _ = ctx2.uf("g", vec![scratch]);
        let b2 = ctx2.term_var("b");
        let a2 = ctx2.term_var("a");
        let fb2 = ctx2.uf("f", vec![b2]);
        let fa2 = ctx2.uf("f", vec![a2]);
        let eq2 = ctx2.eq(fb2, fa2);
        let root2 = ctx2.and(p2, eq2);

        assert_eq!(
            formula_fingerprint(&ctx1, root1),
            formula_fingerprint(&ctx2, root2)
        );
    }

    #[test]
    fn structure_and_names_matter() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fab = ctx.uf("f", vec![a, b]);
        let fba = ctx.uf("f", vec![b, a]);
        assert_ne!(term_fingerprint(&ctx, fab), term_fingerprint(&ctx, fba));
        let gab = ctx.uf("g", vec![a, b]);
        assert_ne!(term_fingerprint(&ctx, fab), term_fingerprint(&ctx, gab));

        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let and = ctx.and(p, q);
        let or = ctx.or(p, q);
        assert_ne!(
            formula_fingerprint(&ctx, and),
            formula_fingerprint(&ctx, or)
        );
        let np = ctx.not(p);
        assert_ne!(formula_fingerprint(&ctx, p), formula_fingerprint(&ctx, np));
    }

    #[test]
    fn term_and_prop_variables_of_the_same_name_differ() {
        let mut ctx = Context::new();
        let t = ctx.term_var("x");
        let p = ctx.prop_var("x");
        assert_ne!(term_fingerprint(&ctx, t).0, formula_fingerprint(&ctx, p).0);
    }

    #[test]
    fn deep_chains_do_not_overflow_the_stack() {
        let mut ctx = Context::new();
        let mut acc = ctx.prop_var("p0");
        for i in 1..50_000 {
            let p = ctx.prop_var(&format!("p{i}"));
            acc = ctx.and(acc, p);
        }
        let fp1 = formula_fingerprint(&ctx, acc);
        let fp2 = formula_fingerprint(&ctx, acc);
        assert_eq!(fp1, fp2);
    }

    #[test]
    fn hex_round_trip() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let fp = formula_fingerprint(&ctx, p);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(format!("{fp}"), hex);
    }

    #[test]
    fn combine_is_stable_and_sensitive() {
        let fp = Fingerprint(42);
        assert_eq!(fp.combine("opts"), fp.combine("opts"));
        assert_ne!(fp.combine("opts"), fp.combine("opts2"));
        assert_ne!(fp.combine("opts"), fp);
    }
}
