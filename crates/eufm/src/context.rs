//! The hash-consing expression context and its construction API.

use crate::node::{Formula, FormulaId, Term, TermId};
use crate::symbols::{Symbol, SymbolTable};
use std::collections::HashMap;

/// Owner of all EUFM expressions of one verification problem.
///
/// Every term and formula is *hash-consed*: building the same node twice returns
/// the same identifier, so the expressions form a shared DAG.  All builder
/// methods apply cheap local simplifications (constant folding, `x = x`,
/// double negation, identical ITE branches) which keeps the DAG small without
/// changing its meaning.
///
/// # Example
///
/// ```
/// use velv_eufm::Context;
///
/// let mut ctx = Context::new();
/// let x = ctx.term_var("x");
/// let same = ctx.eq(x, x);
/// assert_eq!(same, ctx.true_id());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Context {
    symbols: SymbolTable,
    terms: Vec<Term>,
    term_map: HashMap<Term, TermId>,
    formulas: Vec<Formula>,
    formula_map: HashMap<Formula, FormulaId>,
    fresh_counter: u64,
}

impl Context {
    /// Creates a context containing only the Boolean constants.
    pub fn new() -> Self {
        let mut ctx = Context::default();
        // Intern the constants first so that their ids are stable (0 = true, 1 = false).
        let t = ctx.intern_formula(Formula::True);
        let f = ctx.intern_formula(Formula::False);
        debug_assert_eq!(t.index(), 0);
        debug_assert_eq!(f.index(), 1);
        ctx
    }

    // ------------------------------------------------------------------
    // Symbols
    // ------------------------------------------------------------------

    /// Interns a name and returns its symbol.
    pub fn symbol(&mut self, name: &str) -> Symbol {
        self.symbols.intern(name)
    }

    /// Returns the name of a symbol.
    pub fn symbol_name(&self, sym: Symbol) -> &str {
        self.symbols.name(sym)
    }

    /// Read-only access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    // ------------------------------------------------------------------
    // Interning primitives
    // ------------------------------------------------------------------

    fn intern_term(&mut self, node: Term) -> TermId {
        if let Some(&id) = self.term_map.get(&node) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(node.clone());
        self.term_map.insert(node, id);
        id
    }

    fn intern_formula(&mut self, node: Formula) -> FormulaId {
        if let Some(&id) = self.formula_map.get(&node) {
            return id;
        }
        let id = FormulaId(self.formulas.len() as u32);
        self.formulas.push(node.clone());
        self.formula_map.insert(node, id);
        id
    }

    // ------------------------------------------------------------------
    // Node access
    // ------------------------------------------------------------------

    /// Returns the node for a term id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this context.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Returns the node for a formula id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this context.
    pub fn formula(&self, id: FormulaId) -> &Formula {
        &self.formulas[id.index()]
    }

    /// Whether `id` refers to a valid term of this context.
    pub fn is_term(&self, id: TermId) -> bool {
        id.index() < self.terms.len()
    }

    /// Whether `id` refers to a valid formula of this context.
    pub fn is_formula(&self, id: FormulaId) -> bool {
        id.index() < self.formulas.len()
    }

    /// Number of distinct term nodes.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of distinct formula nodes (including the two constants).
    pub fn num_formulas(&self) -> usize {
        self.formulas.len()
    }

    /// The constant `true`.
    pub fn true_id(&self) -> FormulaId {
        FormulaId(0)
    }

    /// The constant `false`.
    pub fn false_id(&self) -> FormulaId {
        FormulaId(1)
    }

    /// Whether `id` is the constant `true`.
    pub fn is_true(&self, id: FormulaId) -> bool {
        id == self.true_id()
    }

    /// Whether `id` is the constant `false`.
    pub fn is_false(&self, id: FormulaId) -> bool {
        id == self.false_id()
    }

    // ------------------------------------------------------------------
    // Term builders
    // ------------------------------------------------------------------

    /// A term variable with the given name.
    pub fn term_var(&mut self, name: &str) -> TermId {
        let sym = self.symbols.intern(name);
        self.intern_term(Term::Var(sym))
    }

    /// A fresh term variable whose name starts with `prefix` and is guaranteed
    /// not to collide with any previously created variable of this context.
    pub fn fresh_term_var(&mut self, prefix: &str) -> TermId {
        let name = self.fresh_name(prefix);
        self.term_var(&name)
    }

    /// An uninterpreted-function application `name(args...)`.
    ///
    /// A zero-argument application is canonicalised into a term variable so
    /// that `f()` and the variable `f` denote the same node.
    pub fn uf(&mut self, name: &str, args: Vec<TermId>) -> TermId {
        let sym = self.symbols.intern(name);
        if args.is_empty() {
            return self.intern_term(Term::Var(sym));
        }
        self.intern_term(Term::Uf(sym, args))
    }

    /// `ITE(cond, then_t, else_t)` over terms.
    pub fn ite_term(&mut self, cond: FormulaId, then_t: TermId, else_t: TermId) -> TermId {
        if self.is_true(cond) {
            return then_t;
        }
        if self.is_false(cond) {
            return else_t;
        }
        if then_t == else_t {
            return then_t;
        }
        self.intern_term(Term::Ite(cond, then_t, else_t))
    }

    /// Interpreted memory read `read(mem, addr)`.
    pub fn read(&mut self, mem: TermId, addr: TermId) -> TermId {
        self.intern_term(Term::Read(mem, addr))
    }

    /// Interpreted memory write `write(mem, addr, data)`.
    pub fn write(&mut self, mem: TermId, addr: TermId, data: TermId) -> TermId {
        self.intern_term(Term::Write(mem, addr, data))
    }

    // ------------------------------------------------------------------
    // Formula builders
    // ------------------------------------------------------------------

    /// A propositional variable with the given name.
    pub fn prop_var(&mut self, name: &str) -> FormulaId {
        let sym = self.symbols.intern(name);
        self.intern_formula(Formula::Var(sym))
    }

    /// A fresh propositional variable whose name starts with `prefix`.
    pub fn fresh_prop_var(&mut self, prefix: &str) -> FormulaId {
        let name = self.fresh_name(prefix);
        self.prop_var(&name)
    }

    /// An uninterpreted-predicate application `name(args...)`.
    ///
    /// A zero-argument application is canonicalised into a propositional variable.
    pub fn up(&mut self, name: &str, args: Vec<TermId>) -> FormulaId {
        let sym = self.symbols.intern(name);
        if args.is_empty() {
            return self.intern_formula(Formula::Var(sym));
        }
        self.intern_formula(Formula::Up(sym, args))
    }

    /// The equation `lhs = rhs`.
    ///
    /// Syntactically identical sides fold to `true`; operands are ordered so
    /// that `eq(a, b)` and `eq(b, a)` share a node.
    pub fn eq(&mut self, lhs: TermId, rhs: TermId) -> FormulaId {
        if lhs == rhs {
            return self.true_id();
        }
        let (a, b) = if lhs.0 <= rhs.0 {
            (lhs, rhs)
        } else {
            (rhs, lhs)
        };
        self.intern_formula(Formula::Eq(a, b))
    }

    /// Negation `¬f` with constant folding and double-negation elimination.
    pub fn not(&mut self, f: FormulaId) -> FormulaId {
        if self.is_true(f) {
            return self.false_id();
        }
        if self.is_false(f) {
            return self.true_id();
        }
        if let Formula::Not(inner) = self.formula(f) {
            return *inner;
        }
        self.intern_formula(Formula::Not(f))
    }

    /// Conjunction `a ∧ b`.
    pub fn and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        if self.is_false(a) || self.is_false(b) {
            return self.false_id();
        }
        if self.is_true(a) {
            return b;
        }
        if self.is_true(b) {
            return a;
        }
        if a == b {
            return a;
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.intern_formula(Formula::And(x, y))
    }

    /// Disjunction `a ∨ b`.
    pub fn or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        if self.is_true(a) || self.is_true(b) {
            return self.true_id();
        }
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if a == b {
            return a;
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.intern_formula(Formula::Or(x, y))
    }

    /// N-ary conjunction. The empty conjunction is `true`.
    pub fn and_many<I: IntoIterator<Item = FormulaId>>(&mut self, fs: I) -> FormulaId {
        let mut acc = self.true_id();
        for f in fs {
            acc = self.and(acc, f);
        }
        acc
    }

    /// N-ary disjunction. The empty disjunction is `false`.
    pub fn or_many<I: IntoIterator<Item = FormulaId>>(&mut self, fs: I) -> FormulaId {
        let mut acc = self.false_id();
        for f in fs {
            acc = self.or(acc, f);
        }
        acc
    }

    /// Implication `a ⇒ b`, expressed as `¬a ∨ b`.
    pub fn implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Biconditional `a ⇔ b`.
    pub fn iff(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        if a == b {
            return self.true_id();
        }
        let ab = self.implies(a, b);
        let ba = self.implies(b, a);
        self.and(ab, ba)
    }

    /// Exclusive or `a ⊕ b`.
    pub fn xor(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let e = self.iff(a, b);
        self.not(e)
    }

    /// `ITE(cond, then_f, else_f)` over formulas.
    pub fn ite_formula(
        &mut self,
        cond: FormulaId,
        then_f: FormulaId,
        else_f: FormulaId,
    ) -> FormulaId {
        if self.is_true(cond) {
            return then_f;
        }
        if self.is_false(cond) {
            return else_f;
        }
        if then_f == else_f {
            return then_f;
        }
        if self.is_true(then_f) && self.is_false(else_f) {
            return cond;
        }
        if self.is_false(then_f) && self.is_true(else_f) {
            return self.not(cond);
        }
        self.intern_formula(Formula::Ite(cond, then_f, else_f))
    }

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------

    fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let name = format!("{prefix}#{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.symbols.lookup(&name).is_none() {
                return name;
            }
        }
    }

    /// Iterates over all term ids in creation (topological) order.
    pub fn term_ids(&self) -> impl Iterator<Item = TermId> {
        (0..self.terms.len() as u32).map(TermId)
    }

    /// Iterates over all formula ids in creation (topological) order.
    pub fn formula_ids(&self) -> impl Iterator<Item = FormulaId> {
        (0..self.formulas.len() as u32).map(FormulaId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_fixed_ids() {
        let ctx = Context::new();
        assert!(ctx.is_true(ctx.true_id()));
        assert!(ctx.is_false(ctx.false_id()));
        assert_ne!(ctx.true_id(), ctx.false_id());
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let f1 = ctx.uf("f", vec![a, b]);
        let f2 = ctx.uf("f", vec![a, b]);
        assert_eq!(f1, f2);
        let g = ctx.uf("f", vec![b, a]);
        assert_ne!(f1, g);
    }

    #[test]
    fn zero_arity_uf_is_a_variable() {
        let mut ctx = Context::new();
        let v = ctx.term_var("f");
        let app = ctx.uf("f", vec![]);
        assert_eq!(v, app);
    }

    #[test]
    fn eq_is_reflexive_and_symmetric_in_representation() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        assert_eq!(ctx.eq(a, a), ctx.true_id());
        assert_eq!(ctx.eq(a, b), ctx.eq(b, a));
    }

    #[test]
    fn boolean_simplifications() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let t = ctx.true_id();
        let f = ctx.false_id();
        assert_eq!(ctx.and(p, t), p);
        assert_eq!(ctx.and(p, f), f);
        assert_eq!(ctx.or(p, f), p);
        assert_eq!(ctx.or(p, t), t);
        assert_eq!(ctx.and(p, p), p);
        assert_eq!(ctx.or(p, p), p);
        let np = ctx.not(p);
        assert_eq!(ctx.not(np), p);
        assert_eq!(ctx.not(t), f);
    }

    #[test]
    fn commutative_operands_share_a_node() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        assert_eq!(ctx.and(p, q), ctx.and(q, p));
        assert_eq!(ctx.or(p, q), ctx.or(q, p));
    }

    #[test]
    fn ite_simplifications() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let t = ctx.true_id();
        let f = ctx.false_id();
        assert_eq!(ctx.ite_term(t, a, b), a);
        assert_eq!(ctx.ite_term(f, a, b), b);
        assert_eq!(ctx.ite_term(p, a, a), a);
        assert_eq!(ctx.ite_formula(p, t, f), p);
        let np = ctx.not(p);
        assert_eq!(ctx.ite_formula(p, f, t), np);
        let q = ctx.prop_var("q");
        assert_eq!(ctx.ite_formula(p, q, q), q);
    }

    #[test]
    fn implies_iff_xor() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let t = ctx.true_id();
        let f = ctx.false_id();
        assert_eq!(ctx.implies(f, p), t);
        assert_eq!(ctx.implies(p, t), t);
        assert_eq!(ctx.implies(t, p), p);
        assert_eq!(ctx.iff(p, p), t);
        assert_eq!(ctx.xor(p, p), f);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut ctx = Context::new();
        let a = ctx.fresh_term_var("tmp");
        let b = ctx.fresh_term_var("tmp");
        assert_ne!(a, b);
        let p = ctx.fresh_prop_var("aux");
        let q = ctx.fresh_prop_var("aux");
        assert_ne!(p, q);
    }

    #[test]
    fn and_many_or_many() {
        let mut ctx = Context::new();
        let ps: Vec<_> = (0..4).map(|i| ctx.prop_var(&format!("p{i}"))).collect();
        let empty_and = ctx.and_many([]);
        let empty_or = ctx.or_many([]);
        assert_eq!(empty_and, ctx.true_id());
        assert_eq!(empty_or, ctx.false_id());
        let all = ctx.and_many(ps.iter().copied());
        let any = ctx.or_many(ps.iter().copied());
        assert!(ctx.is_formula(all));
        assert!(ctx.is_formula(any));
        assert_ne!(all, any);
    }
}
