//! Support computation: which variables, functions and predicates an
//! expression depends on.

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use crate::symbols::Symbol;
use std::collections::{BTreeSet, HashSet};

/// The sets of symbols an expression (transitively) refers to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Support {
    /// Term variables (zero-arity uninterpreted functions).
    pub term_vars: BTreeSet<Symbol>,
    /// Propositional variables (zero-arity uninterpreted predicates).
    pub prop_vars: BTreeSet<Symbol>,
    /// Uninterpreted-function symbols with at least one argument.
    pub ufs: BTreeSet<Symbol>,
    /// Uninterpreted-predicate symbols with at least one argument.
    pub ups: BTreeSet<Symbol>,
    /// Number of distinct `read`/`write` nodes reachable.
    pub memory_ops: usize,
}

impl Support {
    /// Computes the support of a formula.
    pub fn of_formula(ctx: &Context, root: FormulaId) -> Self {
        let mut s = Support::default();
        let mut seen_f: HashSet<FormulaId> = HashSet::new();
        let mut seen_t: HashSet<TermId> = HashSet::new();
        let mut fstack = vec![root];
        let mut tstack: Vec<TermId> = Vec::new();
        while let Some(f) = fstack.pop() {
            if !seen_f.insert(f) {
                continue;
            }
            match ctx.formula(f) {
                Formula::True | Formula::False => {}
                Formula::Var(sym) => {
                    s.prop_vars.insert(*sym);
                }
                Formula::Up(sym, args) => {
                    s.ups.insert(*sym);
                    tstack.extend(args.iter().copied());
                }
                Formula::Not(a) => fstack.push(*a),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    fstack.push(*a);
                    fstack.push(*b);
                }
                Formula::Ite(c, a, b) => {
                    fstack.push(*c);
                    fstack.push(*a);
                    fstack.push(*b);
                }
                Formula::Eq(a, b) => {
                    tstack.push(*a);
                    tstack.push(*b);
                }
            }
            Self::drain_terms(ctx, &mut s, &mut seen_t, &mut tstack, &mut fstack);
        }
        s
    }

    /// Computes the support of a term.
    pub fn of_term(ctx: &Context, root: TermId) -> Self {
        let mut s = Support::default();
        let mut seen_f: HashSet<FormulaId> = HashSet::new();
        let mut seen_t: HashSet<TermId> = HashSet::new();
        let mut fstack: Vec<FormulaId> = Vec::new();
        let mut tstack = vec![root];
        loop {
            Self::drain_terms(ctx, &mut s, &mut seen_t, &mut tstack, &mut fstack);
            if fstack.is_empty() {
                break;
            }
            // Formulas reachable from ITE controls inside terms.
            while let Some(f) = fstack.pop() {
                if !seen_f.insert(f) {
                    continue;
                }
                match ctx.formula(f) {
                    Formula::True | Formula::False => {}
                    Formula::Var(sym) => {
                        s.prop_vars.insert(*sym);
                    }
                    Formula::Up(sym, args) => {
                        s.ups.insert(*sym);
                        tstack.extend(args.iter().copied());
                    }
                    Formula::Not(a) => fstack.push(*a),
                    Formula::And(a, b) | Formula::Or(a, b) => {
                        fstack.push(*a);
                        fstack.push(*b);
                    }
                    Formula::Ite(c, a, b) => {
                        fstack.push(*c);
                        fstack.push(*a);
                        fstack.push(*b);
                    }
                    Formula::Eq(a, b) => {
                        tstack.push(*a);
                        tstack.push(*b);
                    }
                }
            }
        }
        s
    }

    fn drain_terms(
        ctx: &Context,
        s: &mut Support,
        seen_t: &mut HashSet<TermId>,
        tstack: &mut Vec<TermId>,
        fstack: &mut Vec<FormulaId>,
    ) {
        while let Some(t) = tstack.pop() {
            if !seen_t.insert(t) {
                continue;
            }
            match ctx.term(t) {
                Term::Var(sym) => {
                    s.term_vars.insert(*sym);
                }
                Term::Uf(sym, args) => {
                    s.ufs.insert(*sym);
                    tstack.extend(args.iter().copied());
                }
                Term::Ite(c, a, b) => {
                    fstack.push(*c);
                    tstack.push(*a);
                    tstack.push(*b);
                }
                Term::Read(m, a) => {
                    s.memory_ops += 1;
                    tstack.push(*m);
                    tstack.push(*a);
                }
                Term::Write(m, a, d) => {
                    s.memory_ops += 1;
                    tstack.push(*m);
                    tstack.push(*a);
                    tstack.push(*d);
                }
            }
        }
    }

    /// Total number of distinct symbols in the support.
    pub fn symbol_count(&self) -> usize {
        self.term_vars.len() + self.prop_vars.len() + self.ufs.len() + self.ups.len()
    }
}

/// Returns the set of term-variable symbols that a term can evaluate to,
/// looking through `ITE` branches (but not conditions) and through memory
/// operations (write data and base memory state).
///
/// This is the "value position" support used by the positive-equality
/// classification: the leaves returned here are the candidates an equality
/// comparison of the term may actually compare.
pub fn value_leaves(ctx: &Context, root: TermId) -> BTreeSet<Symbol> {
    let mut leaves = BTreeSet::new();
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        match ctx.term(t) {
            Term::Var(sym) => {
                leaves.insert(*sym);
            }
            Term::Uf(sym, _) => {
                leaves.insert(*sym);
            }
            Term::Ite(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Term::Read(m, _) => {
                // A read may return any written value or the initial content.
                stack.push(*m);
            }
            Term::Write(m, _, d) => {
                stack.push(*m);
                stack.push(*d);
            }
        }
    }
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_of_simple_formula() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let p = ctx.prop_var("p");
        let fa = ctx.uf("f", vec![a]);
        let eq = ctx.eq(fa, b);
        let pred = ctx.up("P", vec![b]);
        let conj = ctx.and_many([eq, pred, p]);
        let s = Support::of_formula(&ctx, conj);
        assert_eq!(s.term_vars.len(), 2);
        assert_eq!(s.prop_vars.len(), 1);
        assert_eq!(s.ufs.len(), 1);
        assert_eq!(s.ups.len(), 1);
        assert_eq!(s.memory_ops, 0);
        assert_eq!(s.symbol_count(), 5);
    }

    #[test]
    fn support_sees_through_ite_and_memory() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("mem0");
        let addr = ctx.term_var("addr");
        let data = ctx.term_var("data");
        let cond = ctx.prop_var("we");
        let written = ctx.write(mem, addr, data);
        let state = ctx.ite_term(cond, written, mem);
        let out = ctx.read(state, addr);
        let s = Support::of_term(&ctx, out);
        assert!(s.term_vars.len() >= 3);
        assert_eq!(s.prop_vars.len(), 1);
        assert!(s.memory_ops >= 2);
    }

    #[test]
    fn value_leaves_skip_ite_conditions() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let c = ctx.term_var("c");
        let ca = ctx.term_var("cond_operand");
        let cond = ctx.eq(c, ca);
        let t = ctx.ite_term(cond, a, b);
        let leaves = value_leaves(&ctx, t);
        let names: Vec<&str> = leaves.iter().map(|s| ctx.symbol_name(*s)).collect();
        assert!(names.contains(&"a"));
        assert!(names.contains(&"b"));
        assert!(!names.contains(&"c"));
        assert!(!names.contains(&"cond_operand"));
    }

    #[test]
    fn value_leaves_of_uf_is_its_head() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let fa = ctx.uf("alu", vec![a]);
        let leaves = value_leaves(&ctx, fa);
        assert_eq!(leaves.len(), 1);
        assert_eq!(ctx.symbol_name(*leaves.iter().next().unwrap()), "alu");
    }
}
